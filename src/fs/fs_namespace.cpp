#include "fs/fs_namespace.hpp"

#include <algorithm>
#include <stdexcept>

namespace spider::fs {

namespace {
// Local aliases for the public codec in fs_namespace.hpp.
constexpr FileId make_id(std::uint32_t generation, std::size_t slot) {
  return file_id_for_slot(generation, slot);
}
constexpr std::size_t slot_of(FileId id) { return slot_of_file_id(id); }
constexpr std::uint32_t generation_of(FileId id) {
  return generation_of_file_id(id);
}
}  // namespace

FsNamespace::FsNamespace(std::string name, std::vector<Ost*> osts,
                         const MdsParams& mds_params, AllocatorMode alloc_mode,
                         StripePolicy default_policy)
    : name_(std::move(name)),
      osts_(std::move(osts)),
      mds_(mds_params),
      allocator_(osts_, alloc_mode),
      default_policy_(default_policy) {
  if (osts_.empty()) throw std::invalid_argument("FsNamespace: no OSTs");
}

FileId FsNamespace::create_file(std::uint32_t project, Bytes size,
                                sim::SimTime now, Rng& rng,
                                std::optional<StripePolicy> policy) {
  const StripePolicy p = policy.value_or(default_policy_);
  auto chosen = allocator_.allocate(p.stripe_count, size, rng);
  if (chosen.empty()) return kNoFile;
  mds_.account(MetaOp::kCreate);

  std::size_t slot;
  std::uint32_t generation = 0;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
    generation = generation_of(files_[slot].id) + 1;
  } else {
    slot = files_.size();
    files_.emplace_back();
  }
  FileRecord& rec = files_[slot];
  rec.id = make_id(generation, slot);
  rec.project = project;
  rec.size = size;
  rec.atime = rec.mtime = rec.ctime = now;
  rec.stripe_offset = static_cast<std::uint32_t>(stripe_pool_.size());
  rec.stripe_count = static_cast<std::uint32_t>(chosen.size());
  rec.alive = true;
  stripe_pool_.insert(stripe_pool_.end(), chosen.begin(), chosen.end());
  ++live_files_;
  ++total_created_;
  return rec.id;
}

bool FsNamespace::exists(FileId id) const {
  if (id == kNoFile) return false;
  const std::size_t slot = slot_of(id);
  return slot < files_.size() && files_[slot].alive && files_[slot].id == id;
}

const FileRecord& FsNamespace::file(FileId id) const {
  if (!exists(id)) throw std::out_of_range("FsNamespace::file: no such file");
  return files_[slot_of(id)];
}

FileRecord& FsNamespace::record(FileId id) {
  if (!exists(id)) throw std::out_of_range("FsNamespace: no such file");
  return files_[slot_of(id)];
}

void FsNamespace::read_file(FileId id, sim::SimTime now) {
  FileRecord& rec = record(id);
  rec.atime = now;
  mds_.account(MetaOp::kLookup);
  mds_.account(MetaOp::kStat, rec.stripe_count);
}

void FsNamespace::touch_file(FileId id, sim::SimTime now) {
  FileRecord& rec = record(id);
  rec.mtime = now;
  rec.atime = now;
  mds_.account(MetaOp::kSetattr);
}

void FsNamespace::stat_file(FileId id) {
  const FileRecord& rec = record(id);
  mds_.account(MetaOp::kStat, rec.stripe_count);
}

bool FsNamespace::unlink(FileId id, sim::SimTime now) {
  (void)now;
  if (!exists(id)) return false;
  FileRecord& rec = files_[slot_of(id)];
  allocator_.release(stripes_of(rec), rec.size);
  mds_.account(MetaOp::kUnlink);
  rec.alive = false;
  free_slots_.push_back(slot_of(id));
  --live_files_;
  return true;
}

void FsNamespace::for_each_file(
    const std::function<void(const FileRecord&)>& fn) const {
  for (const auto& rec : files_) {
    if (rec.alive) fn(rec);
  }
}

std::vector<FileId> FsNamespace::live_ids() const {
  std::vector<FileId> ids;
  ids.reserve(live_files_);
  for (const auto& rec : files_) {
    if (rec.alive) ids.push_back(rec.id);
  }
  return ids;
}

std::uint64_t FsNamespace::recount_live() const {
  std::uint64_t n = 0;
  for (const auto& rec : files_) {
    if (rec.alive) ++n;
  }
  return n;
}

std::span<std::uint32_t> FsNamespace::fsck_stripes(const FileRecord& rec) {
  const std::size_t begin =
      std::min<std::size_t>(rec.stripe_offset, stripe_pool_.size());
  const std::size_t count =
      std::min<std::size_t>(rec.stripe_count, stripe_pool_.size() - begin);
  return {stripe_pool_.data() + begin, count};
}

Bytes FsNamespace::capacity() const {
  Bytes total = 0;
  for (const Ost* o : osts_) total += o->capacity();
  return total;
}

Bytes FsNamespace::used() const {
  Bytes total = 0;
  for (const Ost* o : osts_) total += o->used();
  return total;
}

double FsNamespace::fullness() const {
  const Bytes cap = capacity();
  return cap == 0 ? 1.0 : static_cast<double>(used()) / static_cast<double>(cap);
}

std::map<std::uint32_t, Bytes> FsNamespace::usage_by_project() const {
  std::map<std::uint32_t, Bytes> usage;
  for_each_file([&usage](const FileRecord& rec) { usage[rec.project] += rec.size; });
  return usage;
}

Bandwidth FsNamespace::aggregate_ost_bw(block::IoMode mode, block::IoDir dir,
                                        Bytes request_size) const {
  double total = 0.0;
  for (const Ost* o : osts_) total += o->bandwidth(mode, dir, request_size);
  return total;
}

std::span<const std::uint32_t> FsNamespace::stripes_of(const FileRecord& rec) const {
  return {stripe_pool_.data() + rec.stripe_offset, rec.stripe_count};
}

}  // namespace spider::fs
