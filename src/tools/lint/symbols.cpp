#include "tools/lint/symbols.hpp"

#include <array>
#include <string_view>

namespace spider::lint {

namespace {

/// Identifiers that can never be a declared function name; seeing one
/// before '(' means a cast, control construct, or function-type template
/// argument, not a declarator.
bool never_a_function_name(std::string_view s) {
  static constexpr std::array<std::string_view, 24> kBlocked = {
      "if",     "for",      "while",    "switch",  "return", "sizeof",
      "new",    "delete",   "throw",    "catch",   "void",   "int",
      "bool",   "char",     "double",   "float",   "long",   "short",
      "unsigned", "signed", "auto",     "decltype", "alignof",
      "static_assert"};
  for (std::string_view b : kBlocked) {
    if (s == b) return true;
  }
  return false;
}

struct Scope {
  enum class Kind { kNamespace, kClass, kBlock };
  Kind kind = Kind::kBlock;
  std::string name;
  Access access = Access::kPublic;
  bool anon = false;  ///< anonymous namespace
};

/// Flatten [begin, end) token texts into a single space-joined string.
std::string flatten(const std::vector<Tok>& t, std::size_t begin,
                    std::size_t end) {
  std::string out;
  for (std::size_t i = begin; i < end && i < t.size(); ++i) {
    if (!out.empty()) out.push_back(' ');
    out += t[i].text;
  }
  return out;
}

}  // namespace

FileSymbols index_symbols(const TokenStream& stream) {
  const std::vector<Tok>& t = stream.tokens;
  FileSymbols out;
  std::vector<Scope> scopes;
  bool stmt_saw_eq = false;

  auto current_class = [&]() -> Scope* {
    for (auto it = scopes.rbegin(); it != scopes.rend(); ++it) {
      if (it->kind == Scope::Kind::kClass) return &*it;
      if (it->kind == Scope::Kind::kBlock) return nullptr;
    }
    return nullptr;
  };
  auto in_anon_namespace = [&]() {
    for (const Scope& s : scopes) {
      if (s.kind == Scope::Kind::kNamespace && s.anon) return true;
    }
    return false;
  };
  auto at_decl_scope = [&]() {
    return scopes.empty() || scopes.back().kind != Scope::Kind::kBlock;
  };

  std::size_t i = 0;
  while (i < t.size()) {
    const Tok& tok = t[i];

    if (tok.kind == TokKind::kPunct) {
      if (tok.text == ";") stmt_saw_eq = false;
      if (tok.text == "=") stmt_saw_eq = true;
      if (tok.text == "{") {
        scopes.push_back(Scope{Scope::Kind::kBlock, "", Access::kPublic, false});
        stmt_saw_eq = false;
      }
      if (tok.text == "}") {
        if (!scopes.empty()) scopes.pop_back();
        stmt_saw_eq = false;
      }
      ++i;
      continue;
    }

    if (tok.kind != TokKind::kIdent) {
      ++i;
      continue;
    }

    // --- namespace ----------------------------------------------------------
    if (tok.text == "namespace" && at_decl_scope()) {
      std::size_t j = i + 1;
      std::string name;
      while (j < t.size() &&
             (t[j].kind == TokKind::kIdent || is_punct(t[j], "::"))) {
        name += t[j].text;
        ++j;
      }
      if (j < t.size() && is_punct(t[j], "{")) {
        scopes.push_back(Scope{Scope::Kind::kNamespace, name, Access::kPublic,
                               name.empty()});
        i = j + 1;
        continue;
      }
      i = j;  // alias or using-directive; fall through statement-wise
      continue;
    }

    // --- enum: record name + enumerators, then skip the block ---------------
    // Enumerator identifiers must not leak into the surrounding scope's
    // declaration parsing (kFoo = 3 is not a member), so the block is still
    // consumed wholesale — but its contents now feed the L15 exhaustiveness
    // census (global.hpp).
    if (tok.text == "enum" && at_decl_scope()) {
      std::size_t j = i + 1;
      EnumSym en;
      if (j < t.size() && t[j].kind == TokKind::kIdent &&
          (t[j].text == "class" || t[j].text == "struct")) {
        en.scoped = true;
        ++j;
      }
      if (j < t.size() && t[j].kind == TokKind::kIdent) {
        en.name = t[j].text;
        en.line = t[j].line;
        ++j;
      }
      while (j < t.size() && !is_punct(t[j], "{") && !is_punct(t[j], ";")) ++j;
      if (j < t.size() && is_punct(t[j], "{")) {
        const std::size_t close = matching_close(t, j);
        // Enumerators: an identifier at depth 0 directly after `{` or `,`.
        // Initializer expressions (= kOther + 1) are skipped to the next
        // depth-0 comma, so their identifiers are never misread as names.
        std::size_t k = j + 1;
        bool expect_name = true;
        int depth = 0;
        while (k < close && k < t.size()) {
          const Tok& et = t[k];
          if (et.kind == TokKind::kPunct && et.text.size() == 1) {
            const char c = et.text[0];
            if (c == '(' || c == '{' || c == '[' || c == '<') ++depth;
            if (c == ')' || c == '}' || c == ']' || c == '>') --depth;
            if (c == ',' && depth == 0) expect_name = true;
            ++k;
            continue;
          }
          if (expect_name && et.kind == TokKind::kIdent && depth == 0) {
            en.enumerators.push_back(Enumerator{et.text, et.line});
            expect_name = false;
          }
          ++k;
        }
        if (!en.name.empty()) out.enums.push_back(std::move(en));
        j = close;
      }
      i = j + 1;
      continue;
    }

    // --- template head ------------------------------------------------------
    if (tok.text == "template") {
      if (i + 1 < t.size() && is_punct(t[i + 1], "<")) {
        out.template_head_lines.push_back(tok.line);
        i = matching_close(t, i + 1) + 1;
        continue;
      }
      ++i;
      continue;
    }

    // --- class / struct head ------------------------------------------------
    if ((tok.text == "class" || tok.text == "struct") && at_decl_scope()) {
      std::size_t j = i + 1;
      std::string name;
      if (j < t.size() && t[j].kind == TokKind::kIdent) {
        name = t[j].text;
        ++j;
      }
      // Scan to '{' (definition) or ';' (forward decl / member of this
      // elaborated type), balancing parens/angles in base clauses.
      int depth = 0;
      while (j < t.size()) {
        if (t[j].kind == TokKind::kPunct && t[j].text.size() == 1) {
          const char c = t[j].text[0];
          if (c == '(' || c == '<' || c == '[') ++depth;
          if (c == ')' || c == '>' || c == ']') --depth;
          if (depth == 0 && (c == '{' || c == ';')) break;
        }
        ++j;
      }
      if (j < t.size() && is_punct(t[j], "{")) {
        out.classes.push_back(ClassSym{name, tok.line});
        scopes.push_back(Scope{Scope::Kind::kClass, name,
                               tok.text == "struct" ? Access::kPublic
                                                    : Access::kPrivate,
                               false});
        i = j + 1;
        continue;
      }
      i = j + 1;
      continue;
    }

    // --- access specifiers --------------------------------------------------
    if ((tok.text == "public" || tok.text == "protected" ||
         tok.text == "private") &&
        i + 1 < t.size() && is_punct(t[i + 1], ":") && !scopes.empty() &&
        scopes.back().kind == Scope::Kind::kClass) {
      scopes.back().access = tok.text == "public"    ? Access::kPublic
                             : tok.text == "private" ? Access::kPrivate
                                                     : Access::kProtected;
      i += 2;
      continue;
    }

    // --- SPIDER_GUARDED_BY on a member declaration --------------------------
    if (tok.text == "SPIDER_GUARDED_BY" && i + 1 < t.size() &&
        is_punct(t[i + 1], "(")) {
      const std::size_t close = matching_close(t, i + 1);
      Scope* cls = current_class();
      if (cls != nullptr && i >= 1 && t[i - 1].kind == TokKind::kIdent) {
        out.guarded.push_back(GuardedMember{
            cls->name, t[i - 1].text, flatten(t, i + 2, close), tok.line});
      }
      i = close + 1;
      continue;
    }

    // --- SPIDER_SHARD_OWNED on a member declaration -------------------------
    if (tok.text == "SPIDER_SHARD_OWNED" && i + 1 < t.size() &&
        is_punct(t[i + 1], "(")) {
      const std::size_t close = matching_close(t, i + 1);
      Scope* cls = current_class();
      if (cls != nullptr && i >= 1 && t[i - 1].kind == TokKind::kIdent) {
        out.shard_owned.push_back(ShardOwnedMember{
            cls->name, t[i - 1].text, flatten(t, i + 2, close), tok.line});
      }
      i = close + 1;
      continue;
    }

    // --- function declarator ------------------------------------------------
    const bool operator_name = tok.text == "operator";
    bool is_fn_candidate = false;
    std::string fn_name;
    std::string fn_cls;
    bool dtor = false;
    std::size_t params_open = 0;

    if (at_decl_scope() && !stmt_saw_eq && !never_a_function_name(tok.text)) {
      if (operator_name) {
        // operator<op>, operator(), operator"" _suffix, operator bool.
        std::size_t j = i + 1;
        fn_name = "operator";
        if (j < t.size() && is_punct(t[j], "(") &&
            matching_close(t, j) == j + 1 && j + 2 < t.size() &&
            is_punct(t[j + 2], "(")) {
          fn_name += "()";
          params_open = j + 2;
          is_fn_candidate = true;
        } else {
          while (j < t.size() && !is_punct(t[j], "(")) {
            fn_name += t[j].text;
            ++j;
          }
          if (j < t.size()) {
            params_open = j;
            is_fn_candidate = true;
          }
        }
      } else if (i + 1 < t.size() && is_punct(t[i + 1], "(")) {
        fn_name = tok.text;
        params_open = i + 1;
        is_fn_candidate = true;
        // Qualifier / destructor context from the preceding tokens.
        if (i >= 1 && is_punct(t[i - 1], "~")) {
          dtor = true;
          if (i >= 2 && is_punct(t[i - 2], "::") && i >= 3 &&
              t[i - 3].kind == TokKind::kIdent) {
            fn_cls = t[i - 3].text;
          } else if (Scope* cls = current_class(); cls != nullptr) {
            fn_cls = cls->name;
          }
        } else if (i >= 1 && is_punct(t[i - 1], "::") && i >= 2 &&
                   t[i - 2].kind == TokKind::kIdent) {
          fn_cls = t[i - 2].text;
        }
      }
    }

    if (is_fn_candidate) {
      const std::size_t params_close = matching_close(t, params_open);
      if (params_close >= t.size()) {
        ++i;
        continue;
      }
      FunctionSym fn;
      fn.name = fn_name;
      fn.line = tok.line;
      fn.in_anon_namespace = in_anon_namespace();
      fn.ctor_or_dtor = dtor;
      fn.params = flatten(t, params_open + 1, params_close);
      fn.params_begin = params_open + 1;
      fn.params_end = params_close;
      fn.has_source_location_param =
          fn.params.find("source_location") != std::string::npos;
      Scope* cls = current_class();
      if (!fn_cls.empty()) {
        fn.cls = fn_cls;
      } else if (cls != nullptr) {
        fn.cls = cls->name;
      }
      if (cls != nullptr) fn.access = cls->access;
      if (!fn.cls.empty() && fn.name == fn.cls) fn.ctor_or_dtor = true;

      // Trailer: const/noexcept/ref-qualifiers/override/final, lock
      // annotations, trailing return; then body, ctor-init list, `= ...;`,
      // or `;`.
      std::size_t j = params_close + 1;
      bool parsed = false;
      while (j < t.size() && !parsed) {
        const Tok& tr = t[j];
        if (tr.kind == TokKind::kIdent &&
            (tr.text == "const" || tr.text == "noexcept" ||
             tr.text == "override" || tr.text == "final")) {
          ++j;
          // noexcept(...) form
          if (j < t.size() && tr.text == "noexcept" && is_punct(t[j], "(")) {
            j = matching_close(t, j) + 1;
          }
          continue;
        }
        if (tr.kind == TokKind::kIdent &&
            (tr.text == "SPIDER_REQUIRES" || tr.text == "SPIDER_EXCLUDES") &&
            j + 1 < t.size() && is_punct(t[j + 1], "(")) {
          const std::size_t close = matching_close(t, j + 1);
          if (tr.text == "SPIDER_REQUIRES") {
            fn.requires_mutexes.push_back(flatten(t, j + 2, close));
          }
          j = close + 1;
          continue;
        }
        if (tr.kind == TokKind::kIdent && tr.text == "SPIDER_REPAIR_ONLY") {
          fn.repair_only = true;  // bare marker, no argument list (L13)
          ++j;
          continue;
        }
        if (tr.kind == TokKind::kIdent && tr.text == "SPIDER_JOURNALED" &&
            j + 1 < t.size() && is_punct(t[j + 1], "(")) {
          const std::size_t close = matching_close(t, j + 1);
          fn.journaled = true;  // justification argument required (L14)
          fn.journaled_why = flatten(t, j + 2, close);
          j = close + 1;
          continue;
        }
        if (is_punct(tr, "&") || is_punct(tr, "&&")) {
          ++j;
          continue;
        }
        if (is_punct(tr, "->")) {
          // Trailing return type: skip until '{' or ';' at depth 0.
          ++j;
          int depth = 0;
          while (j < t.size()) {
            if (t[j].kind == TokKind::kPunct && t[j].text.size() == 1) {
              const char c = t[j].text[0];
              if (c == '(' || c == '<' || c == '[') ++depth;
              if (c == ')' || c == '>' || c == ']') --depth;
              if (depth == 0 && (c == '{' || c == ';')) break;
            }
            ++j;
          }
          continue;
        }
        if (is_punct(tr, ":")) {
          // Ctor-init list: members initialized with (...) or {...},
          // comma-separated; the first '{' not belonging to a member
          // initializer opens the body.
          ++j;
          while (j < t.size()) {
            // member name (possibly qualified template base)
            while (j < t.size() && !is_punct(t[j], "(") &&
                   !is_punct(t[j], "{") && !is_punct(t[j], ",")) {
              if (is_punct(t[j], "<")) {
                j = matching_close(t, j) + 1;
                continue;
              }
              ++j;
            }
            if (j >= t.size()) break;
            if (is_punct(t[j], ",")) {
              ++j;
              continue;
            }
            const bool brace_init = is_punct(t[j], "{");
            const bool is_member_init =
                j >= 1 && (t[j - 1].kind == TokKind::kIdent ||
                           is_punct(t[j - 1], ">"));
            if (brace_init && !is_member_init) break;  // the body
            j = matching_close(t, j) + 1;
            if (j < t.size() && is_punct(t[j], ",")) ++j;
          }
          continue;
        }
        if (is_punct(tr, "=")) {
          // = default / = delete / = 0: declaration only.
          while (j < t.size() && !is_punct(t[j], ";")) ++j;
          fn.is_definition = false;
          out.functions.push_back(fn);
          i = j + 1;
          parsed = true;
          continue;
        }
        if (is_punct(tr, ";")) {
          fn.is_definition = false;
          out.functions.push_back(fn);
          i = j + 1;
          parsed = true;
          continue;
        }
        if (is_punct(tr, "{")) {
          const std::size_t body_close = matching_close(t, j);
          fn.is_definition = true;
          fn.body_begin = j + 1;
          fn.body_end = body_close;
          out.functions.push_back(fn);
          i = body_close + 1;
          parsed = true;
          continue;
        }
        // Unexpected trailer (misdetected declarator, macro, template-arg
        // function type): abandon, resume right after the parameter list.
        break;
      }
      if (!parsed) i = params_close + 1;
      continue;
    }

    ++i;
  }
  return out;
}

bool LambdaSym::captures_this() const {
  for (const LambdaCapture& c : captures) {
    if (c.kind == CaptureKind::kThis || c.kind == CaptureKind::kStarThis ||
        c.kind == CaptureKind::kDefaultRef ||
        c.kind == CaptureKind::kDefaultValue) {
      return true;
    }
  }
  return false;
}

bool LambdaSym::has_ref_default() const {
  for (const LambdaCapture& c : captures) {
    if (c.kind == CaptureKind::kDefaultRef) return true;
  }
  return false;
}

bool LambdaSym::has_value_default() const {
  for (const LambdaCapture& c : captures) {
    if (c.kind == CaptureKind::kDefaultValue) return true;
  }
  return false;
}

namespace {

/// Parse the capture list between `open` (the `[`) and its matching `]`.
/// Returns false on any construct the parser does not understand.
bool parse_captures(const std::vector<Tok>& t, std::size_t open,
                    std::size_t close, std::vector<LambdaCapture>& out) {
  std::size_t i = open + 1;
  while (i < close) {
    LambdaCapture cap;
    cap.line = t[i].line;
    if (is_punct(t[i], "&")) {
      if (i + 1 >= close || is_punct(t[i + 1], ",")) {
        cap.kind = CaptureKind::kDefaultRef;
        ++i;
      } else if (t[i + 1].kind == TokKind::kIdent) {
        cap.kind = CaptureKind::kByRef;
        cap.name = t[i + 1].text;
        i += 2;
      } else if (is_punct(t[i + 1], "...")) {
        // `&...name` pack init-capture — tokenized as dots below.
        cap.kind = CaptureKind::kByRef;
        ++i;
      } else {
        return false;
      }
    } else if (is_punct(t[i], "=")) {
      // A lone `=` is the value default; `= expr` only follows a name and
      // is consumed by the init-capture scan below, so reaching `=` here
      // with more tokens following that are not `,` means a misparse.
      if (i + 1 < close && !is_punct(t[i + 1], ",")) return false;
      cap.kind = CaptureKind::kDefaultValue;
      ++i;
    } else if (is_ident(t[i], "this")) {
      cap.kind = CaptureKind::kThis;
      ++i;
    } else if (is_punct(t[i], "*") && i + 1 < close &&
               is_ident(t[i + 1], "this")) {
      cap.kind = CaptureKind::kStarThis;
      i += 2;
    } else if (is_punct(t[i], ".")) {
      // Pack expansion dots (`xs...`): attach to the previous capture.
      ++i;
      continue;
    } else if (t[i].kind == TokKind::kIdent) {
      cap.kind = CaptureKind::kByValue;
      cap.name = t[i].text;
      ++i;
    } else {
      return false;
    }

    // Init-capture: `name = expr` / `&name = expr`; the expression runs to
    // the next top-level comma (matching_close skips nested groups).
    if (i < close && is_punct(t[i], "=") &&
        (cap.kind == CaptureKind::kByRef ||
         cap.kind == CaptureKind::kByValue)) {
      cap.init = true;
      ++i;
      int depth = 0;
      while (i < close) {
        if (t[i].kind == TokKind::kPunct && t[i].text.size() == 1) {
          const char c = t[i].text[0];
          if (c == '(' || c == '<' || c == '[' || c == '{') ++depth;
          if (c == ')' || c == '>' || c == ']' || c == '}') --depth;
          if (depth == 0 && c == ',') break;
        }
        if (!cap.init_expr.empty()) cap.init_expr.push_back(' ');
        cap.init_expr += t[i].text;
        ++i;
      }
    }
    out.push_back(std::move(cap));

    // Trailing pack dots after the name (`args...`).
    while (i < close && is_punct(t[i], ".")) ++i;
    if (i < close) {
      if (!is_punct(t[i], ",")) return false;
      ++i;
      if (i >= close) return false;  // trailing comma
    }
  }
  return true;
}

}  // namespace

std::vector<LambdaSym> find_lambdas(const TokenStream& stream) {
  const std::vector<Tok>& t = stream.tokens;
  std::vector<LambdaSym> out;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (!lambda_intro_at(t, i)) continue;
    const std::size_t close = matching_close(t, i);
    if (close >= t.size()) continue;

    LambdaSym lam;
    lam.intro = i;
    lam.line = t[i].line;
    lam.col = t[i].col;
    const bool captures_ok = parse_captures(t, i, close, lam.captures);

    // After `]`: optional template parameters, parameter list, specifiers
    // (mutable/constexpr/noexcept(...)/static), attributes, and a trailing
    // return type — then the body `{`. Anything else means this was not a
    // lambda (or not one we understand): record it unparsed.
    std::size_t j = close + 1;
    bool found_body = false;
    while (j < t.size()) {
      const Tok& tr = t[j];
      if (is_punct(tr, "<") || is_punct(tr, "(")) {
        const std::size_t g = matching_close(t, j);
        if (g >= t.size()) break;
        j = g + 1;
        continue;
      }
      if (is_punct(tr, "[") && j + 1 < t.size() && is_punct(t[j + 1], "[")) {
        const std::size_t g = matching_close(t, j);  // outer of `[[...]]`
        if (g >= t.size()) break;
        j = g + 1;
        continue;
      }
      if (tr.kind == TokKind::kIdent &&
          (tr.text == "mutable" || tr.text == "constexpr" ||
           tr.text == "consteval" || tr.text == "static" ||
           tr.text == "noexcept")) {
        ++j;
        continue;
      }
      if (is_punct(tr, "->")) {
        // Trailing return type: skip to the body `{` at depth 0.
        ++j;
        int depth = 0;
        while (j < t.size()) {
          if (t[j].kind == TokKind::kPunct && t[j].text.size() == 1) {
            const char c = t[j].text[0];
            if (c == '(' || c == '<' || c == '[') ++depth;
            if (c == ')' || c == '>' || c == ']') --depth;
            if (depth == 0 && (c == '{' || c == ';')) break;
          }
          ++j;
        }
        continue;
      }
      if (is_punct(tr, "{")) {
        const std::size_t body_close = matching_close(t, j);
        if (body_close >= t.size()) break;
        lam.body_begin = j + 1;
        lam.body_end = body_close;
        found_body = true;
      }
      break;
    }
    lam.parsed = captures_ok && found_body;
    if (found_body) out.push_back(std::move(lam));
  }
  return out;
}

}  // namespace spider::lint
