#include "net/torus.hpp"

#include <cassert>
#include <cmath>
#include <cstdlib>
#include <stdexcept>

namespace spider::net {

Torus3D::Torus3D(TorusDims dims) : dims_(dims) {
  if (dims.x < 1 || dims.y < 1 || dims.z < 1) {
    throw std::invalid_argument("Torus3D: dimensions must be >= 1");
  }
}

int Torus3D::node_id(Coord c) const {
  assert(c.x >= 0 && c.x < dims_.x && c.y >= 0 && c.y < dims_.y && c.z >= 0 &&
         c.z < dims_.z);
  return (c.z * dims_.y + c.y) * dims_.x + c.x;
}

Coord Torus3D::coord_of(int node) const {
  Coord c;
  c.x = node % dims_.x;
  c.y = (node / dims_.x) % dims_.y;
  c.z = node / (dims_.x * dims_.y);
  return c;
}

int Torus3D::wrap_delta(int from, int to, int extent) {
  int d = to - from;
  if (d > extent / 2) d -= extent;
  if (d < -extent / 2) d += extent;
  // For even extents the two half-way routes tie; prefer positive.
  if (2 * std::abs(d) == extent && d < 0) d = -d;
  return d;
}

int Torus3D::hop_count(int from, int to) const {
  const Coord a = coord_of(from);
  const Coord b = coord_of(to);
  return std::abs(wrap_delta(a.x, b.x, dims_.x)) +
         std::abs(wrap_delta(a.y, b.y, dims_.y)) +
         std::abs(wrap_delta(a.z, b.z, dims_.z));
}

int Torus3D::neighbor(int node, int dir) const {
  Coord c = coord_of(node);
  switch (dir) {
    case 0: c.x = (c.x + 1) % dims_.x; break;
    case 1: c.x = (c.x - 1 + dims_.x) % dims_.x; break;
    case 2: c.y = (c.y + 1) % dims_.y; break;
    case 3: c.y = (c.y - 1 + dims_.y) % dims_.y; break;
    case 4: c.z = (c.z + 1) % dims_.z; break;
    case 5: c.z = (c.z - 1 + dims_.z) % dims_.z; break;
    default: throw std::invalid_argument("neighbor: bad direction");
  }
  return node_id(c);
}

std::vector<LinkId> Torus3D::route(int from, int to) const {
  std::vector<LinkId> links;
  if (from == to) return links;
  const Coord b = coord_of(to);
  int cur = from;
  Coord c = coord_of(from);
  // Dimension order: X, then Y, then Z; shorter wrap direction per dim.
  const std::array<std::pair<int, int>, 3> plan = {{
      {wrap_delta(c.x, b.x, dims_.x), 0},
      {wrap_delta(c.y, b.y, dims_.y), 2},
      {wrap_delta(c.z, b.z, dims_.z), 4},
  }};
  links.reserve(static_cast<std::size_t>(hop_count(from, to)));
  for (const auto& [delta, base_dir] : plan) {
    const int dir = delta >= 0 ? base_dir : base_dir + 1;
    for (int s = 0; s < std::abs(delta); ++s) {
      links.push_back(static_cast<LinkId>(cur) * 6 + static_cast<LinkId>(dir));
      cur = neighbor(cur, dir);
    }
  }
  assert(cur == to);
  return links;
}

}  // namespace spider::net
