# Empty dependencies file for spider_block.
# This may be replaced when dependencies are built.
