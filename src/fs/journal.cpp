#include "fs/journal.hpp"

namespace spider::fs {

double JournalModel::write_efficiency() const {
  switch (mode) {
    case JournalMode::kSyncOnData:
      return 0.70;  // measured class of loss that motivated the work
    case JournalMode::kAsync:
      return 0.88;
    case JournalMode::kHighPerformance:
      return 0.97;
  }
  return 1.0;
}

double JournalModel::commit_latency_s() const {
  switch (mode) {
    case JournalMode::kSyncOnData:
      return 12e-3;  // seek to the journal region and back
    case JournalMode::kAsync:
      return 3e-3;
    case JournalMode::kHighPerformance:
      return 0.5e-3;
  }
  return 0.0;
}

}  // namespace spider::fs
