// spiderlint include graph: a preprocessor-lite view of `#include "..."`
// edges between in-tree files, plus the architectural layering the edges
// must respect (rule L5).
//
// The layering, bottom to top (an include may only point at the same or a
// lower layer, and the file-level graph must stay acyclic):
//
//   common(0) -> sim(1) -> {block, fs, net}(2) -> workload(3) -> core(4)
//                                                  -> {tools, infra}(5)
//
// Nodes are keyed by include spelling: the path suffix after the last
// `src/` component ("sim/event_queue.hpp"), which is exactly how in-tree
// includes are written. Angle-bracket includes are system headers and are
// not part of the graph.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "tools/lint/scan.hpp"

namespace spider::lint {

struct IncludeEdge {
  std::string target;     ///< quoted include spelling, e.g. "sim/time.hpp"
  std::size_t line = 0;   ///< 0-based line of the #include
};

/// Quoted-include edges of one scanned file, in line order.
std::vector<IncludeEdge> quoted_includes(const SourceFile& file);

/// The include key of a path: the suffix after the last "src" component
/// ("core/center.hpp"), or empty when the path is not under src/.
std::string include_key(std::string_view path);

/// Layer rank of an include key's first component; -1 when the component is
/// not part of the layered architecture.
int layer_of(std::string_view key);

/// Human name of a layer rank ("common", "sim", "block/fs/net", ...).
std::string_view layer_name(int layer);

/// File-level include graph over in-tree sources.
class IncludeGraph {
 public:
  /// Register a file by include key (ignored when the key is empty).
  void add_file(const std::string& key, const SourceFile* source);
  /// All registered keys, sorted (map order).
  const std::map<std::string, const SourceFile*>& files() const {
    return files_;
  }

  /// Cycles in the graph among registered files. Each cycle is reported
  /// once, as the key sequence [a, b, ..., a], deterministically (smallest
  /// starting key first).
  std::vector<std::vector<std::string>> cycles() const;

 private:
  std::map<std::string, const SourceFile*> files_;
};

}  // namespace spider::lint
