// Ablation A2 (Section IV-D): high-performance Lustre journaling.
//
// OLCF direct-funded "high-performance Lustre journaling" because stock
// synchronous journal commits on the data spindles taxed every write. The
// ablation shows the OST- and system-level write bandwidth under the three
// journaling modes, and the commit-latency tax on small-file workloads.
#include <iostream>

#include "bench_util.hpp"
#include "block/raid.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "fs/journal.hpp"
#include "fs/ost.hpp"

int main() {
  using namespace spider;
  using namespace spider::fs;

  Rng rng(2014);
  std::vector<block::Disk> members;
  for (int m = 0; m < 10; ++m) {
    members.emplace_back(block::DiskParams{}, m, 1.0, 1e-4);
  }
  block::Raid6Group group(block::RaidParams{}, std::move(members));

  bench::banner("A2: journaling mode vs delivered write bandwidth");
  Table table;
  table.set_columns({"journal mode", "OST write MB/s", "2016-OST system GB/s",
                     "commit latency ms", "small-file creates/s/OST"});
  double bw[3];
  int row = 0;
  for (JournalMode mode : {JournalMode::kSyncOnData, JournalMode::kAsync,
                           JournalMode::kHighPerformance}) {
    OstParams params;
    params.journal.mode = mode;
    const Ost ost(0, &group, params);
    const double ost_bw =
        ost.bandwidth(block::IoMode::kSequential, block::IoDir::kWrite);
    bw[row++] = ost_bw;
    const JournalModel journal{mode};
    // Small-file create+write: one commit per file gates throughput.
    const double creates_per_s = 1.0 / (journal.commit_latency_s() + 1e-3);
    const char* name = mode == JournalMode::kSyncOnData
                           ? "sync on data disks (stock)"
                           : mode == JournalMode::kAsync
                                 ? "async commit"
                                 : "high-performance (OLCF-funded)";
    table.add_row({std::string(name), to_mbps(ost_bw),
                   to_gbps(ost_bw * 2016.0), journal.commit_latency_s() * 1e3,
                   creates_per_s});
  }
  table.print(std::cout);
  std::cout << "\n";

  bench::ShapeChecker checker;
  checker.check(bw[2] > bw[1] && bw[1] > bw[0],
                "each journaling improvement raises write bandwidth");
  checker.check(bw[2] / bw[0] > 1.25,
                "high-performance journaling recovers >25% write bandwidth "
                "over sync-on-data");
  checker.check((bw[2] - bw[0]) * 2016.0 > 200.0 * kGBps,
                "at system scale the feature is worth hundreds of GB/s");
  return checker.exit_code();
}
