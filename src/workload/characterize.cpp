#include "workload/characterize.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <vector>

namespace spider::workload {

double hill_tail_index(std::span<const double> samples, std::size_t k) {
  if (samples.size() < k + 1 || k == 0) return 0.0;
  std::vector<double> sorted(samples.begin(), samples.end());
  std::sort(sorted.begin(), sorted.end(), std::greater<>());
  const double x_k = sorted[k];  // (k+1)-th largest
  if (x_k <= 0.0) return 0.0;
  double acc = 0.0;
  for (std::size_t i = 0; i < k; ++i) {
    acc += std::log(sorted[i] / x_k);
  }
  return acc > 0.0 ? static_cast<double>(k) / acc : 0.0;
}

WorkloadStats characterize(std::span<const IoRequest> trace,
                           double idle_threshold_s) {
  WorkloadStats stats;
  stats.requests = trace.size();
  if (trace.empty()) return stats;

  std::size_t writes = 0;
  std::size_t small = 0;
  std::size_t mb_mult = 0;
  for (const auto& r : trace) {
    if (r.dir == block::IoDir::kWrite) ++writes;
    if (r.size < 16_KiB) ++small;
    if (r.size >= 1_MB && r.size % 1_MB == 0) ++mb_mult;
    stats.size_histogram.add(static_cast<double>(r.size));
  }
  const auto n = static_cast<double>(trace.size());
  stats.write_fraction = static_cast<double>(writes) / n;
  stats.small_fraction = static_cast<double>(small) / n;
  stats.mb_multiple_fraction = static_cast<double>(mb_mult) / n;

  // Per-client gap series (arrival process is per client).
  std::map<std::uint32_t, sim::SimTime> last_by_client;
  std::vector<double> burst_gaps;
  std::vector<double> idle_gaps;
  for (const auto& r : trace) {
    auto [it, fresh] = last_by_client.try_emplace(r.client, r.issue_time);
    if (!fresh) {
      const double gap = sim::to_seconds(r.issue_time - it->second);
      it->second = r.issue_time;
      if (gap <= 0.0) continue;
      if (gap >= idle_threshold_s) {
        idle_gaps.push_back(gap);
      } else {
        burst_gaps.push_back(gap);
      }
    }
  }
  stats.interarrival_tail_alpha =
      hill_tail_index(burst_gaps, std::max<std::size_t>(10, burst_gaps.size() / 20));
  stats.idle_tail_alpha =
      hill_tail_index(idle_gaps, std::max<std::size_t>(10, idle_gaps.size() / 10));
  return stats;
}

}  // namespace spider::workload
