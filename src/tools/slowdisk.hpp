// Slow-disk identification and culling (Section V-A, Lesson 13).
//
// "Block-level benchmarks were run to ensure that the slowest RAID group
// performance over a single SSU was within the 5% of the fastest and
// across the 2,016 RAID groups the performance varied no more than the 5%
// of the average. We conducted multiple rounds of these tests, eliminating
// the slowest performing disks at each round. ... Overall, during the
// deployment process we replaced around 1,500 of 20,160 fully functioning,
// but slower, disks. After deployment, the same process was repeated at
// the file system level and we eliminated approximately another 500 disks."
// In production the 5% requirement was relaxed to 7.5%.
//
// The workflow here mirrors that process: benchmark groups, bin them,
// pull disk-level statistics from the lowest bins, replace the disks with
// outlying service latency, repeat until the variance envelope holds.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "block/ssu.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"

namespace spider::tools {

struct CullingConfig {
  /// Intra-SSU envelope: slowest group within this fraction of the fastest.
  double intra_ssu_threshold = 0.05;
  /// Fleet envelope: every group within this fraction of the fleet mean.
  double fleet_threshold = 0.05;
  std::size_t max_rounds = 12;
  Bytes request_size = 1_MiB;
  /// Performance bins used to rank groups per round.
  std::size_t bins = 10;
  /// Fraction of lowest-bin groups examined at disk level each round.
  double examine_fraction = 1.0;
  /// A member whose measured median service latency exceeds the group's
  /// median-of-medians by this factor is flagged for replacement ("Disks
  /// accumulating higher I/O request service latencies were identified
  /// and replaced").
  double latency_flag_factor = 1.04;  // spiderlint: units-ok — dimensionless multiplier
  /// Service-time samples drawn per member when examining a group.
  std::size_t latency_samples = 200;
};

/// Measured per-member service-latency statistics for one RAID group —
/// the disk-level evidence the culling workflow collects from the lowest
/// performance bins.
struct MemberLatencyReport {
  std::vector<double> median_s;  ///< per member
  std::vector<double> p99_s;     ///< per member
  /// Median of the member medians (the group's healthy reference).
  double group_median_s = 0.0;
};

/// Benchmark every member of a group with `samples` sequential-write
/// requests of `request_size` and report latency statistics.
MemberLatencyReport measure_member_latencies(const block::Raid6Group& group,
                                             Bytes request_size,
                                             std::size_t samples, Rng& rng);

/// Members whose median latency exceeds group_median * flag_factor.
std::vector<std::size_t> flag_slow_members(const MemberLatencyReport& report,
                                           double flag_factor);

struct CullingRound {
  std::size_t round = 0;
  Bandwidth fleet_mean_bw = 0.0;       ///< bytes/s per group
  double worst_intra_ssu_spread = 0.0; ///< (max-min)/max within worst SSU
  double fleet_spread = 0.0;           ///< max |bw - mean| / mean
  std::size_t disks_replaced = 0;
};

struct CullingReport {
  std::vector<CullingRound> rounds;
  std::size_t total_disks_replaced = 0;
  bool converged = false;
  Bandwidth final_fleet_mean_bw = 0.0;
  Bandwidth initial_fleet_mean_bw = 0.0;
};

/// Run the iterative culling workflow over a fleet of SSUs (mutates them:
/// slow disks get replaced with healthy units).
CullingReport run_culling(std::span<block::Ssu> ssus, const CullingConfig& cfg,
                          Rng& rng);

/// One round of measurement only (no replacement): the production
/// periodic re-check (the "repeat periodically for the lifetime" lesson).
CullingRound measure_fleet(std::span<const block::Ssu> ssus,
                           const CullingConfig& cfg);

}  // namespace spider::tools
