#include "tools/lint/report.hpp"

#include <cstdio>
#include <map>
#include <sstream>

namespace spider::lint {

std::size_t LintReport::errors() const {
  std::size_t n = 0;
  for (const Finding& f : findings) {
    if (f.severity == Severity::kError) ++n;
  }
  return n;
}

std::size_t LintReport::warnings() const {
  return findings.size() - errors();
}

std::string render_text(const LintReport& report, bool fix_hints) {
  std::ostringstream out;
  for (const Finding& f : report.findings) {
    out << f.file << ':' << f.line << ':' << f.column << ": "
        << to_string(f.severity) << ": [" << f.rule << "] " << f.message
        << '\n';
    if (fix_hints && !f.hint.empty()) {
      out << "    hint: " << f.hint << '\n';
    }
  }
  if (report.clean()) {
    out << "spiderlint: clean (" << report.files_scanned << " files)\n";
  } else {
    out << "spiderlint: " << report.findings.size() << " finding"
        << (report.findings.size() == 1 ? "" : "s") << " ("
        << report.errors() << " errors, " << report.warnings()
        << " warnings) in " << report.files_scanned << " files\n";
    if (fix_hints) {
      // Per-rule digest so a long report still ends with the fix story.
      std::map<std::string, std::size_t> by_rule;
      for (const Finding& f : report.findings) ++by_rule[f.rule];
      for (const auto& [id, count] : by_rule) {
        const RuleInfo* info = rule(id);
        out << "  " << id << " (" << count << "): "
            << (info != nullptr ? info->hint : std::string_view("")) << '\n';
      }
    }
  }
  return out.str();
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string render_sarif(const LintReport& report) {
  std::ostringstream out;
  out << "{\n"
      << "  \"$schema\": "
         "\"https://json.schemastore.org/sarif-2.1.0.json\",\n"
      << "  \"version\": \"2.1.0\",\n"
      << "  \"runs\": [\n"
      << "    {\n"
      << "      \"tool\": {\n"
      << "        \"driver\": {\n"
      << "          \"name\": \"spiderlint\",\n"
      << "          \"informationUri\": \"docs/static-analysis.md\",\n"
      << "          \"rules\": [\n";
  const std::vector<RuleInfo>& all = rules();
  for (std::size_t i = 0; i < all.size(); ++i) {
    const RuleInfo& r = all[i];
    out << "            {\"id\": \"" << r.id << "\", \"name\": \"" << r.name
        << "\", \"shortDescription\": {\"text\": \""
        << json_escape(r.summary) << "\"}, \"help\": {\"text\": \""
        << json_escape(r.hint) << "\"}, \"defaultConfiguration\": "
        << "{\"level\": \""
        << (r.severity == Severity::kError ? "error" : "warning") << "\"}}"
        << (i + 1 < all.size() ? "," : "") << '\n';
  }
  out << "          ]\n"
      << "        }\n"
      << "      },\n"
      << "      \"results\": [\n";
  for (std::size_t i = 0; i < report.findings.size(); ++i) {
    const Finding& f = report.findings[i];
    std::size_t rule_index = 0;
    for (std::size_t r = 0; r < all.size(); ++r) {
      if (all[r].id == f.rule) rule_index = r;
    }
    out << "        {\"ruleId\": \"" << json_escape(f.rule)
        << "\", \"ruleIndex\": " << rule_index << ", \"level\": \""
        << (f.severity == Severity::kError ? "error" : "warning")
        << "\", \"message\": {\"text\": \"" << json_escape(f.message)
        << "\"}, \"locations\": [{\"physicalLocation\": "
        << "{\"artifactLocation\": {\"uri\": \"" << json_escape(f.file)
        << "\"}, \"region\": {\"startLine\": " << f.line
        << ", \"startColumn\": " << f.column << "}}}]}"
        << (i + 1 < report.findings.size() ? "," : "") << '\n';
  }
  out << "      ]\n"
      << "    }\n"
      << "  ]\n"
      << "}\n";
  return out.str();
}

std::string render_json(const LintReport& report) {
  std::ostringstream out;
  out << "{\"version\": 1, \"files_scanned\": " << report.files_scanned
      << ", \"counts\": {\"error\": " << report.errors()
      << ", \"warning\": " << report.warnings() << "}, \"findings\": [";
  for (std::size_t i = 0; i < report.findings.size(); ++i) {
    const Finding& f = report.findings[i];
    if (i > 0) out << ", ";
    out << "{\"rule\": \"" << json_escape(f.rule) << "\", \"severity\": \""
        << to_string(f.severity) << "\", \"file\": \"" << json_escape(f.file)
        << "\", \"line\": " << f.line << ", \"column\": " << f.column
        << ", \"message\": \"" << json_escape(f.message)
        << "\", \"hint\": \"" << json_escape(f.hint) << "\"}";
  }
  out << "]}\n";
  return out.str();
}

}  // namespace spider::lint
