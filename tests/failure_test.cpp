#include <gtest/gtest.h>

#include <algorithm>
#include <utility>
#include <vector>

#include "block/disk.hpp"
#include "block/failure.hpp"
#include "block/raid.hpp"
#include "common/rng.hpp"

namespace spider::block {
namespace {

TEST(Incident2010, FiveEnclosureDesignLosesData) {
  Rng rng(1);
  IncidentConfig cfg;
  cfg.enclosures = 5;
  const auto out = replay_incident_2010(cfg, rng);
  EXPECT_TRUE(out.data_lost);
  EXPECT_GE(out.groups_lost, 1u);
  EXPECT_EQ(out.journal_files_lost, cfg.journal_files);
  EXPECT_NEAR(out.recovered_fraction, 0.95, 1e-9);
  EXPECT_GT(out.recovery_days, 14.0);
  EXPECT_GE(out.timeline.size(), 4u);
}

TEST(Incident2010, TenEnclosureDesignTolerates) {
  Rng rng(1);
  IncidentConfig cfg;
  cfg.enclosures = 10;
  const auto out = replay_incident_2010(cfg, rng);
  EXPECT_FALSE(out.data_lost);
  EXPECT_EQ(out.groups_lost, 0u);
  EXPECT_DOUBLE_EQ(out.recovered_fraction, 1.0);
}

TEST(Incident2010, DeterministicAcrossSeedsForConclusion) {
  // The conclusion (loss vs no loss) is a geometry property, not luck.
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    Rng rng(seed);
    IncidentConfig five;
    five.enclosures = 5;
    EXPECT_TRUE(replay_incident_2010(five, rng).data_lost) << seed;
    Rng rng2(seed);
    IncidentConfig ten;
    ten.enclosures = 10;
    EXPECT_FALSE(replay_incident_2010(ten, rng2).data_lost) << seed;
  }
}

TEST(RandomFailures, PromptRebuildsPreventLoss) {
  Rng rng(2);
  SsuParams params;
  params.raid_groups = 8;  // keep the sweep fast
  Ssu ssu(params, 0, rng);
  // 3% AFR over half a year of operation.
  const auto stats = inject_random_failures(ssu, 0.5, 0.03, rng);
  EXPECT_GT(stats.disk_failures, 0u);
  EXPECT_EQ(stats.groups_lost, 0u);
}

TEST(RandomFailures, AbsurdFailureRateEventuallyLosesGroups) {
  Rng rng(3);
  SsuParams params;
  params.raid_groups = 4;
  params.raid.rebuild_rate = 0.5 * kMBps;  // pathologically slow rebuild
  Ssu ssu(params, 0, rng);
  const auto stats = inject_random_failures(ssu, 1.0, 40.0, rng);
  EXPECT_GT(stats.double_failures, 0u);
  EXPECT_GT(stats.groups_lost, 0u);
}

// --- metamorphic rebuild properties ----------------------------------------
//
// Instead of pinning rebuild times to constants, these tests assert relations
// that must hold between *pairs* of related configurations. A calibration
// change can move the absolute numbers; it cannot legally break the relations.

std::vector<Disk> varied_members(std::size_t n) {
  std::vector<Disk> members;
  for (std::size_t i = 0; i < n; ++i) {
    // Perf factors vary per member so relabeling is a non-trivial permutation.
    members.emplace_back(DiskParams{}, static_cast<std::uint32_t>(i),
                         1.0 - 0.05 * static_cast<double>(i % 7), 1e-4);
  }
  return members;
}

TEST(RebuildMetamorphic, TimeIsMonotoneInRebuildBandwidth) {
  // More surviving-disk bandwidth devoted to rebuild => strictly shorter
  // rebuild window. Checked across both the raw rate and the parity-
  // declustering speedup, which multiply identically.
  double prev = 1e300;
  for (double rate_mbps : {10.0, 25.0, 50.0, 100.0, 400.0}) {
    RaidParams p;
    p.rebuild_rate = rate_mbps * kMBps;
    const Raid6Group g(p, varied_members(10));
    EXPECT_LT(g.rebuild_time_s(), prev) << "rate " << rate_mbps;
    prev = g.rebuild_time_s();
  }
  prev = 1e300;
  for (double speedup : {1.0, 2.0, 4.0, 8.0}) {
    RaidParams p;
    p.rebuild_speedup = speedup;
    const Raid6Group g(p, varied_members(10));
    EXPECT_LT(g.rebuild_time_s(), prev) << "speedup " << speedup;
    prev = g.rebuild_time_s();
  }
}

TEST(RebuildMetamorphic, InvariantUnderMemberRelabeling) {
  // Renumbering the physical disks must not change any group-level figure:
  // capacity, rebuild time, min member factor, or delivered bandwidth.
  std::vector<Disk> base = varied_members(10);
  std::vector<Disk> shuffled = base;
  std::rotate(shuffled.begin(), shuffled.begin() + 3, shuffled.end());
  std::swap(shuffled[0], shuffled[7]);

  const Raid6Group a(RaidParams{}, std::move(base));
  const Raid6Group b(RaidParams{}, std::move(shuffled));
  EXPECT_EQ(a.capacity(), b.capacity());
  EXPECT_DOUBLE_EQ(a.rebuild_time_s(), b.rebuild_time_s());
  EXPECT_DOUBLE_EQ(a.min_member_factor(), b.min_member_factor());
  EXPECT_DOUBLE_EQ(a.bandwidth(IoMode::kSequential, IoDir::kWrite),
                   b.bandwidth(IoMode::kSequential, IoDir::kWrite));
  EXPECT_DOUBLE_EQ(a.bandwidth(IoMode::kRandom, IoDir::kRead, 128_KiB),
                   b.bandwidth(IoMode::kRandom, IoDir::kRead, 128_KiB));
}

TEST(RebuildMetamorphic, WiderStripeAtHalfRatePreservesRebuildVolume) {
  // Total bytes moved to rebuild one member equal that member's capacity
  // regardless of stripe geometry: doubling the stripe width while halving
  // the per-disk rebuild rate doubles the window but moves the same volume.
  RaidParams narrow;
  RaidParams wide;
  wide.data_disks = narrow.data_disks * 2;
  wide.rebuild_rate = narrow.rebuild_rate / 2.0;
  const Raid6Group a(narrow,
                     varied_members(narrow.data_disks + narrow.parity_disks));
  const Raid6Group b(wide, varied_members(wide.data_disks + wide.parity_disks));

  const double bytes_a =
      a.rebuild_time_s() * narrow.rebuild_rate * narrow.rebuild_speedup;
  const double bytes_b =
      b.rebuild_time_s() * wide.rebuild_rate * wide.rebuild_speedup;
  EXPECT_NEAR(bytes_a, bytes_b, 1.0);
  EXPECT_NEAR(bytes_a, static_cast<double>(a.member(0).capacity()), 1.0);
  EXPECT_NEAR(b.rebuild_time_s(), 2.0 * a.rebuild_time_s(),
              1e-6 * a.rebuild_time_s());
}

}  // namespace
}  // namespace spider::block
