// C8 (Lesson 10 / Section VI-C): performance vs file-system fullness.
//
// Paper: "The OLCF as well as many other HPC centers that use Lustre note
// a severe performance degradation after the resource is 70% or more
// full" and "we have seen direct performance degradation when the
// utilization of the filesystem is greater than 50%". Capacity targets
// should therefore sit 30%+ above workload estimates.
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "core/center.hpp"
#include "core/spider_config.hpp"
#include "workload/ior.hpp"

int main() {
  using namespace spider;

  Rng rng(2014);
  // Give the controllers headroom so the sweep isolates the storage layer:
  // in a controller-bound system mild fullness loss hides behind the
  // controller ceiling (exactly why capacity planning uses OST-level
  // margins, Lesson 10).
  auto cfg = core::scaled_config(core::spider2_config(), 0.25);
  cfg.ssu.controller.per_controller_bw = 30.0 * kGBps;
  core::CenterModel center(cfg, rng);
  center.set_target_namespace(SIZE_MAX);
  center.set_client_placement(core::ClientPlacement::kOptimal, rng);

  bench::banner("C8: delivered bandwidth vs file-system fullness");
  Table table;
  table.set_columns({"fullness %", "aggregate GB/s", "relative"});
  std::vector<double> agg;
  const std::vector<double> fills{0.0,  0.30, 0.50, 0.60, 0.70,
                                  0.80, 0.90, 0.95};
  for (double f : fills) {
    center.set_fleet_fullness(f);
    workload::IorConfig ior_cfg;
    ior_cfg.clients = center.total_osts() * 2;
    const auto r = workload::run_ior(center, ior_cfg);
    agg.push_back(r.aggregate_bw);
    table.add_row({f * 100.0, to_gbps(r.aggregate_bw), r.aggregate_bw / agg[0]});
  }
  table.print(std::cout);
  std::cout << "\n";

  bench::ShapeChecker checker;
  checker.check(agg[1] > 0.999 * agg[0],
                "no loss below 50% full");
  checker.check(agg[3] < agg[2],
                "measurable degradation past 50% (admin observation)");
  checker.check(agg[4] > 0.85 * agg[0],
                "moderate loss at the 70% knee");
  // Severe region: the drop from 70% to 90% is much steeper than from
  // 50% to 70%.
  const double gentle = agg[2] - agg[4];
  const double severe = agg[4] - agg[6];
  checker.check(severe > 2.0 * gentle,
                "severe degradation beyond 70% full (paper's knee)");
  checker.check(agg[7] < 0.7 * agg[0],
                "a nearly full scratch loses a third or more of its bandwidth");
  return checker.exit_code();
}
