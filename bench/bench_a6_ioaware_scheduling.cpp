// Ablation A6 (Lesson 18): I/O-aware scheduling built on IOSI signatures.
//
// "IOSI can be used to dynamically detect I/O patterns and aid users and
// administrators to allocate resources in an efficient manner" — here,
// three periodic applications whose signatures IOSI extracted get phase
// offsets that de-overlap their checkpoint bursts. Verified two ways: the
// analytic peak-demand timeline, and a DES run measuring each burst's
// achieved bandwidth with and without the schedule.
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/center.hpp"
#include "core/scenario.hpp"
#include "core/spider_config.hpp"
#include "tools/scheduler.hpp"

namespace {

using namespace spider;

tools::IosiSignature make_sig(double period_s, double burst_s, double burst_gb) {
  tools::IosiSignature sig;
  sig.found = true;
  sig.period_s = period_s;
  sig.burst_duration_s = burst_s;
  sig.burst_bytes = burst_gb * 1e9;
  sig.confidence = 1.0;
  return sig;
}

/// Run the three apps through the DES with given phase offsets; returns the
/// mean achieved bandwidth per burst.
double run_des(core::CenterModel& center,
               const std::vector<tools::IosiSignature>& apps,
               const std::vector<double>& offsets) {
  sim::Simulator sim;
  core::ScenarioRunner runner(center, sim);
  std::vector<double> burst_bw;
  for (std::size_t a = 0; a < apps.size(); ++a) {
    for (double t = offsets[a]; t < 3600.0; t += apps[a].period_s) {
      workload::IoBurst burst;
      burst.start = sim::from_seconds(t);
      burst.clients = 1024;
      burst.bytes_per_client =
          static_cast<Bytes>(apps[a].burst_bytes / 1024.0);
      const std::size_t base = a * 37;
      runner.submit_burst(burst,
                          [base, &center](std::size_t f) {
                            return (base + f) % center.total_osts();
                          },
                          [&burst_bw](core::BurstOutcome o) {
                            burst_bw.push_back(o.achieved_bw);
                          },
                          16, 10000 * (a + 1));
    }
  }
  sim.run();
  return mean_of(burst_bw);
}

}  // namespace

int main() {
  using namespace spider;

  bench::banner("A6: IOSI-driven burst scheduling, three periodic apps");

  const std::vector<tools::IosiSignature> apps{
      make_sig(600, 45, 800), make_sig(600, 60, 600), make_sig(1200, 90, 1000)};
  const auto schedule = tools::schedule_applications(apps);

  Table table;
  table.set_columns({"app", "period s", "burst GB", "chosen offset s"});
  for (std::size_t a = 0; a < apps.size(); ++a) {
    table.add_row({std::string("app") + std::to_string(a), apps[a].period_s,
                   apps[a].burst_bytes / 1e9, schedule.offsets[a]});
  }
  table.print(std::cout);
  std::cout << "\nanalytic peak demand: naive "
            << to_gbps(schedule.naive_peak_bw) << " GB/s -> scheduled "
            << to_gbps(schedule.scheduled_peak_bw) << " GB/s ("
            << schedule.peak_reduction << "x reduction)\n";

  Rng rng(2014);
  core::CenterModel center(core::scaled_config(core::spider2_config(), 0.15),
                           rng);
  center.set_client_placement(core::ClientPlacement::kRandom, rng);
  const std::vector<double> naive_offsets(apps.size(), 0.0);
  const double naive_bw = run_des(center, apps, naive_offsets);
  const double scheduled_bw = run_des(center, apps, schedule.offsets);
  std::cout << "DES mean per-burst bandwidth: naive " << to_gbps(naive_bw)
            << " GB/s -> scheduled " << to_gbps(scheduled_bw) << " GB/s ("
            << 100.0 * (scheduled_bw / naive_bw - 1.0) << "% faster bursts)\n\n";

  bench::ShapeChecker checker;
  checker.check(schedule.peak_reduction > 1.5,
                "schedule cuts the aggregate demand peak substantially");
  checker.check(scheduled_bw > 1.1 * naive_bw,
                "de-overlapped bursts finish measurably faster in the DES");
  return checker.exit_code();
}
