// Center configurations: Spider II, Spider I, and scaled variants.
//
// Numbers come straight from the paper (Sections I, III, V):
//   Titan: 18,688 clients on a 25x16x24 Gemini 3D torus; 440 LNET routers
//   in 110 I/O modules of 4.
//   Spider II: 36 SSUs, 20,160 2 TB NL-SAS disks in 2,016 RAID-6 8+2
//   groups (one OST each), 288 OSS, 2 namespaces, 32 PB, >1 TB/s
//   sequential and 240 GB/s random targets; 36 IB leaf switches.
//   Spider I: 240 GB/s, 10 PB, 4 namespaces.
// The controller upgrade (Section V-C) raised a namespace from 320 to
// 510 GB/s; spider2_config(upgraded=false) reproduces the pre-upgrade
// machine Figures 3-4 were measured on.
#pragma once

#include <cstdint>
#include <string>

#include "block/ssu.hpp"
#include "fs/mds.hpp"
#include "fs/oss.hpp"
#include "fs/ost.hpp"
#include "fs/striping.hpp"
#include "net/fabric.hpp"
#include "net/placement.hpp"
#include "net/torus.hpp"

namespace spider::core {

struct CenterConfig {
  std::string name = "spider2";

  // --- compute platform ---------------------------------------------------
  net::TorusDims torus{25, 16, 24};
  std::uint32_t clients = 18688;
  std::uint32_t clients_per_node = 2;
  /// Per-torus-node injection ceiling for I/O traffic.
  Bandwidth node_injection_bw = 2.8 * kGBps;
  /// Per-process Lustre pipeline ceiling with a zero-hop router path.
  Bandwidth client_stream_bw = 620.0 * kMBps;
  /// Transfer-size ramp parameters (see workload::transfer_size_rate_cap).
  Bytes rpc_knee = 192_KiB;
  Bytes max_rpc = 1_MiB;
  double oversize_penalty = 0.97;
  /// Placement-quality penalty: a client k torus hops from its router
  /// shares dimension-order-routed links with O(k) other streams, so its
  /// delivered ceiling is stream_bw / (1 + per_hop_penalty * k). This is
  /// the congestion effect of [8,9] that makes the paper's optimally
  /// placed 1,008 clients worth ~10x randomly placed ones.
  double per_hop_penalty = 1.3;
  Bandwidth torus_link_bw = 4.7 * kGBps;

  // --- I/O routers ----------------------------------------------------------
  net::PlacementConfig placement{};  // 110 modules x 4 routers, 36 groups
  net::PlacementStrategy placement_strategy = net::PlacementStrategy::kFgrZoned;
  Bandwidth router_bw = 2.8 * kGBps;

  // --- SAN ------------------------------------------------------------------
  net::FabricParams fabric{};

  // --- storage ----------------------------------------------------------------
  std::size_t ssus = 36;
  block::SsuParams ssu{};
  std::size_t oss_count = 288;
  fs::OssParams oss{};
  fs::OstParams ost{};
  std::size_t namespaces = 2;
  fs::MdsParams mds{};
  fs::StripePolicy default_stripe{1, 1_MiB};
  fs::AllocatorMode allocator_mode = fs::AllocatorMode::kQosWeighted;
};

/// Spider II as deployed. `upgraded_controllers` selects the post-refresh
/// controller generation (510 GB/s per namespace) vs the original
/// (320 GB/s per namespace).
CenterConfig spider2_config(bool upgraded_controllers = true);

/// Spider I (the 2008 system): 240 GB/s, 10 PB, 4 namespaces, 5-enclosure
/// failure domains.
CenterConfig spider1_config();

/// Proportionally scaled-down variant for fast tests/DES scenarios: client
/// count, SSUs, OSS, router modules, and torus volume all scale by ~f;
/// per-unit performance is unchanged, so bandwidth scales by ~f too.
CenterConfig scaled_config(CenterConfig base, double f);

}  // namespace spider::core
