#!/usr/bin/env bash
# Engine perf trajectory: build bench_micro_engine in Release and write the
# machine-readable throughput report to BENCH_engine.json at the repo root,
# gated against the checked-in pre-PR baseline (ci/bench-baseline-engine.json).
#
# Usage: scripts/bench.sh [--smoke] [build-dir]
#   --smoke     seconds-long run sized for CI; full mode is the default and
#               is what PR before/after records should quote.
#   build-dir   defaults to build-bench/ (kept separate from build/ so a
#               sanitizer or Debug tree never pollutes perf numbers).
#
# Exit code is bench_micro_engine's: non-zero when a shape check fails or a
# metric drops below the 0.60x regression floor of the baseline.
set -euo pipefail

cd "$(dirname "$0")/.."

SMOKE=""
BUILD_DIR="build-bench"
for arg in "$@"; do
  case "${arg}" in
    --smoke) SMOKE="--smoke" ;;
    --*) echo "usage: scripts/bench.sh [--smoke] [build-dir]" >&2; exit 2 ;;
    *) BUILD_DIR="${arg}" ;;
  esac
done

JOBS="$(nproc 2>/dev/null || echo 4)"
echo "=== [bench] configure + build (Release) ==="
cmake -B "${BUILD_DIR}" -S . -DCMAKE_BUILD_TYPE=Release
cmake --build "${BUILD_DIR}" -j "${JOBS}" --target bench_micro_engine

echo "=== [bench] engine throughput ==="
"${BUILD_DIR}/bench/bench_micro_engine" \
    --spider-json=BENCH_engine.json \
    --baseline=ci/bench-baseline-engine.json \
    ${SMOKE}
