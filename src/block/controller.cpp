#include "block/controller.hpp"

#include <stdexcept>

namespace spider::block {

ControllerParams upgraded_controller_params() {
  ControllerParams p;
  p.per_controller_bw = kUpgradedControllerBw;
  p.per_controller_iops = kUpgradedControllerIops;
  return p;
}

ControllerPair::ControllerPair(const ControllerParams& params) : params_(params) {
  if (params_.per_controller_bw <= 0.0) {
    throw std::invalid_argument("controller bandwidth must be > 0");
  }
}

Bandwidth ControllerPair::delivered_bw() const {
  switch (state_) {
    case PairState::kActiveActive:
      return 2.0 * params_.per_controller_bw;
    case PairState::kFailedOver:
      return params_.per_controller_bw;
    case PairState::kOffline:
      return 0.0;
  }
  return 0.0;
}

double ControllerPair::delivered_iops() const {
  switch (state_) {
    case PairState::kActiveActive:
      return 2.0 * params_.per_controller_iops;
    case PairState::kFailedOver:
      return params_.per_controller_iops;
    case PairState::kOffline:
      return 0.0;
  }
  return 0.0;
}

void ControllerPair::fail_one() {
  if (state_ == PairState::kActiveActive) state_ = PairState::kFailedOver;
}

void ControllerPair::recover() {
  if (state_ == PairState::kFailedOver) state_ = PairState::kActiveActive;
}

std::uint64_t ControllerPair::take_offline(bool graceful) {
  std::uint64_t lost = 0;
  if (graceful) {
    journal_commit();
  } else {
    lost = journal_entries_;
    journal_lost_total_ += lost;
    journal_entries_ = 0;
  }
  state_ = PairState::kOffline;
  return lost;
}

void ControllerPair::bring_online() { state_ = PairState::kActiveActive; }

void ControllerPair::journal_add(std::uint64_t files) { journal_entries_ += files; }

void ControllerPair::journal_commit() { journal_entries_ = 0; }

}  // namespace spider::block
