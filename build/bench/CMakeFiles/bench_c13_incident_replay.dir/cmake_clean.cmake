file(REMOVE_RECURSE
  "CMakeFiles/bench_c13_incident_replay.dir/bench_c13_incident_replay.cpp.o"
  "CMakeFiles/bench_c13_incident_replay.dir/bench_c13_incident_replay.cpp.o.d"
  "bench_c13_incident_replay"
  "bench_c13_incident_replay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_c13_incident_replay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
