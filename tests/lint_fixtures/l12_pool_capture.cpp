// Fixture for spiderlint rule L12 (pool-capture-discipline).
//
// Closures handed to parallel_for/ThreadPool::submit/submit_to run on pool
// workers: by-reference captures of members lacking SPIDER_GUARDED_BY /
// std::atomic race, and by-ref locals without a visible join dangle. The
// fork-join local, the guarded/atomic members, the mutex itself, and the
// joined submit are engineered false positives.
#include <atomic>
#include <mutex>
#include <vector>

#include "common/annotations.hpp"

namespace fixture {

template <typename Fn>
void parallel_for(unsigned n, Fn fn);

struct Pool {
  template <typename Fn>
  void submit(Fn fn);
  template <typename Fn>
  void submit_to(unsigned worker, Fn fn);
  void wait_idle();
};

class Study {
 public:
  void sweep() {
    // Fork-join local: parallel_for joins before returning. Must NOT be
    // flagged.
    long sum = 0;
    parallel_for(8, [&sum](unsigned i) { sum += i; });
    // Unguarded member mutated from pool workers through this. Flagged.
    parallel_for(8, [this](unsigned i) { rows_.push_back(i); });  // L12
    // Atomic and lock-guarded members are exempt — and so is the mutex
    // doing the guarding. Must NOT be flagged.
    parallel_for(8, [this](unsigned i) {
      hits_ += 1;
      std::lock_guard<std::mutex> lk(mu_);
      locked_ += i;
    });
  }

  void fire_and_forget() {
    long local = 0;
    // No visible join in this function: the by-ref local may dangle.
    pool_.submit([&local] { local += 1; });  // L12
  }

  void fire_default() {
    long local = 0;
    pool_.submit([&] { local += 1; });  // L12: default by-ref, no join
  }

  void joined_submit() {
    long local = 0;
    pool_.submit([&local] { local += 1; });
    // Aliasing an unguarded member stays flagged even under a join: the
    // workers race each other, not just the local's lifetime.
    pool_.submit_to(0, [&rows = rows_] { rows.clear(); });  // L12
    pool_.wait_idle();
  }

 private:
  Pool pool_;
  std::vector<unsigned> rows_;
  std::atomic<long> hits_{0};
  std::mutex mu_;
  long locked_ SPIDER_GUARDED_BY(mu_) = 0;
};

}  // namespace fixture
