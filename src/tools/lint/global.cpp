#include "tools/lint/global.hpp"

#include <algorithm>
#include <cctype>
#include <utility>

#include "common/parallel.hpp"
#include "tools/lint/callgraph.hpp"

namespace spider::lint {

namespace {

/// Keywords (and call-shaped non-calls) that `ident (` must not count as a
/// call site or a callee name.
bool call_shaped_keyword(std::string_view s) {
  return s == "if" || s == "while" || s == "for" || s == "switch" ||
         s == "return" || s == "sizeof" || s == "alignof" ||
         s == "decltype" || s == "catch" || s == "static_assert" ||
         s == "assert" || s == "noexcept" || s == "alignas" ||
         s == "throw" || s == "new" || s == "delete" || s == "co_await" ||
         s == "co_return" || s == "defined";
}

std::vector<std::string_view> split_components(std::string_view path) {
  std::vector<std::string_view> parts;
  std::size_t start = 0;
  while (start <= path.size()) {
    std::size_t slash = path.find('/', start);
    if (slash == std::string_view::npos) slash = path.size();
    if (slash > start) parts.push_back(path.substr(start, slash - start));
    start = slash + 1;
  }
  return parts;
}

/// Called names inside the token range [begin, end): identifiers directly
/// followed by `(`. Member calls count — reaching a repair mutator through
/// any receiver is still reaching it.
std::set<std::string> called_names(const std::vector<Tok>& t,
                                   std::size_t begin, std::size_t end) {
  std::set<std::string> out;
  for (std::size_t i = begin; i + 1 < end && i + 1 < t.size(); ++i) {
    if (t[i].kind == TokKind::kIdent && is_punct(t[i + 1], "(") &&
        !call_shaped_keyword(t[i].text)) {
      out.insert(t[i].text);
    }
  }
  return out;
}

/// The innermost function definition whose body contains token `i`.
const FunctionSym* enclosing_def(const FileSymbols& syms, std::size_t i) {
  const FunctionSym* best = nullptr;
  for (const FunctionSym& f : syms.functions) {
    if (!f.is_definition || i < f.body_begin || i >= f.body_end) continue;
    if (best == nullptr || f.body_begin > best->body_begin) best = &f;
  }
  return best;
}

void add_finding(std::vector<Finding>& out, const RuleInfo& info,
                 const std::string& path, std::size_t line_index,
                 std::size_t col, std::string message) {
  Finding f;
  f.rule = std::string(info.id);
  f.severity = info.severity;
  f.file = path;
  f.line = line_index + 1;
  f.column = col + 1;
  f.message = std::move(message);
  f.hint = std::string(info.hint);
  out.push_back(std::move(f));
}

/// A nondeterminism source at token `i` (L16): wall clocks, ambient
/// randomness, thread ids, pointer identity laundered through
/// reinterpret_cast to an integer type. Returns a description, or empty.
std::string taint_source_at(const std::vector<Tok>& t, std::size_t i) {
  const Tok& tok = t[i];
  if (tok.kind != TokKind::kIdent) return {};
  const std::string& s = tok.text;
  if (s == "system_clock" || s == "steady_clock" ||
      s == "high_resolution_clock" || s == "random_device") {
    return s;
  }
  const bool call = i + 1 < t.size() && is_punct(t[i + 1], "(");
  if (call && (s == "rand" || s == "time" || s == "clock" ||
               s == "gettimeofday" || s == "clock_gettime")) {
    return s + "()";
  }
  if (call && s == "get_id") return "thread id (get_id())";
  if (s == "reinterpret_cast" && i + 1 < t.size() && is_punct(t[i + 1], "<")) {
    const std::size_t close = matching_close(t, i + 1);
    for (std::size_t j = i + 2; j < close && j < t.size(); ++j) {
      if (t[j].kind == TokKind::kIdent &&
          (t[j].text.find("int") != std::string::npos ||
           t[j].text == "size_t")) {
        return "pointer identity (reinterpret_cast to integer)";
      }
    }
  }
  return {};
}

/// True at `j` for an assignment operator: `=` (not `==`) or a compound
/// `+= -= *= /= %= &= |= ^=`. The tokenizer splits multi-char operators, so
/// `==` is two `=` tokens — the lookahead disambiguates.
bool assign_shape(const std::vector<Tok>& t, std::size_t j, std::size_t end) {
  if (j >= end || j >= t.size()) return false;
  if (is_punct(t[j], "=")) {
    return j + 1 >= end || j + 1 >= t.size() || !is_punct(t[j + 1], "=");
  }
  if (t[j].kind == TokKind::kPunct && t[j].text.size() == 1 &&
      std::string_view("+-*/%&|^").find(t[j].text[0]) !=
          std::string_view::npos &&
      j + 1 < end && j + 1 < t.size() && is_punct(t[j + 1], "=")) {
    // `x_ != y`, `x_ <= y`, `x_ >= y` start with !/</> — never matched here;
    // `x_ == y` is handled above. `a && b = c` cannot parse as a compound
    // because the second token of `&&` is `&`, not `=`.
    return j + 2 >= end || j + 2 >= t.size() || !is_punct(t[j + 2], "=");
  }
  return false;
}

/// Statement-boundary punctuation: what may legitimately precede a prefix
/// `++`/`--` or follow a postfix one. Restricting to these keeps unary-plus
/// sequences (`a + +x_`) from misreading as increments.
bool stmt_boundary(const Tok& t) {
  return is_punct(t, ";") || is_punct(t, "{") || is_punct(t, "}") ||
         is_punct(t, "(") || is_punct(t, ",") || is_punct(t, ":") ||
         is_punct(t, ")");
}

bool mutating_container_method(std::string_view s) {
  return s == "push_back" || s == "pop_back" || s == "emplace_back" ||
         s == "emplace" || s == "clear" || s == "erase" || s == "insert" ||
         s == "resize" || s == "assign" || s == "push" || s == "pop";
}

/// True when the member-convention identifier at `i` (trailing underscore)
/// is being written: assigned, compound-assigned (directly or through a
/// subscript), incremented/decremented, or mutated via a container method.
bool mutation_at(const std::vector<Tok>& t, std::size_t i, std::size_t begin,
                 std::size_t end) {
  if (assign_shape(t, i + 1, end)) return true;
  if (i + 1 < end && is_punct(t[i + 1], "[")) {
    const std::size_t close = matching_close(t, i + 1);
    if (close < end && assign_shape(t, close + 1, end)) return true;
  }
  if (i >= 2 && ((is_punct(t[i - 1], "+") && is_punct(t[i - 2], "+")) ||
                 (is_punct(t[i - 1], "-") && is_punct(t[i - 2], "-")))) {
    if (i - 2 == begin || (i >= 3 && stmt_boundary(t[i - 3]) &&
                           !is_punct(t[i - 3], ")"))) {
      return true;
    }
  }
  if (i + 2 < end && ((is_punct(t[i + 1], "+") && is_punct(t[i + 2], "+")) ||
                      (is_punct(t[i + 1], "-") && is_punct(t[i + 2], "-")))) {
    if (i + 3 >= end || is_punct(t[i + 3], ";") || is_punct(t[i + 3], ")") ||
        is_punct(t[i + 3], ",")) {
      return true;
    }
  }
  if (i + 3 < end && (is_punct(t[i + 1], ".") || is_punct(t[i + 1], "->")) &&
      t[i + 2].kind == TokKind::kIdent &&
      mutating_container_method(t[i + 2].text) && is_punct(t[i + 3], "(")) {
    return true;
  }
  return false;
}

bool member_convention_ident(const Tok& t) {
  return t.kind == TokKind::kIdent && t.text.size() >= 2 &&
         t.text.back() == '_';
}

/// Receiver names accepted as "the op journal" for L14 evidence and L16's
/// journal-record sink: `journal`, `journal_`, `log`, `log_`, `oplog`...
bool journal_receiver(std::string_view s) {
  std::string lower(s);
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return lower.find("journal") != std::string::npos || lower == "log" ||
         lower == "log_" || lower == "oplog" || lower == "oplog_";
}

/// Index of the first `.append(`/`->append(` member call on a journal-named
/// receiver inside [begin, end); `end` when absent.
std::size_t first_journal_append(const std::vector<Tok>& t, std::size_t begin,
                                 std::size_t end) {
  for (std::size_t i = begin; i + 1 < end && i + 1 < t.size(); ++i) {
    if (t[i].kind == TokKind::kIdent && t[i].text == "append" &&
        is_punct(t[i + 1], "(") && i >= 2 &&
        (is_punct(t[i - 1], ".") || is_punct(t[i - 1], "->")) &&
        t[i - 2].kind == TokKind::kIdent && journal_receiver(t[i - 2].text)) {
      return i;
    }
  }
  return end;
}

}  // namespace

TuFacts classify_tu(std::string_view path) {
  TuFacts facts;
  const std::vector<std::string_view> parts = split_components(path);
  std::size_t root = parts.size();
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (parts[i] == "src" || parts[i] == "tests" || parts[i] == "bench") {
      root = i;
    }
  }
  if (root >= parts.size()) return facts;
  if (parts[root] == "tests") {
    facts.in_tests = true;
    facts.repair_context = true;
    return facts;
  }
  if (parts[root] == "bench") {
    facts.in_bench = true;
    facts.repair_context = true;
    return facts;
  }
  facts.in_src = true;
  if (root + 1 < parts.size()) {
    facts.fs_scope = parts[root + 1] == "fs";
    if (parts[root + 1] == "tools" && root + 2 < parts.size() &&
        (parts[root + 2] == "spiderfsck" || parts[root + 2] == "faultcli")) {
      facts.repair_context = true;
    }
  }
  return facts;
}

GlobalIndex::GlobalIndex(const std::vector<SourceFile>& files,
                         const std::optional<FileClass>& forced_class,
                         std::size_t jobs) {
  tus_.resize(files.size());
  // Each slot is written by exactly one task, so the index is identical at
  // any job count.
  spider::parallel_for(
      files.size(),
      [&](std::size_t i) {
        // spiderlint: pool-ok — slot-per-task writes, parallel_for joins
        GlobalTu& tu = tus_[i];
        tu.file = &files[i];
        tu.stream = tokenize(files[i]);
        tu.syms = index_symbols(tu.stream);
        tu.cls = forced_class.has_value() ? *forced_class
                                          : classify_path(files[i].path);
        tu.facts = classify_tu(files[i].path);
      },
      jobs);
  link();
  close_repair_reachability();
  close_taint_returns();
}

void GlobalIndex::link() {
  for (std::size_t ti = 0; ti < tus_.size(); ++ti) {
    const FileSymbols& syms = tus_[ti].syms;
    for (std::size_t fi = 0; fi < syms.functions.size(); ++fi) {
      const FunctionSym& f = syms.functions[fi];
      if (f.name.empty()) continue;
      const Ref r{ti, fi};
      occurrences_[f.name].push_back(r);
      if (f.is_definition) definitions_[f.name].push_back(r);
      if (f.repair_only) annotated_repair_only_.insert(f.name);
      if (f.journaled) journaled_.insert({f.cls, f.name});
    }
  }
}

const std::vector<GlobalIndex::Ref>& GlobalIndex::definitions(
    std::string_view name) const {
  static const std::vector<Ref> kEmpty;
  const auto it = definitions_.find(name);
  return it == definitions_.end() ? kEmpty : it->second;
}

const std::vector<GlobalIndex::Ref>& GlobalIndex::occurrences(
    std::string_view name) const {
  static const std::vector<Ref> kEmpty;
  const auto it = occurrences_.find(name);
  return it == occurrences_.end() ? kEmpty : it->second;
}

bool GlobalIndex::is_repair_mutator(std::string_view name) const {
  if (name.substr(0, 9) == "fsck_set_") return true;
  if (name == "records_mutable" || name == "truncate_to") return true;
  return annotated_repair_only_.find(name) != annotated_repair_only_.end();
}

bool GlobalIndex::is_journaled(const Ref& def) const {
  const FunctionSym& f = fn(def);
  if (f.journaled) return true;
  return journaled_.find({f.cls, f.name}) != journaled_.end();
}

void GlobalIndex::close_repair_reachability() {
  // Per-definition callee-name sets, computed once up front.
  std::map<std::string, std::vector<std::set<std::string>>, std::less<>>
      callees;
  for (const auto& [name, defs] : definitions_) {
    if (is_repair_mutator(name)) continue;  // triggers need no closure
    auto& sets = callees[name];
    for (const Ref& r : defs) {
      const FunctionSym& f = fn(r);
      sets.push_back(
          called_names(tus_[r.tu].stream.tokens, f.body_begin, f.body_end));
    }
  }
  // Fixpoint under the all-definitions rule: a *name* becomes
  // repair-reaching only when every one of its definitions calls a trigger
  // or an already-reaching name. Overload/namespace collisions therefore
  // weaken the closure toward silence, never toward a spurious finding.
  bool changed = true;
  while (changed) {
    changed = false;
    for (const auto& [name, sets] : callees) {
      if (repair_reaching_.find(name) != repair_reaching_.end()) continue;
      bool all = !sets.empty();
      std::string witness;
      for (const std::set<std::string>& s : sets) {
        std::string chain;
        for (const std::string& c : s) {
          if (c == name) continue;  // recursion is not evidence
          if (is_repair_mutator(c)) {
            chain = c;
            break;
          }
          const auto it = repair_reaching_.find(c);
          if (it != repair_reaching_.end()) {
            chain = c + " -> " + it->second;
            break;
          }
        }
        if (chain.empty()) {
          all = false;
          break;
        }
        if (witness.empty()) witness = std::move(chain);
      }
      if (all) {
        repair_reaching_[name] = std::move(witness);
        changed = true;
      }
    }
  }
}

void GlobalIndex::close_taint_returns() {
  struct DefBody {
    const std::vector<Tok>* toks;
    std::size_t begin, end;
  };
  std::map<std::string, std::vector<DefBody>, std::less<>> bodies;
  for (const auto& [name, defs] : definitions_) {
    auto& v = bodies[name];
    for (const Ref& r : defs) {
      const FunctionSym& f = fn(r);
      v.push_back(
          DefBody{&tus_[r.tu].stream.tokens, f.body_begin, f.body_end});
    }
  }
  // Does any `return` expression in [begin, end) carry taint? Returns the
  // source description, or empty.
  const auto tainted_return = [this](const DefBody& b) -> std::string {
    const std::vector<Tok>& t = *b.toks;
    for (std::size_t i = b.begin; i < b.end && i < t.size(); ++i) {
      if (!(t[i].kind == TokKind::kIdent && t[i].text == "return")) continue;
      int depth = 0;
      for (std::size_t j = i + 1; j < b.end && j < t.size(); ++j) {
        if (t[j].kind == TokKind::kPunct && t[j].text.size() == 1) {
          const char c = t[j].text[0];
          if (c == '(' || c == '[' || c == '{') ++depth;
          if (c == ')' || c == ']' || c == '}') --depth;
          if (c == ';' && depth == 0) break;
        }
        std::string desc = taint_source_at(t, j);
        if (!desc.empty()) return desc;
        if (t[j].kind == TokKind::kIdent && j + 1 < t.size() &&
            is_punct(t[j + 1], "(")) {
          const auto it = taint_returning_.find(t[j].text);
          if (it != taint_returning_.end()) {
            return it->second + " (via " + t[j].text + ")";
          }
        }
      }
    }
    return {};
  };
  bool changed = true;
  while (changed) {
    changed = false;
    for (const auto& [name, defs] : bodies) {
      if (taint_returning_.find(name) != taint_returning_.end()) continue;
      bool all = !defs.empty();
      std::string witness;
      for (const DefBody& b : defs) {
        const std::string desc = tainted_return(b);
        if (desc.empty()) {
          all = false;
          break;
        }
        if (witness.empty()) witness = desc;
      }
      if (all) {
        taint_returning_[name] = std::move(witness);
        changed = true;
      }
    }
  }
}

namespace {

// --- L13 repair-mutator confinement ----------------------------------------

void run_l13(const GlobalIndex& index, std::vector<Finding>& out) {
  const RuleInfo* info = rule("L13");
  for (std::size_t ti = 0; ti < index.tu_count(); ++ti) {
    const GlobalTu& tu = index.tu(ti);
    if (tu.facts.repair_context) continue;  // allowed by location
    if (!tu.cls.in_src) continue;
    const std::vector<Tok>& t = tu.stream.tokens;
    for (std::size_t i = 0; i + 1 < t.size(); ++i) {
      if (t[i].kind != TokKind::kIdent || !is_punct(t[i + 1], "(")) continue;
      if (call_shaped_keyword(t[i].text)) continue;
      const std::string& name = t[i].text;
      const bool trigger = index.is_repair_mutator(name);
      const auto reach = index.repair_reaching().find(name);
      const bool reaching = reach != index.repair_reaching().end();
      if (!trigger && !reaching) continue;
      // Only call sites inside a function body count; the name token of a
      // declaration or definition is not a call.
      const FunctionSym* encl = enclosing_def(tu.syms, i);
      if (encl == nullptr) continue;
      // Repair mutators may compose (an annotated helper calling another
      // repair setter is still inside the repair surface).
      if (index.is_repair_mutator(encl->name)) continue;
      if (has_suppression(*tu.file, t[i].line, "repair-ok")) continue;
      std::string message;
      if (trigger) {
        message = "call to repair-only mutator '" + name +
                  "' outside a repair context (tools/spiderfsck/, "
                  "tools/faultcli/, tests/, bench/)";
      } else {
        message = "'" + name + "' reaches the repair-only surface (" + name +
                  " -> " + reach->second +
                  ") from outside a repair context (tools/spiderfsck/, "
                  "tools/faultcli/, tests/, bench/)";
      }
      add_finding(out, *info, tu.file->path, t[i].line, t[i].col,
                  std::move(message));
    }
  }
}

// --- L14 journal-before-mutation -------------------------------------------

void run_l14(const GlobalIndex& index, std::vector<Finding>& out) {
  const RuleInfo* info = rule("L14");
  // Crash-consistency-critical classes: any class exposing a repair mutator
  // (if fsck can rewrite its state, crashes mid-mutation must be
  // reconstructable from the op journal).
  std::set<std::string> checked;
  for (std::size_t ti = 0; ti < index.tu_count(); ++ti) {
    for (const FunctionSym& f : index.tu(ti).syms.functions) {
      if (!f.cls.empty() && index.is_repair_mutator(f.name)) {
        checked.insert(f.cls);
      }
    }
  }
  for (std::size_t ti = 0; ti < index.tu_count(); ++ti) {
    const GlobalTu& tu = index.tu(ti);
    if (!tu.cls.fs_scope) continue;
    const std::vector<Tok>& t = tu.stream.tokens;
    for (std::size_t fi = 0; fi < tu.syms.functions.size(); ++fi) {
      const FunctionSym& f = tu.syms.functions[fi];
      if (!f.is_definition || f.cls.empty() ||
          checked.find(f.cls) == checked.end()) {
        continue;
      }
      if (f.ctor_or_dtor || index.is_repair_mutator(f.name)) continue;
      if (index.is_journaled(GlobalIndex::Ref{ti, fi})) continue;
      const std::size_t journal_at =
          first_journal_append(t, f.body_begin, f.body_end);
      for (std::size_t i = f.body_begin; i < journal_at && i < t.size();
           ++i) {
        if (!member_convention_ident(t[i])) continue;
        if (!mutation_at(t, i, f.body_begin, f.body_end)) continue;
        if (has_suppression(*tu.file, t[i].line, "journal-ok")) continue;
        const std::string qual =
            f.cls.empty() ? f.name : f.cls + "::" + f.name;
        add_finding(out, *info, tu.file->path, t[i].line, t[i].col,
                    "'" + qual + "' mutates '" + t[i].text +
                        "' with no earlier OpLog append in the same body — "
                        "journal the operation first or annotate "
                        "SPIDER_JOURNALED(why)");
        break;  // one finding per function: the first unjournaled mutation
      }
    }
  }
}

// --- L15 finding/fault exhaustiveness --------------------------------------

struct CaseRec {
  std::string enum_name;
  std::string enumerator;
  std::string fn;  ///< enclosing definition name; "" at namespace scope
  bool in_src = false;
};

/// A repair-eligible switch case: inside a named src/ function that is
/// neither the injector nor a name-mapping helper (to_string,
/// finding_kind_name, ...).
bool repair_eligible(const CaseRec& c) {
  return c.in_src && !c.fn.empty() && c.fn != "inject_corruption" &&
         c.fn.find("name") == std::string::npos &&
         c.fn.find("string") == std::string::npos;
}

void run_l15(const GlobalIndex& index, std::vector<Finding>& out) {
  const RuleInfo* info = rule("L15");
  std::vector<CaseRec> cases;
  std::set<std::pair<std::string, std::string>> bind_uses;
  std::set<std::string> registered;  // make_*_oracle names passed to add(...)
  bool have_tests = false;
  for (std::size_t ti = 0; ti < index.tu_count(); ++ti) {
    const GlobalTu& tu = index.tu(ti);
    const std::vector<Tok>& t = tu.stream.tokens;
    if (tu.facts.in_tests || tu.cls.in_tests) have_tests = true;
    for (std::size_t i = 0; i + 1 < t.size(); ++i) {
      if (t[i].kind != TokKind::kIdent) continue;
      // `case A::B::kX:` — the last two links of the qualified chain are
      // the enum and the enumerator.
      if (t[i].text == "case" && t[i + 1].kind == TokKind::kIdent) {
        std::vector<std::string> chain;
        std::size_t j = i + 1;
        while (j < t.size() && t[j].kind == TokKind::kIdent) {
          chain.push_back(t[j].text);
          if (j + 1 < t.size() && is_punct(t[j + 1], "::")) {
            j += 2;
          } else {
            break;
          }
        }
        if (chain.size() >= 2) {
          const FunctionSym* encl = enclosing_def(tu.syms, i);
          cases.push_back(CaseRec{chain[chain.size() - 2], chain.back(),
                                  encl != nullptr ? encl->name : "",
                                  tu.facts.in_src || tu.cls.in_src});
        }
      }
      // `bind(FaultKind::kX, ...)` — injector bindings.
      if (t[i].text == "bind" && is_punct(t[i + 1], "(")) {
        const std::size_t close = matching_close(t, i + 1);
        for (std::size_t j = i + 2; j + 2 < close && j + 2 < t.size(); ++j) {
          if (t[j].kind == TokKind::kIdent && is_punct(t[j + 1], "::") &&
              t[j + 2].kind == TokKind::kIdent) {
            bind_uses.insert({t[j].text, t[j + 2].text});
          }
        }
      }
      // `add(make_x_oracle(...))` — oracle-suite registrations.
      if (t[i].text == "add" && is_punct(t[i + 1], "(")) {
        const std::size_t close = matching_close(t, i + 1);
        for (std::size_t j = i + 2; j < close && j < t.size(); ++j) {
          if (t[j].kind == TokKind::kIdent &&
              t[j].text.rfind("make_", 0) == 0 &&
              t[j].text.size() > 12 &&
              t[j].text.compare(t[j].text.size() - 7, 7, "_oracle") == 0) {
            registered.insert(t[j].text);
          }
        }
      }
    }
  }

  // Census over the two scoped enums the consistency loop is built on.
  // Each sub-check arms only when its evidence domain exists in the file
  // set, so a partial run degrades to missed findings, never spurious ones.
  for (std::size_t ti = 0; ti < index.tu_count(); ++ti) {
    const GlobalTu& tu = index.tu(ti);
    for (const EnumSym& en : tu.syms.enums) {
      if (!en.scoped) continue;
      if (en.name != "FindingKind" && en.name != "FaultKind") continue;
      const bool finding_kind = en.name == "FindingKind";
      bool armed_inject = false, armed_repair = false, armed_bind = false;
      for (const CaseRec& c : cases) {
        if (c.enum_name != en.name) continue;
        if (c.fn == "inject_corruption") armed_inject = true;
        if (repair_eligible(c)) armed_repair = true;
      }
      for (const auto& b : bind_uses) {
        if (b.first == en.name) armed_bind = true;
      }
      for (const Enumerator& e : en.enumerators) {
        std::vector<std::string> missing;
        if (finding_kind) {
          bool inject = false, repair = false;
          for (const CaseRec& c : cases) {
            if (c.enum_name != en.name || c.enumerator != e.name) continue;
            if (c.fn == "inject_corruption") inject = true;
            if (repair_eligible(c)) repair = true;
          }
          if (armed_inject && !inject) {
            missing.push_back("no inject_corruption case");
          }
          if (armed_repair && !repair) missing.push_back("no repair case");
        } else {
          if (armed_bind &&
              bind_uses.find({en.name, e.name}) == bind_uses.end()) {
            missing.push_back("no injector binding (bind(" + en.name +
                              "::" + e.name + ", ...))");
          }
        }
        if (have_tests) {
          bool mentioned = false;
          for (std::size_t tj = 0; tj < index.tu_count() && !mentioned;
               ++tj) {
            const GlobalTu& tt = index.tu(tj);
            if (!(tt.facts.in_tests || tt.cls.in_tests)) continue;
            for (const Tok& tok : tt.stream.tokens) {
              if (tok.kind == TokKind::kIdent && tok.text == e.name) {
                mentioned = true;
                break;
              }
            }
          }
          if (!mentioned) missing.push_back("no test mention");
        }
        if (missing.empty()) continue;
        if (has_suppression(*tu.file, e.line, "census-ok")) continue;
        std::string message = en.name + "::" + e.name + " is half-wired: ";
        for (std::size_t m = 0; m < missing.size(); ++m) {
          if (m > 0) message += ", ";
          message += missing[m];
        }
        add_finding(out, *info, tu.file->path, e.line, 0, std::move(message));
      }
    }
  }

  // Every declared oracle factory must be registered with a suite. Armed
  // only when at least one registration is visible in the file set.
  if (!registered.empty()) {
    std::set<std::string> reported;
    for (std::size_t ti = 0; ti < index.tu_count(); ++ti) {
      const GlobalTu& tu = index.tu(ti);
      if (!(tu.facts.in_src || tu.cls.in_src) || tu.facts.in_tests ||
          tu.facts.in_bench) {
        continue;
      }
      for (const FunctionSym& f : tu.syms.functions) {
        if (f.name.rfind("make_", 0) != 0 || f.name.size() <= 12 ||
            f.name.compare(f.name.size() - 7, 7, "_oracle") != 0) {
          continue;
        }
        if (registered.find(f.name) != registered.end()) continue;
        if (!reported.insert(f.name).second) continue;
        if (has_suppression(*tu.file, f.line, "census-ok")) continue;
        add_finding(out, *info, tu.file->path, f.line, 0,
                    "oracle factory '" + f.name +
                        "' is declared but never registered with a suite "
                        "(no add(" + f.name + "(...)) anywhere)");
      }
    }
  }
}

// --- L16 determinism taint --------------------------------------------------

void run_l16(const GlobalIndex& index, std::vector<Finding>& out) {
  const RuleInfo* info = rule("L16");
  for (std::size_t ti = 0; ti < index.tu_count(); ++ti) {
    const GlobalTu& tu = index.tu(ti);
    if (!tu.cls.in_src || tu.cls.in_tests || tu.cls.in_bench) continue;
    const std::vector<Tok>& t = tu.stream.tokens;
    for (const FunctionSym& f : tu.syms.functions) {
      if (!f.is_definition) continue;
      // Locals tainted so far, name -> source description. A clean
      // reassignment clears the taint, so stale entries cannot flag later
      // uses.
      std::map<std::string, std::string> tainted;
      const auto range_taint = [&](std::size_t b,
                                   std::size_t e) -> std::string {
        for (std::size_t j = b; j < e && j < t.size(); ++j) {
          std::string desc = taint_source_at(t, j);
          if (!desc.empty()) return desc;
          if (t[j].kind != TokKind::kIdent) continue;
          if (j + 1 < e && is_punct(t[j + 1], "(")) {
            const auto it = index.taint_returning().find(t[j].text);
            if (it != index.taint_returning().end()) {
              return it->second + " (via " + t[j].text + "())";
            }
          }
          const auto lt = tainted.find(t[j].text);
          if (lt != tainted.end()) {
            return lt->second + " (via local '" + t[j].text + "')";
          }
        }
        return {};
      };
      for (std::size_t i = f.body_begin; i < f.body_end && i < t.size();
           ++i) {
        if (t[i].kind != TokKind::kIdent) continue;
        // Assignment into a named value: propagate or clear taint.
        if (assign_shape(t, i + 1, f.body_end)) {
          const std::size_t rhs =
              is_punct(t[i + 1], "=") ? i + 2 : i + 3;
          std::size_t stmt_end = rhs;
          int depth = 0;
          while (stmt_end < f.body_end && stmt_end < t.size()) {
            const Tok& st = t[stmt_end];
            if (st.kind == TokKind::kPunct && st.text.size() == 1) {
              const char c = st.text[0];
              if (c == '(' || c == '[' || c == '{') ++depth;
              if (c == ')' || c == ']' || c == '}') --depth;
              if (c == ';' && depth == 0) break;
            }
            ++stmt_end;
          }
          const std::string desc = range_taint(rhs, stmt_end);
          if (desc.empty()) {
            tainted.erase(t[i].text);
          } else {
            tainted[t[i].text] = desc;
          }
          continue;
        }
        // Sinks: scheduled delays, hash inputs, journal records.
        if (i + 1 >= t.size() || !is_punct(t[i + 1], "(")) continue;
        const std::string& name = t[i].text;
        if (call_shaped_keyword(name)) continue;
        const std::size_t close = matching_close(t, i + 1);
        const std::vector<ArgRange> args = split_args(t, i + 1, close);
        std::vector<std::size_t> checked;
        std::string sink;
        if (name == "schedule_at" || name == "schedule_in") {
          if (!args.empty()) checked.push_back(0);
          sink = "a scheduled delay";
        } else if (name == "schedule_cross") {
          if (args.size() > 2) checked.push_back(2);
          sink = "a scheduled delay";
        } else if (name.find("hash") != std::string::npos) {
          for (std::size_t a = 0; a < args.size(); ++a) checked.push_back(a);
          sink = "a hash input";
        } else if (name == "append" && i >= 2 &&
                   (is_punct(t[i - 1], ".") || is_punct(t[i - 1], "->")) &&
                   t[i - 2].kind == TokKind::kIdent &&
                   journal_receiver(t[i - 2].text)) {
          for (std::size_t a = 0; a < args.size(); ++a) checked.push_back(a);
          sink = "a journal record";
        } else {
          continue;
        }
        for (const std::size_t a : checked) {
          const std::string desc = range_taint(args[a].begin, args[a].end);
          if (desc.empty()) continue;
          if (has_suppression(*tu.file, t[i].line, "taint-ok")) break;
          add_finding(out, *info, tu.file->path, t[i].line, t[i].col,
                      "nondeterministic value (" + desc + ") flows into " +
                          sink + " via '" + name + "'");
          break;  // one finding per call site
        }
      }
    }
  }
}

}  // namespace

std::vector<Finding> lint_global(const std::vector<SourceFile>& files,
                                 const GlobalOptions& opts) {
  std::vector<Finding> out;
  if (!opts.rules.l13 && !opts.rules.l14 && !opts.rules.l15 &&
      !opts.rules.l16) {
    return out;
  }
  const GlobalIndex index(files, opts.forced_class, opts.jobs);
  if (opts.rules.l13) run_l13(index, out);
  if (opts.rules.l14) run_l14(index, out);
  if (opts.rules.l15) run_l15(index, out);
  if (opts.rules.l16) run_l16(index, out);
  return out;
}

}  // namespace spider::lint
