file(REMOVE_RECURSE
  "CMakeFiles/bench_c1_peak_bandwidth.dir/bench_c1_peak_bandwidth.cpp.o"
  "CMakeFiles/bench_c1_peak_bandwidth.dir/bench_c1_peak_bandwidth.cpp.o.d"
  "bench_c1_peak_bandwidth"
  "bench_c1_peak_bandwidth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_c1_peak_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
