// Static max-min solver with named resources.
//
// Saturation throughput experiments (Figures 3 and 4, peak-bandwidth
// claims) don't need time evolution: every client streams continuously, so
// the aggregate bandwidth is exactly the max-min allocation of the flow
// population. One solve per sweep point replaces millions of per-transfer
// events and lets us run at full Spider II scale (18,688 clients, 2,016
// OSTs) in milliseconds.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "sim/resource.hpp"

namespace spider::sim {

class SteadyStateSolver {
 public:
  /// Add a resource with capacity in units/sec. Returns its id.
  ResourceId add_resource(std::string name, double capacity);

  /// Adjust capacity before (re-)solving.
  void set_capacity(ResourceId id, double capacity);
  double capacity(ResourceId id) const { return capacity_.at(id); }
  const std::string& name(ResourceId id) const { return names_.at(id); }
  std::size_t resources() const { return capacity_.size(); }

  /// Add a flow; returns its index. `rate_cap` bounds the flow's own rate.
  std::size_t add_flow(std::vector<PathHop> path, double rate_cap = kUnbounded);
  std::size_t flows() const { return paths_.size(); }
  void clear_flows();

  /// Solve and cache the result.
  const SolveResult& solve();

  /// Accessors over the last solve() result.
  double flow_rate(std::size_t flow) const { return result_.rate.at(flow); }
  double utilization(ResourceId id) const { return result_.utilization.at(id); }
  /// Sum of all flow rates.
  double aggregate_rate() const;
  /// Name of the most-utilized resource (the system bottleneck).
  std::string bottleneck() const;

 private:
  std::vector<std::string> names_;
  std::vector<double> capacity_;
  std::vector<std::vector<PathHop>> paths_;
  std::vector<double> caps_;
  SolveResult result_;
};

}  // namespace spider::sim
