// ShardedSimulator determinism and epoch-contract tests.
//
// The determinism bar (docs/parallel-engine.md): the canonical merged
// replay stream depends only on the workload and the shard *assignment* —
// never on the worker count or on how many (empty) shards the engine has —
// and a single-shard run is byte-identical to the serial Simulator. The
// metamorphic pair: changing the assignment changes the hash; changing the
// shard count does not.
#include <gtest/gtest.h>

#include <cstdint>
#include <source_location>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/replay.hpp"
#include "sim/sharded_sim.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace {

using namespace spider;
using sim::kMicrosecond;
using sim::ShardedConfig;
using sim::ShardedReplay;
using sim::ShardedSimulator;
using sim::ShardId;
using sim::ShardMap;
using sim::SimTime;

constexpr SimTime kLookahead = 10 * kMicrosecond;

/// Synthetic multi-zone workload with cross-zone traffic. Every zone runs a
/// chain of ticks `step` apart; every third tick also mails the next zone,
/// which starts a fresh (shorter) chain there on arrival. All scheduling
/// threads one shared source_location so runs are comparable site-by-site.
struct MiniZones {
  ShardedSimulator& engine;
  ShardMap map;
  std::vector<std::uint64_t> ticks;
  SimTime step = 2 * kMicrosecond;

  MiniZones(ShardedSimulator& eng, ShardMap assignment)
      : engine(eng), map(std::move(assignment)), ticks(map.domains(), 0) {}

  sim::Simulator& zone_sim(std::size_t z) {
    return engine.shard(map.shard_of(z));
  }

  void start(int rounds, std::source_location loc) {
    for (std::size_t z = 0; z < ticks.size(); ++z) {
      const SimTime at = static_cast<SimTime>(z + 1) * kMicrosecond;
      zone_sim(z).schedule_at(at, [this, z, rounds, loc] {
        tick(z, rounds, loc);
      }, loc);
    }
  }

  void tick(std::size_t z, int remaining, std::source_location loc) {
    ++ticks[z];
    if (remaining <= 0) return;
    if (remaining % 3 == 0 && ticks.size() > 1) {
      const std::size_t to = (z + 1) % ticks.size();
      const SimTime when = zone_sim(z).now() + kLookahead;
      engine.schedule_cross(map.shard_of(z), map.shard_of(to), when,
                            [this, to, remaining, loc] {
                              tick(to, remaining / 2, loc);
                            },
                            loc);
    }
    zone_sim(z).schedule_in(step, [this, z, remaining, loc] {
      tick(z, remaining - 1, loc);
    }, loc);
  }
};

/// Run MiniZones on a fresh engine and return the canonical merged hash.
std::uint64_t run_mini(std::size_t zones, const ShardMap& map,
                       std::size_t engine_shards, std::size_t workers,
                       std::uint64_t* total_ticks = nullptr) {
  ShardedConfig cfg;
  cfg.lookahead = kLookahead;
  cfg.workers = workers;
  ShardedSimulator engine(engine_shards, cfg);
  ShardedReplay replay(engine);
  MiniZones zones_state(engine, map);
  EXPECT_EQ(zones_state.ticks.size(), zones);
  zones_state.start(12, std::source_location::current());
  engine.run(sim::kMillisecond);
  if (total_ticks) {
    *total_ticks = 0;
    for (const std::uint64_t t : zones_state.ticks) *total_ticks += t;
  }
  return replay.merged_hash();
}

TEST(ShardedSim, RunLandsEveryShardClockOnFiniteHorizon) {
  // The engine's reason for the Simulator::run clock fix: an idle shard
  // must still arrive at the barrier/horizon.
  ShardedSimulator engine(3, ShardedConfig{kLookahead, 1});
  int ran = 0;
  engine.shard(0).schedule_at(5 * kMicrosecond, [&ran] { ++ran; });
  EXPECT_EQ(engine.run(100 * kMicrosecond), 1u);
  EXPECT_EQ(ran, 1);
  for (ShardId s = 0; s < 3; ++s) {
    EXPECT_EQ(engine.shard(s).now(), 100 * kMicrosecond) << "shard " << s;
  }
}

TEST(ShardedSim, EmptyEngineStillAdvancesToHorizon) {
  ShardedSimulator engine(2, ShardedConfig{kLookahead, 1});
  EXPECT_EQ(engine.run(50 * kMicrosecond), 0u);
  EXPECT_EQ(engine.shard(0).now(), 50 * kMicrosecond);
  EXPECT_EQ(engine.shard(1).now(), 50 * kMicrosecond);
  EXPECT_TRUE(engine.idle());
}

TEST(ShardedSim, SingleShardMatchesSerialSimulatorByteForByte) {
  // Identical dynamic workload, one shared scheduling site: the sharded
  // engine's merged stream must equal the serial Simulator's exactly, so
  // the epoch chopping is invisible in the replay hash.
  const std::source_location loc = std::source_location::current();
  const auto seed_workload = [loc](sim::Simulator& sim) {
    for (int i = 0; i < 5; ++i) {
      sim.schedule_at((i + 1) * kMicrosecond, sim::EventFn([&sim, i, loc] {
        // Dynamic follow-ups: scheduled mid-run, ids interleave with the
        // seeded events.
        sim.schedule_in((i + 1) * kMicrosecond, [] {}, loc);
      }),
      loc);
    }
  };

  sim::Simulator serial;
  sim::ReplayRecorder serial_replay;
  serial_replay.attach(serial);
  seed_workload(serial);
  const std::uint64_t serial_ran = serial.run(sim::kMillisecond);

  ShardedSimulator engine(1, ShardedConfig{kLookahead, 1});
  ShardedReplay replay(engine);
  seed_workload(engine.shard(0));
  const std::uint64_t sharded_ran = engine.run(sim::kMillisecond);

  EXPECT_EQ(serial_ran, sharded_ran);
  EXPECT_EQ(replay.serial_equivalent_hash(), serial_replay.event_hash());
  ASSERT_EQ(replay.merged().size(), serial_replay.records().size());
  const auto merged = replay.merged();
  for (std::size_t i = 0; i < merged.size(); ++i) {
    EXPECT_EQ(merged[i].when, serial_replay.records()[i].when);
    EXPECT_EQ(merged[i].id, serial_replay.records()[i].id);
    EXPECT_EQ(merged[i].site, serial_replay.records()[i].site);
    EXPECT_EQ(merged[i].shard, 0u);
  }
}

TEST(ShardedSim, MergedHashIndependentOfWorkerCount) {
  for (const std::size_t shards : {1u, 2u, 4u, 8u}) {
    const std::size_t zones = 8;
    const ShardMap map(zones, shards);
    std::uint64_t ticks_serial = 0;
    std::uint64_t ticks_parallel = 0;
    const std::uint64_t serial = run_mini(zones, map, shards, 1, &ticks_serial);
    const std::uint64_t parallel =
        run_mini(zones, map, shards, 0, &ticks_parallel);
    EXPECT_EQ(serial, parallel) << "shards=" << shards;
    EXPECT_EQ(ticks_serial, ticks_parallel) << "shards=" << shards;
    EXPECT_GT(ticks_serial, 0u);
  }
}

TEST(ShardedSim, MergedHashIndependentOfShardCount) {
  // Metamorphic: the same assignment run on engines with spare (empty)
  // shards yields the same canonical stream — shard *count* is not an input
  // to the hash, only the assignment is.
  const std::size_t zones = 6;
  const ShardMap map(zones, 3);  // zones -> shards 0..2 round-robin
  const std::uint64_t on3 = run_mini(zones, map, 3, 0);
  const std::uint64_t on8 = run_mini(zones, map, 8, 0);
  EXPECT_EQ(on3, on8);
}

TEST(ShardedSim, MergedHashChangesWithAssignment) {
  // Metamorphic counterpart: moving a domain to a different shard reroutes
  // its events to a different queue (different shard ids, different local
  // EventIds) and must change the merged hash.
  const std::size_t zones = 6;
  const ShardMap base(zones, 3);
  ShardMap moved(zones, 3);
  moved.reassign(0, 1);  // domain 0: shard 0 -> shard 1
  const std::uint64_t base_hash = run_mini(zones, base, 3, 0);
  const std::uint64_t moved_hash = run_mini(zones, moved, 3, 0);
  EXPECT_NE(base_hash, moved_hash);
}

TEST(ShardedSim, LookaheadBreachNamesShardPairAndTimes) {
  ShardedConfig cfg;
  cfg.lookahead = kLookahead;
  cfg.workers = 1;
  ShardedSimulator engine(2, cfg);
  engine.shard(0).schedule_at(kMicrosecond, sim::EventFn([&engine] {
    // Due "now" on the other shard — inside the current epoch, which the
    // lookahead contract forbids.
    engine.schedule_cross(0, 1, engine.shard(0).now(), [] {});
  }));
  try {
    engine.run(sim::kMillisecond);
    FAIL() << "expected a lookahead-contract breach";
  } catch (const std::logic_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("from shard 0 to shard 1"), std::string::npos) << msg;
    EXPECT_NE(msg.find("lookahead"), std::string::npos) << msg;
    EXPECT_NE(msg.find("epoch ends"), std::string::npos) << msg;
    EXPECT_NE(msg.find("sharded_sim_test.cpp"), std::string::npos) << msg;
  }
}

TEST(ShardedSim, CrossMailboxesDrainInCanonicalSourceOrder) {
  // Two sources mail the same destination for the same time; the message
  // from the lower source shard must get the lower target EventId and run
  // first, regardless of mailbox fill order (shard 2 mails before shard 1).
  ShardedSimulator engine(3, ShardedConfig{kLookahead, 1});
  std::vector<int> order;
  const SimTime when = 5 * kMicrosecond;
  engine.schedule_cross(2, 0, when, [&order] { order.push_back(2); });
  engine.schedule_cross(1, 0, when, [&order] { order.push_back(1); });
  EXPECT_EQ(engine.cross_messages(), 2u);
  engine.run(sim::kMillisecond);
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 1);
  EXPECT_EQ(order[1], 2);
}

TEST(ShardedSim, SameShardCrossMessagesAreBarrierDeferred) {
  // from == to is legal and still goes through the mailbox, so a domain's
  // stream does not depend on whether its peer happens to share its shard.
  ShardedSimulator engine(2, ShardedConfig{kLookahead, 1});
  bool ran = false;
  engine.schedule_cross(0, 0, 3 * kMicrosecond, [&ran] { ran = true; });
  engine.run(sim::kMillisecond);
  EXPECT_TRUE(ran);
  EXPECT_EQ(engine.cross_messages(), 1u);
}

TEST(ShardedSim, RejectsNonPositiveLookaheadAndZeroShards) {
  EXPECT_THROW(ShardedSimulator(0, ShardedConfig{kLookahead, 1}),
               std::invalid_argument);
  EXPECT_THROW(ShardedSimulator(2, ShardedConfig{0, 1}),
               std::invalid_argument);
}

TEST(ShardedSim, ShardMapValidatesAndRoundRobins) {
  ShardMap map(10, 4);
  EXPECT_EQ(map.domains(), 10u);
  EXPECT_EQ(map.shards(), 4u);
  EXPECT_EQ(map.shard_of(0), 0u);
  EXPECT_EQ(map.shard_of(5), 1u);
  EXPECT_EQ(map.shard_of(7), 3u);
  EXPECT_THROW(map.shard_of(10), std::out_of_range);
  EXPECT_THROW(map.reassign(0, 4), std::out_of_range);
  map.label(3, "ssu-3");
  EXPECT_EQ(map.name_of(3), "ssu-3");
  EXPECT_EQ(map.find("ssu-3"), 3u);
  EXPECT_EQ(map.find("nope"), ShardMap::npos);
}

TEST(ShardedSim, EpochsSkipDeadTime) {
  // Two event clusters a long gap apart: the epoch count must track the
  // clusters (a handful each), not gap / lookahead (which would be 100k).
  ShardedSimulator engine(2, ShardedConfig{kLookahead, 1});
  engine.shard(0).schedule_at(kMicrosecond, [] {});
  engine.shard(1).schedule_at(sim::kSecond, [] {});
  engine.run(2 * sim::kSecond);
  EXPECT_LE(engine.epochs(), 4u);
  EXPECT_EQ(engine.executed_events(), 2u);
}

}  // namespace
