# Empty dependencies file for bench_c14_scalable_tools.
# This may be replaced when dependencies are built.
