
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/infra/config_mgmt.cpp" "src/CMakeFiles/spider_infra.dir/infra/config_mgmt.cpp.o" "gcc" "src/CMakeFiles/spider_infra.dir/infra/config_mgmt.cpp.o.d"
  "/root/repo/src/infra/gedi.cpp" "src/CMakeFiles/spider_infra.dir/infra/gedi.cpp.o" "gcc" "src/CMakeFiles/spider_infra.dir/infra/gedi.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/spider_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
