// Tests for the declarative fault-plan layer: parser round-trips and error
// reporting, seeded mutation determinism, and FaultInjector compilation of
// timed / conditioned / reverting injections into simulator events.
#include "sim/faultplan.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "common/rng.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace {

using namespace spider;
using namespace spider::sim;

const char kPlanText[] = R"(# rebuild-then-enclosure scenario
name = "rebuild-then-enclosure"
seed = 42
horizon_s = 300

[[inject]]
kind = "disk-fail"
at_s = 10
group = 3
member = 1

[[inject]]
kind = "enclosure-loss"
trigger = "rebuild-active"
at_s = 12
duration_s = 60
poll_s = 0.5
enclosure = 2

[[inject]]
kind = "congestion-spike"
at_s = 30
duration_s = 20
resource = 9
magnitude = 4.5
)";

TEST(FaultPlanParse, ParsesFullPlan) {
  const FaultPlan plan = parse_fault_plan(kPlanText);
  EXPECT_EQ(plan.name, "rebuild-then-enclosure");
  EXPECT_EQ(plan.seed, 42u);
  EXPECT_DOUBLE_EQ(plan.horizon_s, 300.0);
  ASSERT_EQ(plan.injections.size(), 3u);

  EXPECT_EQ(plan.injections[0].kind, FaultKind::kDiskFail);
  EXPECT_EQ(plan.injections[0].trigger, TriggerKind::kAtTime);
  EXPECT_EQ(plan.injections[0].at, 10 * kSecond);
  EXPECT_EQ(plan.injections[0].group, 3u);
  EXPECT_EQ(plan.injections[0].member, 1u);

  EXPECT_EQ(plan.injections[1].kind, FaultKind::kEnclosureLoss);
  EXPECT_EQ(plan.injections[1].trigger, TriggerKind::kOnRebuildActive);
  EXPECT_EQ(plan.injections[1].duration, 60 * kSecond);
  EXPECT_EQ(plan.injections[1].poll, kSecond / 2);
  EXPECT_EQ(plan.injections[1].enclosure, 2u);

  EXPECT_EQ(plan.injections[2].kind, FaultKind::kCongestionSpike);
  EXPECT_DOUBLE_EQ(plan.injections[2].magnitude, 4.5);
  EXPECT_EQ(plan.injections[2].resource, 9u);
}

TEST(FaultPlanParse, RoundTripsThroughText) {
  const FaultPlan plan = parse_fault_plan(kPlanText);
  const FaultPlan again = parse_fault_plan(to_plan_text(plan));
  EXPECT_EQ(again.name, plan.name);
  EXPECT_EQ(again.seed, plan.seed);
  EXPECT_DOUBLE_EQ(again.horizon_s, plan.horizon_s);
  ASSERT_EQ(again.injections.size(), plan.injections.size());
  for (std::size_t i = 0; i < plan.injections.size(); ++i) {
    EXPECT_EQ(again.injections[i].kind, plan.injections[i].kind) << i;
    EXPECT_EQ(again.injections[i].trigger, plan.injections[i].trigger) << i;
    EXPECT_EQ(again.injections[i].at, plan.injections[i].at) << i;
    EXPECT_EQ(again.injections[i].duration, plan.injections[i].duration) << i;
    EXPECT_EQ(again.injections[i].group, plan.injections[i].group) << i;
    EXPECT_EQ(again.injections[i].member, plan.injections[i].member) << i;
    EXPECT_EQ(again.injections[i].enclosure, plan.injections[i].enclosure) << i;
    EXPECT_EQ(again.injections[i].resource, plan.injections[i].resource) << i;
    EXPECT_DOUBLE_EQ(again.injections[i].magnitude,
                     plan.injections[i].magnitude) << i;
  }
}

TEST(FaultPlanParse, ErrorsCarryLineNumbers) {
  try {
    parse_fault_plan("name = \"x\"\nbogus line without equals\n");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos)
        << e.what();
  }
}

TEST(FaultPlanParse, RejectsUnknownKeysAndKinds) {
  EXPECT_THROW(parse_fault_plan("wat = 3\n"), std::invalid_argument);
  EXPECT_THROW(parse_fault_plan("[[inject]]\nkind = \"gremlins\"\n"),
               std::invalid_argument);
  EXPECT_THROW(parse_fault_plan("[[inject]]\nwat = 3\n"),
               std::invalid_argument);
  EXPECT_THROW(parse_fault_plan("seed = -4\n"), std::invalid_argument);
  EXPECT_THROW(parse_fault_plan("[[inject]]\npoll_s = 0\n"),
               std::invalid_argument);
}

TEST(FaultPlanParse, KindAndTriggerNamesRoundTrip) {
  for (std::size_t i = 0; i < kFaultKindCount; ++i) {
    const auto kind = static_cast<FaultKind>(i);
    EXPECT_EQ(fault_kind_from_string(to_string(kind)), kind);
  }
  // Every kind by name, not just by index: the numeric loop above would
  // keep passing if a kind were dropped from the parse table together with
  // its enumerator, and spiderlint L15 pins each enumerator to at least one
  // test that names it.
  EXPECT_EQ(to_string(FaultKind::kDiskFail), "disk-fail");
  EXPECT_EQ(to_string(FaultKind::kDiskPartial), "disk-partial");
  EXPECT_EQ(to_string(FaultKind::kSlowDiskOnset), "slow-disk-onset");
  EXPECT_EQ(to_string(FaultKind::kEnclosureLoss), "enclosure-loss");
  EXPECT_EQ(to_string(FaultKind::kControllerFailover), "controller-failover");
  EXPECT_EQ(to_string(FaultKind::kMdsStall), "mds-stall");
  EXPECT_EQ(to_string(FaultKind::kRouterDrop), "router-drop");
  EXPECT_EQ(to_string(FaultKind::kCongestionSpike), "congestion-spike");
  for (std::size_t i = 0; i < kTriggerKindCount; ++i) {
    const auto kind = static_cast<TriggerKind>(i);
    EXPECT_EQ(trigger_kind_from_string(to_string(kind)), kind);
  }
  EXPECT_THROW(fault_kind_from_string("nope"), std::invalid_argument);
  EXPECT_THROW(trigger_kind_from_string("nope"), std::invalid_argument);
}

TEST(FaultPlanMutation, SameSeedSameMutant) {
  const FaultPlan base = parse_fault_plan(kPlanText);
  PlanBounds bounds;
  bounds.groups = 8;
  bounds.members = 10;
  bounds.enclosures = 10;
  bounds.resources = 4;
  Rng a(7);
  Rng b(7);
  const FaultPlan ma = mutate_plan(base, bounds, a);
  const FaultPlan mb = mutate_plan(base, bounds, b);
  ASSERT_EQ(ma.injections.size(), mb.injections.size());
  for (std::size_t i = 0; i < ma.injections.size(); ++i) {
    EXPECT_EQ(ma.injections[i].at, mb.injections[i].at) << i;
    EXPECT_EQ(ma.injections[i].duration, mb.injections[i].duration) << i;
    EXPECT_DOUBLE_EQ(ma.injections[i].magnitude, mb.injections[i].magnitude)
        << i;
    EXPECT_EQ(ma.injections[i].group, mb.injections[i].group) << i;
    EXPECT_EQ(ma.injections[i].member, mb.injections[i].member) << i;
  }
  EXPECT_EQ(ma.name, "rebuild-then-enclosure~mut");
}

TEST(FaultPlanMutation, RespectsBoundsAndJitterRange) {
  const FaultPlan base = parse_fault_plan(kPlanText);
  PlanBounds bounds;
  bounds.groups = 3;
  bounds.members = 5;
  bounds.enclosures = 2;
  bounds.resources = 1;
  Rng rng(99);
  for (int round = 0; round < 50; ++round) {
    const FaultPlan mutant = mutate_plan(base, bounds, rng);
    for (std::size_t i = 0; i < mutant.injections.size(); ++i) {
      const Injection& m = mutant.injections[i];
      const Injection& b = base.injections[i];
      EXPECT_LT(m.group, bounds.groups);
      EXPECT_LT(m.member, bounds.members);
      EXPECT_LT(m.enclosure, bounds.enclosures);
      EXPECT_LT(m.resource, bounds.resources);
      EXPECT_GE(m.at, static_cast<SimTime>(static_cast<double>(b.at) * 0.74));
      EXPECT_LE(m.at, static_cast<SimTime>(static_cast<double>(b.at) * 1.26));
      EXPECT_GE(m.magnitude, 1.0);
    }
  }
}

TEST(FaultInjector, TimedInjectionFiresAndReverts) {
  Simulator sim;
  FaultInjector injector(sim);
  int applied = 0;
  int reverted = 0;
  injector.bind(
      FaultKind::kMdsStall, [&](const Injection&) { ++applied; },
      [&](const Injection&) { ++reverted; });

  Injection inj;
  inj.kind = FaultKind::kMdsStall;
  inj.at = 5 * kSecond;
  inj.duration = 3 * kSecond;
  injector.inject(inj);

  sim.run(4 * kSecond);
  EXPECT_EQ(applied, 0);
  sim.run(6 * kSecond);
  EXPECT_EQ(applied, 1);
  EXPECT_EQ(reverted, 0);
  sim.run(20 * kSecond);
  EXPECT_EQ(reverted, 1);

  ASSERT_EQ(injector.log().size(), 2u);
  EXPECT_EQ(injector.log()[0].at, 5 * kSecond);
  EXPECT_FALSE(injector.log()[0].revert);
  EXPECT_EQ(injector.log()[1].at, 8 * kSecond);
  EXPECT_TRUE(injector.log()[1].revert);
  EXPECT_EQ(injector.injections_fired(), 1u);
  EXPECT_EQ(injector.reverts_fired(), 1u);
}

TEST(FaultInjector, TriggeredInjectionPollsUntilPredicateHolds) {
  Simulator sim;
  FaultInjector injector(sim);
  bool rebuild_active = false;
  int applied = 0;
  injector.bind(FaultKind::kEnclosureLoss,
                [&](const Injection&) { ++applied; });
  injector.bind_trigger(TriggerKind::kOnRebuildActive,
                        [&](const Injection&) { return rebuild_active; });

  Injection inj;
  inj.kind = FaultKind::kEnclosureLoss;
  inj.trigger = TriggerKind::kOnRebuildActive;
  inj.at = kSecond;
  inj.poll = kSecond;
  injector.inject(inj);
  sim.schedule_at(10 * kSecond + kSecond / 2,
                  [&] { rebuild_active = true; });

  sim.run(10 * kSecond);
  EXPECT_EQ(applied, 0);
  sim.run(12 * kSecond);
  EXPECT_EQ(applied, 1);
  ASSERT_EQ(injector.log().size(), 1u);
  EXPECT_EQ(injector.log()[0].at, 11 * kSecond);
}

TEST(FaultInjector, ArmSchedulesWholePlanAndChecksBindings) {
  Simulator sim;
  FaultInjector injector(sim);
  const FaultPlan plan = parse_fault_plan(kPlanText);
  // Nothing bound yet: arming must throw for the first injection's kind.
  EXPECT_THROW(injector.arm(plan), std::logic_error);

  int fired = 0;
  for (std::size_t i = 0; i < kFaultKindCount; ++i) {
    injector.bind(static_cast<FaultKind>(i),
                  [&](const Injection&) { ++fired; });
  }
  // Conditioned injection present but its trigger unbound: still an error.
  EXPECT_THROW(injector.arm(plan), std::logic_error);
  injector.bind_trigger(TriggerKind::kOnRebuildActive,
                        [](const Injection&) { return true; });
  injector.arm(plan);
  sim.run(400 * kSecond);
  EXPECT_EQ(fired, 3);
}

TEST(FaultInjector, PastInjectionTimeClampsToNow) {
  Simulator sim;
  sim.schedule_at(10 * kSecond, [] {});
  sim.run(20 * kSecond);
  ASSERT_EQ(sim.now(), 20 * kSecond);  // finite run() lands on its horizon

  FaultInjector injector(sim);
  int applied = 0;
  injector.bind(FaultKind::kRouterDrop, [&](const Injection&) { ++applied; });
  Injection inj;
  inj.kind = FaultKind::kRouterDrop;
  inj.at = 5 * kSecond;  // in the past
  injector.inject(inj);
  sim.run(21 * kSecond);
  EXPECT_EQ(applied, 1);
  ASSERT_EQ(injector.log().size(), 1u);
  EXPECT_EQ(injector.log()[0].at, 20 * kSecond);
}

}  // namespace
