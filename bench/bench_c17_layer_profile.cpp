// C17 (Lesson 12): the bottom-up, per-layer performance profile.
//
// Paper: "Build the performance profile for each layer in the PFS, from
// the bottom up. Quantify and minimize the lost performance in traversing
// from one layer to the next along the I/O path." Includes an
// obdfilter-survey run — the tool the paper used to measure file-system
// overhead over the block level.
#include <iostream>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "core/center.hpp"
#include "core/spider_config.hpp"
#include "fs/obdsurvey.hpp"

int main() {
  using namespace spider;

  Rng rng(2014);
  core::CenterModel center(core::spider2_config(), rng);

  bench::banner("C17: bottom-up layer profile, sequential write, 1 MiB");
  const auto p = center.layer_profile(block::IoMode::kSequential,
                                      block::IoDir::kWrite);
  Table table;
  table.set_columns({"layer", "aggregate GB/s", "loss vs previous %"});
  struct Row {
    const char* name;
    double value;
  };
  const Row rows[] = {
      {"raw disk media (20,160 disks)", p.disks},
      {"RAID-6 groups (2,016 OSTs)", p.raid},
      {"obdfilter + journal (FS level)", p.obdfilter},
      {"controller pairs (36 SSUs)", std::min(p.controllers, p.obdfilter)},
      {"OSS nodes (288)", std::min({p.oss, p.controllers, p.obdfilter})},
      {"LNET routers (440)",
       std::min({p.routers, p.oss, p.controllers, p.obdfilter})},
      {"end-to-end", p.end_to_end},
  };
  double prev = rows[0].value;
  for (const auto& row : rows) {
    const double loss = prev > 0.0 ? 100.0 * (1.0 - row.value / prev) : 0.0;
    table.add_row({std::string(row.name), to_gbps(row.value),
                   row.value == prev ? 0.0 : loss});
    prev = row.value;
  }
  table.print(std::cout);

  bench::banner("C17: obdfilter-survey on one OST");
  const auto survey =
      fs::run_obdfilter_survey(center.ost_at(0), fs::ObdSurveyConfig{}, rng);
  Table st;
  st.set_columns({"threads", "write MB/s", "rewrite MB/s", "read MB/s"});
  for (const auto& r : survey) {
    st.add_row({static_cast<std::int64_t>(r.threads), to_mbps(r.write_bw),
                to_mbps(r.rewrite_bw), to_mbps(r.read_bw)});
  }
  st.print(std::cout);
  const double overhead =
      fs::fs_overhead_fraction(center.ost_at(0), block::IoDir::kWrite);
  std::cout << "\nfile-system overhead vs block level (write): "
            << overhead * 100.0 << "%\n\n";

  bench::ShapeChecker checker;
  checker.check(p.disks > p.raid && p.raid > p.obdfilter,
                "each storage layer costs bandwidth over the one below");
  checker.check(p.end_to_end ==
                    std::min({p.obdfilter, p.controllers, p.oss, p.routers,
                              p.ib_leaves, p.clients}),
                "end-to-end equals the tightest layer");
  checker.check(p.controllers < p.obdfilter,
                "controllers are the system bottleneck (post-upgrade Spider II)");
  checker.check(overhead > 0.03 && overhead < 0.20,
                "obdfilter-survey sees single-to-low-double-digit FS overhead");
  checker.check(p.end_to_end > 1.0 * kTBps,
                "profile still clears the 1 TB/s requirement end to end");
  return checker.exit_code();
}
