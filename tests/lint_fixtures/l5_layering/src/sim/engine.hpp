// L5 fixture: engineered false positive — sim including common is a
// downward edge and must NOT be flagged.
#pragma once

#include "common/base.hpp"

namespace fixture {
struct Engine {
  Base ticks = 0;
};
}  // namespace fixture
