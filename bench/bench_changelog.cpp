// Incremental changelog accounting vs namespace scans (ROADMAP item 2).
//
// The Robinhood lesson made quantitative: a policy engine that answers from
// a daily namespace walk pays O(N) per epoch; one that consumes the MDS
// changelog pays O(Δ records). This bench builds synthetic namespaces of
// increasing size, then measures both epoch costs over the same churn:
//
//   scan_<N>         LustreDu::daily_scan walks (files/sec, O(N) per epoch)
//   rebuild_<N>      ChangelogAccounting full-history replay (records/sec)
//   incremental_<N>  per-epoch consume of a fixed churn delta (records/sec)
//   epoch_<N>        scan-epoch seconds vs incremental-epoch seconds, and
//                    the ratio — the number that must grow with N
//
// In-run correctness bars (shape checks, not timings): changelog-derived
// usage matches the namespace walk exactly after every churn phase, the
// accounting table hash is shard-count invariant, and the entire
// incremental phase — consume plus queries — moves the namespace walk
// counter by zero.
//
// Modes (mirrors bench_fsck):
//   --spider-json=PATH   write the machine-readable report (BENCH_changelog.json)
//   --baseline=FILE      gate scan/incremental throughput against a
//                        checked-in report (ci/bench-baseline-changelog.json)
//                        at a 0.60x noise floor
//   --smoke              seconds-long run sized for CI
#include <chrono>
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "fs/changelog.hpp"
#include "tools/lustredu.hpp"
#include "tools/spiderfsck/fsck.hpp"

namespace {

using namespace spider;

using Clock = std::chrono::steady_clock;  // spiderlint: nondet-ok

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Untimed consume epochs run before the measured loop in both modes.
constexpr std::size_t kWarmupEpochs = 8;

struct ChangelogBenchConfig {
  std::vector<std::size_t> sizes{4096, 16384, 65536};
  /// Scan reps are sized so each point walks about this many files.
  std::size_t target_files = 1 << 19;
  /// Churn epochs consumed incrementally, and ops per epoch.
  std::size_t epochs = 64;
  std::size_t delta_ops = 256;
};

ChangelogBenchConfig smoke_config() {
  ChangelogBenchConfig cfg;
  cfg.sizes = {4096, 16384};
  cfg.target_files = 1 << 16;
  cfg.epochs = 16;
  return cfg;
}

/// One churn op against the namespace; the attached log records it. The
/// pool tracks live ids locally so the bench never walks to find victims.
void churn_op(fs::FsNamespace& ns, std::vector<fs::FileId>& pool,
              sim::SimTime now, Rng& rng) {
  const std::uint64_t roll = rng.uniform_index(10);
  if (roll < 3 || pool.empty()) {
    const Bytes size = (4 + rng.uniform_index(61)) * 1_MiB;
    const auto project = static_cast<std::uint32_t>(rng.uniform_index(4));
    const fs::FileId id = ns.create_file(project, size, now, rng);
    if (id != fs::kNoFile) pool.push_back(id);
    return;
  }
  const std::size_t pick =
      static_cast<std::size_t>(rng.uniform_index(pool.size()));
  const fs::FileId victim = pool[pick];
  if (roll < 5) {
    if (ns.unlink(victim, now)) {
      pool[pick] = pool.back();
      pool.pop_back();
    }
  } else if (roll < 7) {
    ns.touch_file(victim, now);
  } else if (roll < 9) {
    const Bytes size = (4 + rng.uniform_index(61)) * 1_MiB;
    ns.resize_file(victim, size, now);
  } else {
    const auto project = static_cast<std::uint32_t>(rng.uniform_index(4));
    ns.set_project(victim, project, now);
  }
}

int run_bench(const std::string& json_path, const std::string& baseline_path,
              bool smoke) {
  const ChangelogBenchConfig cfg =
      smoke ? smoke_config() : ChangelogBenchConfig{};

  bench::banner("changelog accounting: incremental vs scan epoch cost");

  bench::JsonReport report("changelog", smoke ? "smoke" : "full");
  bench::ShapeChecker checker;

  std::string baseline_text;
  if (!baseline_path.empty() &&
      !bench::read_text_file(baseline_path, baseline_text)) {
    std::fprintf(stderr, "bench: cannot read baseline '%s'\n",
                 baseline_path.c_str());
    return 1;
  }
  const auto gate = [&](const std::string& name, const char* metric,
                        double measured) {
    if (baseline_text.empty()) return;
    double base = 0.0;
    if (!bench::json_number(baseline_text, name, metric, base)) {
      checker.check(false, name + ": baseline entry present");
      return;
    }
    const double ratio = base > 0.0 ? measured / base : 0.0;
    report.add(name, std::string("baseline_") + metric, base);
    report.add(name, "vs_baseline", ratio);
    char label[160];
    std::snprintf(label, sizeof(label),
                  "%s: %.2fx of baseline %.0f %s (floor 0.60x)", name.c_str(),
                  ratio, base, metric);
    checker.check(ratio >= 0.6, label);
  };

  for (const std::size_t files : cfg.sizes) {
    char suffix[32];
    std::snprintf(suffix, sizeof(suffix), "%zu", files);

    tools::SyntheticFsConfig fs_cfg;
    fs_cfg.files = files;
    fs_cfg.churn = 0.25;
    tools::SyntheticFs fs = tools::make_synthetic_fs(fs_cfg);
    fs::FsNamespace& ns = *fs.ns;
    fs::OpLog& log = *fs.journal;
    // From here on every namespace mutation journals itself; the synthetic
    // history already in the log used identical record shapes.
    ns.attach_oplog(&log, fs::kLogDefault);

    // --- O(N) epoch: the daily scan --------------------------------------
    const std::size_t scan_reps =
        cfg.target_files >= files ? cfg.target_files / files : 1;
    tools::LustreDu scan_tool;
    const Clock::time_point scan_start = Clock::now();  // spiderlint: nondet-ok
    for (std::size_t r = 0; r < scan_reps; ++r) {
      scan_tool.daily_scan(ns, static_cast<sim::SimTime>(r));
    }
    const double scan_s = seconds_since(scan_start);
    const double scan_files_per_sec =
        scan_s > 0.0
            ? static_cast<double>(files * scan_reps) / scan_s
            : 0.0;
    const double scan_epoch_s =
        static_cast<double>(scan_s) / static_cast<double>(scan_reps);
    report.add(std::string("scan_") + suffix, "files_per_sec",
               scan_files_per_sec);
    report.add(std::string("scan_") + suffix, "epoch_s", scan_epoch_s);
    report.add(std::string("scan_") + suffix, "reps",
               static_cast<double>(scan_reps));
    std::printf("  scan_%-12s %12.0f files/sec  (%zu reps, %.6fs/epoch)\n",
                suffix, scan_files_per_sec, scan_reps, scan_epoch_s);

    // --- full-history replay (the crash-recovery path) --------------------
    fs::ChangelogAccounting acct(8);
    const Clock::time_point rebuild_start =
        Clock::now();  // spiderlint: nondet-ok
    const fs::ConsumeResult seeded = acct.rebuild(log);
    const double rebuild_s = seconds_since(rebuild_start);
    const double rebuild_rps =
        rebuild_s > 0.0 ? static_cast<double>(seeded.applied) / rebuild_s : 0.0;
    report.add(std::string("rebuild_") + suffix, "records_per_sec",
               rebuild_rps);
    report.add(std::string("rebuild_") + suffix, "records",
               static_cast<double>(seeded.applied));
    checker.check(!seeded.cursor_ahead && !seeded.gap,
                  std::string(suffix) + " files: history replays clean");

    // --- O(Δ) epochs: churn, commit, consume ------------------------------
    std::vector<fs::FileId> pool = ns.live_ids();
    Rng rng(2014 + files);
    sim::SimTime now = static_cast<sim::SimTime>(2 * files) * sim::kSecond;
    // Untimed warmup epochs: a consume epoch is microseconds of work, so
    // first-touch and branch-training costs would otherwise dominate short
    // (smoke) runs and make the 0.60x gate flap.
    for (std::size_t e = 0; e < kWarmupEpochs; ++e) {
      for (std::size_t op = 0; op < cfg.delta_ops; ++op) {
        now += sim::kSecond;
        churn_op(ns, pool, now, rng);
      }
      log.commit(log.last_txid());
      acct.consume(log);
    }
    const std::uint64_t walks_before = ns.full_walks();
    double consume_s = 0.0;
    std::uint64_t consumed = 0;
    Bytes queried = 0;
    for (std::size_t e = 0; e < cfg.epochs; ++e) {
      for (std::size_t op = 0; op < cfg.delta_ops; ++op) {
        now += sim::kSecond;
        churn_op(ns, pool, now, rng);
      }
      log.commit(log.last_txid());
      const Clock::time_point start = Clock::now();  // spiderlint: nondet-ok
      const fs::ConsumeResult res = acct.consume(log);
      for (std::uint32_t p = 0; p < 4; ++p) queried += acct.bytes_of(p);
      consume_s += seconds_since(start);
      consumed += res.applied;
    }
    const std::uint64_t query_walks = ns.full_walks() - walks_before;
    const double inc_rps =
        consume_s > 0.0 ? static_cast<double>(consumed) / consume_s : 0.0;
    const double inc_epoch_s = consume_s / static_cast<double>(cfg.epochs);
    report.add(std::string("incremental_") + suffix, "records_per_sec",
               inc_rps);
    report.add(std::string("incremental_") + suffix, "epoch_s", inc_epoch_s);
    report.add(std::string("incremental_") + suffix, "records",
               static_cast<double>(consumed));
    std::printf(
        "  incremental_%-6s %12.0f records/sec (%zu epochs, %.6fs/epoch)\n",
        suffix, inc_rps, cfg.epochs, inc_epoch_s);

    // The headline number: how many times cheaper an incremental epoch is.
    const double ratio = inc_epoch_s > 0.0 ? scan_epoch_s / inc_epoch_s : 0.0;
    report.add(std::string("epoch_") + suffix, "scan_s", scan_epoch_s);
    report.add(std::string("epoch_") + suffix, "incremental_s", inc_epoch_s);
    report.add(std::string("epoch_") + suffix, "scan_over_incremental", ratio);
    std::printf("  epoch_%-12s %12.1fx scan/incremental cost\n", suffix,
                ratio);
    char ratio_label[160];
    std::snprintf(ratio_label, sizeof(ratio_label),
                  "%s files: incremental epoch beats the scan (%.1fx)",
                  suffix, ratio);
    checker.check(ratio > 1.0, ratio_label);

    // Correctness bars: derived accounting equals ground truth; the
    // incremental phase walked nothing; the table hash is shard-invariant.
    checker.check(query_walks == 0,
                  std::string(suffix) +
                      " files: consume+query phase took zero namespace walks");
    checker.check(acct.usage() == ns.usage_by_project(),
                  std::string(suffix) +
                      " files: changelog usage matches namespace ground truth");
    fs::ChangelogAccounting flat(1);
    flat.rebuild(log);
    checker.check(flat.table_hash() == acct.table_hash(),
                  std::string(suffix) +
                      " files: table hash invariant across shard fan-out");
    (void)queried;

    gate(std::string("scan_") + suffix, "files_per_sec", scan_files_per_sec);
    gate(std::string("incremental_") + suffix, "records_per_sec", inc_rps);
  }

  if (!json_path.empty()) {
    if (!report.write_file(json_path)) return 1;
    std::printf("wrote %s\n", json_path.c_str());
  }
  return checker.exit_code();
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = "BENCH_changelog.json";
  std::string baseline_path;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.starts_with("--spider-json=")) {
      json_path = std::string(arg.substr(14));
    } else if (arg.starts_with("--baseline=")) {
      baseline_path = std::string(arg.substr(11));
    } else if (arg == "--smoke") {
      smoke = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--spider-json=PATH] [--baseline=FILE] "
                   "[--smoke]\n",
                   argv[0]);
      return 2;
    }
  }
  return run_bench(json_path, baseline_path, smoke);
}
