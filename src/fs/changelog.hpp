// Changelog consumers: scan-free metadata accounting (ROADMAP item 2).
//
// The Robinhood lesson behind this layer: namespace walks stop working
// around 1e9 entries, so policy engines must consume the MDS changelog
// instead. fs/journal.hpp is the log; this file is the consumer side — a
// crash-consistent cursor (only the committed prefix is ever consumed, so
// consumer state is always a function of durable records) and sharded
// per-project accounting tables that LustreDU-style reporting and the
// incremental purge engine query in O(1), with O(Δ records) maintenance
// per epoch instead of O(N files) per sweep. docs/metadata-changelog.md
// has the full contract.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "common/units.hpp"
#include "fs/fs_namespace.hpp"
#include "fs/journal.hpp"

namespace spider::fs {

/// Diagnostics from one incremental consumption batch.
struct ConsumeResult {
  std::uint64_t applied = 0;  ///< records applied this batch
  std::uint64_t cursor = 0;   ///< consumer cursor after the batch
  /// The consumer's cursor is ahead of the log's committed cursor: a crash
  /// (OpLog::truncate_to) rewound the log underneath us, and because txids
  /// are reused after truncation the consumer's state may describe records
  /// that no longer exist. Nothing was applied; the consumer must rebuild.
  bool cursor_ahead = false;
  /// An expected txid was missing from the consumed range (interior
  /// corruption of the kind spiderfsck seeds via records_mutable). Present
  /// records were still applied; `first_gap_txid` names the first hole.
  bool gap = false;
  std::uint64_t first_gap_txid = 0;
};

/// One project's row in the accounting tables.
struct ProjectUsage {
  Bytes bytes = 0;           ///< live bytes owned by the project
  std::uint64_t files = 0;   ///< live file count
  std::uint64_t creates = 0;  ///< total creates ever consumed
  std::uint64_t unlinks = 0;  ///< total unlinks ever consumed
  std::int64_t last_activity = 0;  ///< latest record `at` seen

  bool operator==(const ProjectUsage&) const = default;
};

/// Crash-consistent changelog cursor. Walks the committed records past the
/// consumer's position in txid order (binary-searched start, so a batch
/// costs O(log n + Δ), not O(n)) and hands each to `fn`. Shared by the
/// accounting tables below, the purge engine, and tools::LustreDu.
class ChangelogCursor {
 public:
  std::uint64_t position() const { return cursor_; }

  /// Consume committed records with txid in (position(), log.committed()].
  /// Refuses (cursor_ahead) when position() > log.committed(). Template so
  /// consumers apply records without an indirect call per record.
  template <typename Fn>
  ConsumeResult consume(const OpLog& log, Fn&& fn) {
    ConsumeResult res;
    res.cursor = cursor_;
    const std::uint64_t committed = log.committed();
    if (cursor_ > committed) {
      res.cursor_ahead = true;
      return res;
    }
    const std::vector<OpRecord>& recs = log.records();
    // Binary search for the first record past the cursor (txids ascend).
    std::size_t lo = 0, hi = recs.size();
    while (lo < hi) {
      const std::size_t mid = lo + (hi - lo) / 2;
      if (recs[mid].txid <= cursor_) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    std::uint64_t expect = cursor_ + 1;
    for (std::size_t i = lo; i < recs.size(); ++i) {
      const OpRecord& rec = recs[i];
      if (rec.txid > committed) break;
      if (rec.txid != expect && !res.gap) {
        res.gap = true;
        res.first_gap_txid = expect;
      }
      expect = rec.txid + 1;
      fn(rec);
      ++res.applied;
    }
    if (expect <= committed && !res.gap) {
      // The log is missing its committed tail entirely.
      res.gap = true;
      res.first_gap_txid = expect;
    }
    cursor_ = committed;
    res.cursor = cursor_;
    return res;
  }

  /// Drop back to the start (full re-consume) or to an explicit position
  /// (tests pin exact boundaries with this).
  void reset(std::uint64_t position = 0) { cursor_ = position; }

 private:
  std::uint64_t cursor_ = 0;
};

/// Sharded per-project accounting derived purely from changelog records.
///
/// Projects are partitioned `project % shards`; a kSetProject record spans
/// two shards and each applies only its half, so the merged table is
/// byte-identical at any shard fan-out (the determinism property
/// tests/property_test.cpp pins). One instance accounts one namespace; a
/// multi-namespace consumer (tools::LustreDu) holds one per namespace and
/// merges.
class ChangelogAccounting {
 public:
  explicit ChangelogAccounting(std::uint32_t shards = 1);

  /// Apply all newly committed records. On cursor_ahead nothing changes —
  /// call rebuild(). On gap the present records were applied and the
  /// tables are suspect; rebuild() or escalate to spiderfsck.
  ConsumeResult consume(const OpLog& log);

  /// O(1) queries against the tables (no namespace walk, ever).
  Bytes bytes_of(std::uint32_t project) const;
  std::uint64_t files_of(std::uint32_t project) const;
  const ProjectUsage* find(std::uint32_t project) const;

  /// Merged per-project live bytes, ascending project order (the same
  /// canonical shape FsNamespace::usage_by_project returns, so oracles
  /// compare directly).
  std::map<std::uint32_t, Bytes> usage() const;
  /// Merged full rows, ascending project order.
  std::map<std::uint32_t, ProjectUsage> rows() const;

  /// FNV-1a over the merged rows in canonical order: shard-count-invariant
  /// fingerprint for determinism checks.
  std::uint64_t table_hash() const;

  /// Forget everything and re-consume the whole committed prefix — the
  /// recovery path after cursor_ahead (crash) at O(committed) cost.
  ConsumeResult rebuild(const OpLog& log);

  /// Last-resort O(N) rebuild from namespace ground truth, for logs with
  /// interior gaps where no prefix replay can be trusted. Takes the
  /// cursor from `log.committed()`; the caller owns the claim that `ns`
  /// reflects exactly the committed prefix. Counts a full walk.
  void rebuild_from_namespace(const FsNamespace& ns, const OpLog& log);

  std::uint32_t shards() const { return static_cast<std::uint32_t>(tables_.size()); }
  std::uint64_t cursor() const { return cursor_.position(); }
  std::uint64_t records_applied() const { return records_applied_; }

 private:
  void apply(const OpRecord& rec);

  ChangelogCursor cursor_;
  /// tables_[project % shards] owns the row for `project`.
  std::vector<std::map<std::uint32_t, ProjectUsage>> tables_;
  std::uint64_t records_applied_ = 0;
};

}  // namespace spider::fs
