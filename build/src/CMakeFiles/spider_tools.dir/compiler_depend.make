# Empty compiler generated dependencies file for spider_tools.
# This may be replaced when dependencies are built.
