// Ablation A1 (Section IV-A): parity de-clustering for faster rebuilds.
//
// OLCF "worked with the vendor community to push new features (e.g. parity
// de-clustering for faster disk rebuilds and improved reliability
// characteristics) into their products". The ablation quantifies why:
// rebuild time sets the window during which a second (and fatal third)
// failure can stack, and the delivered-bandwidth penalty lasts for the
// whole window.
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "block/failure.hpp"
#include "block/ssu.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"

int main() {
  using namespace spider;
  using namespace spider::block;

  bench::banner("A1: classic vs parity-declustered rebuild");

  Table table;
  table.set_columns({"rebuild", "time (h)", "group BW during rebuild MB/s",
                     "groups lost / SSU-decade @3% AFR"});
  std::vector<double> rebuild_hours;
  std::vector<std::uint64_t> losses;
  for (double speedup : {1.0, 4.0}) {
    RaidParams raid;
    raid.rebuild_speedup = speedup;
    Rng rng(2014);
    SsuParams params;
    params.raid = raid;
    params.raid_groups = 14;  // smaller fleet, longer horizon
    Ssu ssu(params, 0, rng);
    const auto& group = ssu.group(0);
    rebuild_hours.push_back(group.rebuild_time_s() / 3600.0);

    // Reliability: a decade of operation at a pessimistic 3% AFR with a
    // deliberately slowed rebuild rate to make double-failure windows
    // visible at bench scale.
    Rng frng(7);
    SsuParams fragile = params;
    fragile.raid.rebuild_rate = 5.0 * kMBps;
    fragile.raid.rebuild_speedup = speedup;
    Ssu fleet(fragile, 1, frng);
    const auto stats = inject_random_failures(fleet, 10.0, 0.03, frng);
    losses.push_back(stats.double_failures);

    Raid6Group probe(raid, {ssu.group(0).member(0), ssu.group(0).member(1),
                            ssu.group(0).member(2), ssu.group(0).member(3),
                            ssu.group(0).member(4), ssu.group(0).member(5),
                            ssu.group(0).member(6), ssu.group(0).member(7),
                            ssu.group(0).member(8), ssu.group(0).member(9)});
    probe.fail_member(0);
    probe.start_rebuild(0);
    table.add_row({speedup == 1.0 ? std::string("classic")
                                  : std::string("declustered (4x)"),
                   rebuild_hours.back(),
                   to_mbps(probe.bandwidth(IoMode::kSequential,
                                           IoDir::kWrite)),
                   static_cast<std::int64_t>(losses.back())});
  }
  table.print(std::cout);
  std::cout << "\n(second column: rebuild window; fourth: rebuilds that saw a "
               "second failure in flight — the precursor of the 2010-style "
               "loss)\n\n";

  bench::ShapeChecker checker;
  checker.check(rebuild_hours[0] > 3.9 * rebuild_hours[1],
                "declustering shortens the rebuild window ~4x");
  checker.check(losses[1] <= losses[0],
                "shorter windows stack fewer double failures");
  checker.check(rebuild_hours[0] > 10.0,
                "classic rebuild of a 2 TB drive takes half a day");
  return checker.exit_code();
}
