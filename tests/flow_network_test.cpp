#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "sim/flow_network.hpp"
#include "sim/replay.hpp"
#include "sim/simulator.hpp"

namespace spider::sim {
namespace {

struct Fixture : ::testing::Test {
  Simulator sim;
  FlowNetwork net{sim};
};

TEST_F(Fixture, SingleFlowCompletesAtCapacityTime) {
  const auto r = net.add_resource("link", 100.0);
  SimTime done_at = -1;
  FlowDesc d;
  d.path = {{r, 1.0}};
  d.size = 1000.0;
  d.on_complete = [&](FlowId, SimTime t) { done_at = t; };
  net.start_flow(std::move(d));
  sim.run();
  EXPECT_NEAR(to_seconds(done_at), 10.0, 1e-3);
  EXPECT_NEAR(net.total_delivered(), 1000.0, 1e-6);
}

TEST_F(Fixture, RateCapSlowsFlow) {
  const auto r = net.add_resource("link", 100.0);
  SimTime done_at = -1;
  FlowDesc d;
  d.path = {{r, 1.0}};
  d.size = 100.0;
  d.rate_cap = 10.0;
  d.on_complete = [&](FlowId, SimTime t) { done_at = t; };
  net.start_flow(std::move(d));
  sim.run();
  EXPECT_NEAR(to_seconds(done_at), 10.0, 1e-3);
}

TEST_F(Fixture, TwoFlowsShareThenSpeedUp) {
  // Two equal flows share 100 u/s; after the first finishes at t=2 (100
  // units each at 50 u/s), the second's remaining 100 units run at full
  // rate, finishing at t=3.
  const auto r = net.add_resource("link", 100.0);
  std::vector<double> done;
  for (double size : {100.0, 200.0}) {
    FlowDesc d;
    d.path = {{r, 1.0}};
    d.size = size;
    d.on_complete = [&](FlowId, SimTime t) { done.push_back(to_seconds(t)); };
    net.start_flow(std::move(d));
  }
  sim.run();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_NEAR(done[0], 2.0, 1e-3);
  EXPECT_NEAR(done[1], 3.0, 1e-3);
}

TEST_F(Fixture, LatencyDelaysActivation) {
  const auto r = net.add_resource("link", 100.0);
  SimTime done_at = -1;
  FlowDesc d;
  d.path = {{r, 1.0}};
  d.size = 100.0;
  d.latency = 5 * kSecond;
  d.on_complete = [&](FlowId, SimTime t) { done_at = t; };
  net.start_flow(std::move(d));
  EXPECT_EQ(net.active_flows(), 0u);  // not yet activated
  sim.run();
  EXPECT_NEAR(to_seconds(done_at), 6.0, 1e-3);
}

TEST_F(Fixture, CapacityChangeMidFlight) {
  const auto r = net.add_resource("link", 100.0);
  SimTime done_at = -1;
  FlowDesc d;
  d.path = {{r, 1.0}};
  d.size = 1000.0;  // 10 s at full rate
  d.on_complete = [&](FlowId, SimTime t) { done_at = t; };
  net.start_flow(std::move(d));
  // Halve capacity at t=5: 500 units left at 50 u/s -> 10 more seconds.
  sim.schedule_in(5 * kSecond, [&] { net.set_capacity(r, 50.0); });
  sim.run();
  EXPECT_NEAR(to_seconds(done_at), 15.0, 1e-2);
}

TEST_F(Fixture, CancelFlowSkipsCallback) {
  const auto r = net.add_resource("link", 10.0);
  bool fired = false;
  FlowDesc d;
  d.path = {{r, 1.0}};
  d.size = 100.0;
  d.on_complete = [&](FlowId, SimTime) { fired = true; };
  const FlowId id = net.start_flow(std::move(d));
  sim.schedule_in(kSecond, [&] { net.cancel_flow(id); });
  sim.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(net.active_flows(), 0u);
}

TEST_F(Fixture, CompletionCallbackCanStartNewFlow) {
  const auto r = net.add_resource("link", 100.0);
  int completions = 0;
  FlowDesc first;
  first.path = {{r, 1.0}};
  first.size = 100.0;
  first.on_complete = [&](FlowId, SimTime) {
    ++completions;
    FlowDesc second;
    second.path = {{r, 1.0}};
    second.size = 100.0;
    second.on_complete = [&](FlowId, SimTime) { ++completions; };
    net.start_flow(std::move(second));
  };
  net.start_flow(std::move(first));
  sim.run();
  EXPECT_EQ(completions, 2);
  EXPECT_NEAR(to_seconds(sim.now()), 2.0, 1e-3);
}

TEST_F(Fixture, TelemetryAccumulatesServedUnits) {
  const auto r = net.add_resource("link", 100.0);
  FlowDesc d;
  d.path = {{r, 2.0}};  // cost 2: consumes 2 units per delivered unit
  d.size = 100.0;
  net.start_flow(std::move(d));
  sim.run();
  EXPECT_NEAR(net.stats(r).served, 200.0, 1e-3);
  EXPECT_EQ(net.stats(r).flows_seen, 1u);
}

TEST_F(Fixture, AggregateRateReflectsActiveFlows) {
  const auto r = net.add_resource("link", 100.0);
  FlowDesc d;
  d.path = {{r, 1.0}};
  d.size = 500.0;
  net.start_flow(std::move(d));
  sim.run(kSecond);  // mid-flight
  EXPECT_NEAR(net.aggregate_rate(), 100.0, 1e-6);
  sim.run();
  EXPECT_NEAR(net.aggregate_rate(), 0.0, 1e-9);
}

TEST_F(Fixture, StarvedFlowWakesOnCapacityRestore) {
  const auto r = net.add_resource("link", 0.0);
  SimTime done_at = -1;
  FlowDesc d;
  d.path = {{r, 1.0}};
  d.size = 100.0;
  d.on_complete = [&](FlowId, SimTime t) { done_at = t; };
  net.start_flow(std::move(d));
  sim.schedule_in(10 * kSecond, [&] { net.set_capacity(r, 100.0); });
  sim.run();
  EXPECT_NEAR(to_seconds(done_at), 11.0, 1e-2);
}

TEST_F(Fixture, RejectsInvalidFlows) {
  const auto r = net.add_resource("link", 10.0);
  FlowDesc bad_size;
  bad_size.path = {{r, 1.0}};
  bad_size.size = 0.0;
  EXPECT_THROW(net.start_flow(std::move(bad_size)), std::invalid_argument);
  FlowDesc bad_path;
  bad_path.path = {{42, 1.0}};
  bad_path.size = 1.0;
  EXPECT_THROW(net.start_flow(std::move(bad_path)), std::out_of_range);
}

TEST_F(Fixture, ManyFlowsConserveBytes) {
  const auto a = net.add_resource("a", 250.0);
  const auto b = net.add_resource("b", 400.0);
  double expected = 0.0;
  int completions = 0;
  for (int i = 0; i < 50; ++i) {
    FlowDesc d;
    d.path = i % 2 ? std::vector<PathHop>{{a, 1.0}}
                   : std::vector<PathHop>{{a, 1.0}, {b, 1.0}};
    d.size = 10.0 * (i + 1);
    expected += d.size;
    d.on_complete = [&](FlowId, SimTime) { ++completions; };
    net.start_flow(std::move(d));
  }
  sim.run();
  EXPECT_EQ(completions, 50);
  EXPECT_NEAR(net.total_delivered(), expected, expected * 1e-5);
  EXPECT_NEAR(net.stats(a).served, expected, expected * 2e-5);
}

// --- insertion-order / hash-order regression (spiderlint rule L1) ----------
//
// FlowNetwork used to keep active flows in an unordered_map and walk it on
// the progress-integration path, so float-sum order — and therefore the
// telemetry feeding slow-disk culling and congestion envelopes — depended
// on hash-table history (bucket growth from long-gone flows). These tests
// pin the fix: every walk is id-ordered, so results are a function of the
// live flow set alone.

/// Everything observable about one scenario run, keyed by flow description
/// index (not by FlowId, which depends on start order/history).
struct ScenarioResult {
  std::vector<double> rate_at_start;  ///< per desc, right after activation
  std::vector<SimTime> completed_at;  ///< per desc
  std::vector<ResourceStats> stats;   ///< per measured resource
};

/// Start `sizes[i]` over a 4-resource network (description index i keeps a
/// fixed path/cap shape). With `churn`, batches of short-lived flows on a
/// separate resource are started and cancelled around the real starts; the
/// batch sizes are tuned so real flow ids land far apart and collide modulo
/// a typical hash-table bucket count (121 and 248 mod 127), the situation
/// that visibly reordered the old unordered_map's iteration. The surviving
/// real flows must not care about any of it.
ScenarioResult run_scenario(const std::vector<double>& sizes, bool churn) {
  Simulator sim;
  FlowNetwork net(sim);
  const ResourceId r0 = net.add_resource("r0", 100.0 / 3.0);
  const ResourceId r1 = net.add_resource("r1", 70.0 / 3.0);
  const ResourceId r2 = net.add_resource("r2", 55.0 / 7.0);
  const ResourceId r3 = net.add_resource("r3", 41.0 / 9.0);
  const ResourceId chaff_r = net.add_resource("chaff", 1024.0);

  auto churn_flows = [&](int count) {
    std::vector<FlowId> chaff_ids;
    for (int i = 0; i < count; ++i) {
      FlowDesc d;
      d.path = {{chaff_r, 1.0}};
      d.size = 1.0;
      chaff_ids.push_back(net.start_flow(std::move(d)));
    }
    for (FlowId id : chaff_ids) net.cancel_flow(id);
  };

  ScenarioResult result;
  result.rate_at_start.resize(sizes.size());
  result.completed_at.resize(sizes.size(), -1);

  std::vector<FlowId> id_of(sizes.size());
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    if (churn && i == 0) churn_flows(120);  // real ids start at 121
    if (churn && i == 5) churn_flows(122);  // 6th real id = 248 = 121 + 127
    FlowDesc d;
    // Path shape cycles through the measured resources; every flow crosses
    // at least two so fair-share coupling is real.
    switch (i % 4) {
      case 0: d.path = {{r0, 1.0}, {r1, 1.0}}; break;
      case 1: d.path = {{r1, 1.0}, {r2, 1.0}}; break;
      case 2: d.path = {{r2, 1.0}, {r3, 1.0}}; break;
      default: d.path = {{r3, 1.0}, {r0, 1.0}}; break;
    }
    d.size = sizes[i];
    // Distinct inexact cap per flow: fair-share ties would give every flow
    // on a bottleneck the *same* rate, and reordered sums of equal values
    // round identically — hiding iteration-order bugs. Distinct rates make
    // per-resource telemetry sums sensitive to walk order.
    d.rate_cap = (7.0 + static_cast<double>(i)) / 3.0;
    d.on_complete = [&result, i](FlowId, SimTime t) {
      result.completed_at[i] = t;
    };
    id_of[i] = net.start_flow(std::move(d));
  }
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    result.rate_at_start[i] = net.flow_rate(id_of[i]);
  }
  sim.run();
  for (ResourceId r : {r0, r1, r2, r3}) result.stats.push_back(net.stats(r));
  return result;
}

/// Bitwise comparison of two runs (EXPECT_EQ on doubles, no tolerance):
/// determinism means identical, not merely close.
void expect_identical(const ScenarioResult& a, const ScenarioResult& b) {
  ASSERT_EQ(a.rate_at_start.size(), b.rate_at_start.size());
  for (std::size_t i = 0; i < a.rate_at_start.size(); ++i) {
    EXPECT_EQ(a.rate_at_start[i], b.rate_at_start[i]) << "flow " << i;
    EXPECT_EQ(a.completed_at[i], b.completed_at[i]) << "flow " << i;
  }
  ASSERT_EQ(a.stats.size(), b.stats.size());
  for (std::size_t r = 0; r < a.stats.size(); ++r) {
    EXPECT_EQ(a.stats[r].served, b.stats[r].served) << "resource " << r;
    EXPECT_EQ(a.stats[r].busy_integral, b.stats[r].busy_integral)
        << "resource " << r;
    EXPECT_EQ(a.stats[r].flows_seen, b.stats[r].flows_seen) << "resource " << r;
  }
}

TEST(FlowOrderRegression, FlowTableHistoryDoesNotChangeAllocations) {
  // Deliberately inexact sizes: any change in float-summation order would
  // show up bitwise in served/busy_integral.
  std::vector<double> sizes;
  for (int i = 0; i < 20; ++i) sizes.push_back(10.0 * (i + 1) / 3.0);
  const ScenarioResult clean = run_scenario(sizes, /*churn=*/false);
  const ScenarioResult churned = run_scenario(sizes, /*churn=*/true);
  expect_identical(clean, churned);
}

TEST(FlowOrderRegression, StartOrderDoesNotChangeAllocations) {
  // Exactly-representable sizes/capacities make float sums associative, so
  // even the reversed id-assignment must reproduce results bitwise.
  Simulator sim_a, sim_b;
  FlowNetwork net_a(sim_a), net_b(sim_b);
  for (FlowNetwork* net : {&net_a, &net_b}) {
    net->add_resource("x", 256.0);
    net->add_resource("y", 128.0);
  }
  auto start_all = [](Simulator&, FlowNetwork& net, bool reversed) {
    std::vector<FlowId> ids(8);
    for (std::size_t k = 0; k < 8; ++k) {
      const std::size_t i = reversed ? 7 - k : k;
      FlowDesc d;
      d.path = i % 2 ? std::vector<PathHop>{{1, 1.0}}
                     : std::vector<PathHop>{{0, 1.0}, {1, 1.0}};
      d.size = 64.0 * (1 + static_cast<double>(i));
      ids[i] = net.start_flow(std::move(d));
    }
    return ids;
  };
  const std::vector<FlowId> ids_a = start_all(sim_a, net_a, false);
  const std::vector<FlowId> ids_b = start_all(sim_b, net_b, true);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(net_a.flow_rate(ids_a[i]), net_b.flow_rate(ids_b[i]))
        << "flow " << i;
  }
  sim_a.run();
  sim_b.run();
  EXPECT_EQ(net_a.total_delivered(), net_b.total_delivered());

  // The telemetry hash the replay gate uses must agree too.
  ReplayRecorder rec_a, rec_b;
  rec_a.record_resource_stats(net_a);
  rec_b.record_resource_stats(net_b);
  EXPECT_EQ(rec_a.stats_hash(), rec_b.stats_hash());
}

}  // namespace
}  // namespace spider::sim
