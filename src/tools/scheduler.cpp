#include "tools/scheduler.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace spider::tools {

namespace {

/// Add one app's bursts (period/duration/rate from its signature, shifted
/// by `offset`) onto the timeline.
void add_app(std::vector<double>& timeline, const IosiSignature& app,
             double offset, const SchedulerConfig& cfg) {
  if (!app.found || app.period_s <= 0.0 || app.burst_duration_s <= 0.0) return;
  const double rate = app.burst_bytes / app.burst_duration_s;
  for (double start = offset; start < cfg.horizon_s; start += app.period_s) {
    const auto first = static_cast<std::size_t>(std::max(0.0, start) / cfg.grid_s);
    const auto last = static_cast<std::size_t>(
        std::max(0.0, start + app.burst_duration_s) / cfg.grid_s);
    for (std::size_t b = first; b <= last && b < timeline.size(); ++b) {
      timeline[b] += rate;
    }
  }
}

double peak_of(const std::vector<double>& timeline) {
  double peak = 0.0;
  for (double v : timeline) peak = std::max(peak, v);
  return peak;
}

}  // namespace

std::vector<double> aggregate_timeline(std::span<const IosiSignature> apps,
                                       std::span<const double> offsets,
                                       const SchedulerConfig& cfg) {
  if (apps.size() != offsets.size()) {
    throw std::invalid_argument("aggregate_timeline: size mismatch");
  }
  std::vector<double> timeline(
      static_cast<std::size_t>(cfg.horizon_s / cfg.grid_s) + 1, 0.0);
  for (std::size_t i = 0; i < apps.size(); ++i) {
    add_app(timeline, apps[i], offsets[i], cfg);
  }
  return timeline;
}

ScheduleResult schedule_applications(std::span<const IosiSignature> apps,
                                     const SchedulerConfig& cfg) {
  ScheduleResult result;
  result.offsets.assign(apps.size(), 0.0);
  {
    const auto naive = aggregate_timeline(apps, result.offsets, cfg);
    result.naive_peak_bw = peak_of(naive);
  }

  // Biggest bursts first: they constrain the schedule the most.
  std::vector<std::size_t> order(apps.size());
  std::iota(order.begin(), order.end(), 0);
  auto burst_rate = [&apps](std::size_t i) {
    return apps[i].burst_duration_s > 0.0
               ? apps[i].burst_bytes / apps[i].burst_duration_s
               : 0.0;
  };
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return burst_rate(a) > burst_rate(b);
  });

  std::vector<double> timeline(
      static_cast<std::size_t>(cfg.horizon_s / cfg.grid_s) + 1, 0.0);
  for (std::size_t idx : order) {
    const auto& app = apps[idx];
    if (!app.found || app.period_s <= 0.0) continue;
    double best_offset = 0.0;
    double best_peak = std::numeric_limits<double>::infinity();
    for (double off = 0.0; off < app.period_s; off += cfg.offset_step_s) {
      std::vector<double> candidate = timeline;
      add_app(candidate, app, off, cfg);
      const double peak = peak_of(candidate);
      if (peak < best_peak) {
        best_peak = peak;
        best_offset = off;
      }
    }
    result.offsets[idx] = best_offset;
    add_app(timeline, app, best_offset, cfg);
  }
  result.scheduled_peak_bw = peak_of(timeline);
  result.peak_reduction = result.scheduled_peak_bw > 0.0
                              ? result.naive_peak_bw / result.scheduled_peak_bw
                              : 1.0;
  return result;
}

}  // namespace spider::tools
