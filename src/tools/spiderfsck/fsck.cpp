#include "tools/spiderfsck/fsck.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <map>
#include <sstream>
#include <stdexcept>
#include <tuple>
#include <utility>

#include "common/parallel.hpp"
#include "fs/recovery.hpp"
#include "sim/time.hpp"

namespace spider::tools {

namespace {

constexpr std::size_t kDefaultShards = 8;

// FNV-1a, byte-folded — the same digest discipline stream_hash() uses for
// replay streams, applied to fsck state and findings.
struct Fnv {
  std::uint64_t h = 1469598103934665603ull;
  void fold(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 1099511628211ull;
    }
  }
  void fold_str(const std::string& s) {
    for (char c : s) {
      h ^= static_cast<unsigned char>(c);
      h *= 1099511628211ull;
    }
    fold(s.size());
  }
};

std::string to_hex(std::uint64_t v) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out = "0x";
  for (int shift = 60; shift >= 0; shift -= 4) {
    out += kDigits[(v >> shift) & 0xf];
  }
  return out;
}

void json_escape(std::ostringstream& os, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default: os << c;
    }
  }
}

/// Canonical finding order: repair-phase order and output order. Parallel
/// scans merge into this order, so output is fan-out-invariant.
bool finding_less(const Finding& a, const Finding& b) {
  return std::tie(a.kind, a.file, a.ost, a.expect_a, a.detail) <
         std::tie(b.kind, b.file, b.ost, b.expect_a, b.detail);
}

/// Per-OST reservation of one live file: the allocator reserves
/// ceil(size / stripe_count) on each chosen OST (fs/striping.cpp), and
/// unlink releases by the same formula — fsck's "expected" side must match
/// it exactly or a clean tree would report drift.
Bytes per_stripe_share(const fs::FileRecord& rec) {
  if (rec.stripe_count == 0) return 0;
  return (rec.size + rec.stripe_count - 1) / rec.stripe_count;
}

/// One shard's buffered phase-1 results. Nothing is shared during the scan;
/// the merge step folds shards in index order (canonical-merge discipline).
struct ShardScan {
  std::vector<Finding> findings;
  std::vector<std::uint64_t> live_ids;  ///< canonical ids of live slots
  std::vector<Bytes> ref_bytes;         ///< expected bytes per OST index
  std::vector<std::uint64_t> ref_objects;
  std::vector<Bytes> actual_bytes;  ///< observed OST counters (owned OSTs)
  std::vector<std::uint64_t> actual_objects;
  std::uint64_t slots = 0;
  std::uint64_t live = 0;
};

/// Scan one inode-table slot into `out`. Dead slots are still checked for
/// zombie ids; only live slots feed the live set and OST accounting.
void scan_slot(fs::FsNamespace& ns, std::size_t slot,
               const std::map<std::uint32_t, std::size_t>& ost_index,
               ShardScan& out) {
  const fs::FileRecord& rec = ns.slot_record(slot);
  ++out.slots;
  const std::uint32_t gen = fs::generation_of_file_id(rec.id);
  const std::uint64_t canonical = fs::file_id_for_slot(gen, slot);
  if (rec.id != canonical) {
    Finding f;
    f.kind = FindingKind::kBadRecordId;
    f.file = canonical;
    f.detail = "slot " + std::to_string(slot) + " holds " +
               (rec.alive ? std::string("live") : std::string("dead")) +
               " id " + std::to_string(rec.id) + ", expected " +
               std::to_string(canonical);
    out.findings.push_back(std::move(f));
  }
  if (!rec.alive) return;
  ++out.live;
  out.live_ids.push_back(canonical);
  if (rec.stripe_count == 0) return;

  const std::size_t pool = ns.stripe_pool_size();
  const bool overrun =
      rec.stripe_offset > pool ||
      static_cast<std::size_t>(rec.stripe_count) > pool - rec.stripe_offset;
  const Bytes share = per_stripe_share(rec);
  std::uint32_t invalid = 0;
  for (std::uint32_t entry : ns.fsck_stripes(rec)) {
    const auto it = ost_index.find(entry);
    if (it == ost_index.end()) {
      ++invalid;
      continue;
    }
    out.ref_bytes[it->second] += share;
    out.ref_objects[it->second] += 1;
  }
  if (overrun || invalid > 0) {
    Finding f;
    f.kind = FindingKind::kDanglingStripe;
    f.file = canonical;
    f.detail = "file " + std::to_string(canonical) + ": " +
               std::to_string(invalid) + " stripe ref(s) name unknown OSTs" +
               (overrun ? ", stripe span overruns the pool" : "");
    out.findings.push_back(std::move(f));
  }
}

void repair_dangling_stripe(fs::FsNamespace& ns,
                            const std::map<std::uint32_t, std::size_t>& ost_index,
                            std::uint32_t lost_found, Finding& f) {
  fs::FileRecord& rec = ns.fsck_record(fs::slot_of_file_id(f.file));
  // The share each surviving stripe holds was fixed at allocation time by
  // the *claimed* stripe count; shrink the file to exactly the surviving
  // shares so a later unlink releases what is actually reserved.
  const Bytes share = per_stripe_share(rec);
  auto span = ns.fsck_stripes(rec);
  std::uint32_t kept = 0;
  for (std::uint32_t entry : span) {
    if (ost_index.find(entry) != ost_index.end()) span[kept++] = entry;
  }
  const std::uint32_t dropped = rec.stripe_count - kept;
  rec.stripe_count = kept;
  rec.size = share * kept;
  rec.project = lost_found;
  f.repair = "pruned " + std::to_string(dropped) +
             " dangling stripe ref(s), truncated to " +
             std::to_string(rec.size) + " bytes, relinked to lost+found";
}

}  // namespace

std::string_view finding_kind_name(FindingKind kind) {
  switch (kind) {
    case FindingKind::kBadRecordId: return "bad-record-id";
    case FindingKind::kDanglingStripe: return "dangling-stripe";
    case FindingKind::kJournalMissingCreate: return "journal-missing-create";
    case FindingKind::kJournalMissingUnlink: return "journal-missing-unlink";
    case FindingKind::kJournalGhostUnlink: return "journal-ghost-unlink";
    case FindingKind::kLiveCountDrift: return "live-count-drift";
    case FindingKind::kCreateCountDrift: return "create-count-drift";
    case FindingKind::kOrphanObjects: return "orphan-objects";
    case FindingKind::kLostObjects: return "lost-objects";
    case FindingKind::kDneLoadDrift: return "dne-load-drift";
  }
  return "unknown";
}

FsckReport run_fsck(const FsckTarget& target, const FsckOptions& options) {
  if (target.ns == nullptr) {
    throw std::invalid_argument("run_fsck: target.ns is required");
  }
  fs::FsNamespace& ns = *target.ns;
  const std::size_t shards =
      options.shards == 0 ? kDefaultShards : options.shards;

  std::map<std::uint32_t, std::size_t> ost_index;
  for (std::size_t i = 0; i < ns.num_osts(); ++i) {
    ost_index.emplace(ns.ost(i).id(), i);
  }

  // --- phase 1: sharded scan, buffered per shard, no shared state --------
  const std::size_t slot_count = ns.slot_count();
  std::vector<ShardScan> scans(shards);
  parallel_for(
      shards,
      [&](std::size_t s) {
        ShardScan& out = scans[s];
        out.ref_bytes.assign(ns.num_osts(), 0);
        out.ref_objects.assign(ns.num_osts(), 0);
        out.actual_bytes.assign(ns.num_osts(), 0);
        out.actual_objects.assign(ns.num_osts(), 0);
        if (options.assignment == ShardAssignment::kContiguous) {
          const std::size_t chunk = (slot_count + shards - 1) / shards;
          const std::size_t begin = std::min(s * chunk, slot_count);
          const std::size_t end = std::min(begin + chunk, slot_count);
          for (std::size_t slot = begin; slot < end; ++slot) {
            scan_slot(ns, slot, ost_index, out);
          }
        } else {
          for (std::size_t slot = s; slot < slot_count; slot += shards) {
            scan_slot(ns, slot, ost_index, out);
          }
        }
        // Object scan: each shard reads the OST counters it owns.
        for (std::size_t i = s; i < ns.num_osts(); i += shards) {
          out.actual_bytes[i] = ns.ost(i).used();
          out.actual_objects[i] = ns.ost(i).object_count();
        }
      },
      options.jobs);

  // --- merge: shard-index order, then one canonical sort ------------------
  FsckReport report;
  report.osts_scanned = ns.num_osts();
  report.journal_records = target.journal ? target.journal->size() : 0;
  std::vector<std::uint64_t> table_live;
  std::vector<Bytes> expect_bytes(ns.num_osts(), 0);
  std::vector<std::uint64_t> expect_objects(ns.num_osts(), 0);
  std::vector<Bytes> actual_bytes(ns.num_osts(), 0);
  std::vector<std::uint64_t> actual_objects(ns.num_osts(), 0);
  for (const ShardScan& scan : scans) {
    report.slots_scanned += scan.slots;
    report.live_files += scan.live;
    for (const Finding& f : scan.findings) report.findings.push_back(f);
    table_live.insert(table_live.end(), scan.live_ids.begin(),
                      scan.live_ids.end());
    for (std::size_t i = 0; i < ns.num_osts(); ++i) {
      expect_bytes[i] += scan.ref_bytes[i];
      expect_objects[i] += scan.ref_objects[i];
      actual_bytes[i] += scan.actual_bytes[i];
      actual_objects[i] += scan.actual_objects[i];
    }
  }
  std::sort(table_live.begin(), table_live.end());

  // --- phase 2: serial cross-reference ------------------------------------
  for (std::size_t i = 0; i < ns.num_osts(); ++i) {
    if (actual_bytes[i] == expect_bytes[i] &&
        actual_objects[i] == expect_objects[i]) {
      continue;
    }
    Finding f;
    f.kind = (actual_bytes[i] >= expect_bytes[i] &&
              actual_objects[i] >= expect_objects[i])
                 ? FindingKind::kOrphanObjects
                 : FindingKind::kLostObjects;
    f.ost = static_cast<std::int64_t>(i);
    f.expect_a = expect_bytes[i];
    f.expect_b = expect_objects[i];
    f.detail = "ost " + std::to_string(i) + " holds " +
               std::to_string(actual_bytes[i]) + " bytes / " +
               std::to_string(actual_objects[i]) +
               " objects, stripe maps reference " +
               std::to_string(expect_bytes[i]) + " bytes / " +
               std::to_string(expect_objects[i]) + " objects";
    report.findings.push_back(std::move(f));
  }

  std::map<std::uint64_t, fs::OpRecord> create_by_id;
  std::size_t missing_creates = 0;
  if (target.journal != nullptr) {
    const fs::OpLog& log = *target.journal;
    const fs::OpLogSummary summary = fs::replay_op_log(log);
    for (const fs::OpRecord& rec : log.records()) {
      if (rec.kind == fs::OpKind::kCreate) create_by_id.emplace(rec.file, rec);
    }
    // Ghost unlinks: records unlinking a file no create record mentions.
    for (const fs::OpRecord& rec : log.records()) {
      if (rec.kind != fs::OpKind::kUnlink) continue;
      if (create_by_id.find(rec.file) != create_by_id.end()) continue;
      Finding f;
      f.kind = FindingKind::kJournalGhostUnlink;
      f.file = rec.file;
      f.expect_a = rec.txid;
      f.detail = "journal txid " + std::to_string(rec.txid) +
                 " unlinks file " + std::to_string(rec.file) +
                 " which no create record mentions";
      report.findings.push_back(std::move(f));
    }
    // Table-live vs journal-live, both ascending-id.
    std::vector<std::uint64_t> only_table;
    std::set_difference(table_live.begin(), table_live.end(),
                        summary.live.begin(), summary.live.end(),
                        std::back_inserter(only_table));
    std::vector<std::uint64_t> only_journal;
    std::set_difference(summary.live.begin(), summary.live.end(),
                        table_live.begin(), table_live.end(),
                        std::back_inserter(only_journal));
    missing_creates = only_table.size();
    for (std::uint64_t id : only_table) {
      Finding f;
      f.kind = FindingKind::kJournalMissingCreate;
      f.file = id;
      f.detail = "live file " + std::to_string(id) +
                 " is absent from the journal replay's live set";
      report.findings.push_back(std::move(f));
    }
    for (std::uint64_t id : only_journal) {
      Finding f;
      f.kind = FindingKind::kJournalMissingUnlink;
      f.file = id;
      f.detail = "journal replay says file " + std::to_string(id) +
                 " is live but the inode table says it is dead";
      report.findings.push_back(std::move(f));
    }
    // total_created must match the journal's create count once the repair
    // phase has backfilled the creates found missing above.
    const std::uint64_t expected_creates = summary.creates + missing_creates;
    if (ns.total_created() != expected_creates) {
      Finding f;
      f.kind = FindingKind::kCreateCountDrift;
      f.expect_a = expected_creates;
      f.detail = "namespace says " + std::to_string(ns.total_created()) +
                 " files were created, journal replay says " +
                 std::to_string(expected_creates);
      report.findings.push_back(std::move(f));
    }
  }

  if (ns.live_files() != report.live_files) {
    Finding f;
    f.kind = FindingKind::kLiveCountDrift;
    f.expect_a = report.live_files;
    f.detail = "live-file counter says " + std::to_string(ns.live_files()) +
               ", slot recount says " + std::to_string(report.live_files);
    report.findings.push_back(std::move(f));
  }

  if (target.dne != nullptr) {
    for (std::size_t m = 0; m < target.dne->mdts(); ++m) {
      const double load = target.dne->load_of(m);
      if (std::isfinite(load) && load >= 0.0) continue;
      Finding f;
      f.kind = FindingKind::kDneLoadDrift;
      f.ost = static_cast<std::int64_t>(m);
      f.detail = "mdt " + std::to_string(m) + " accounted load is " +
                 std::to_string(load);
      report.findings.push_back(std::move(f));
    }
  }

  std::stable_sort(report.findings.begin(), report.findings.end(),
                   finding_less);
  Fnv fh;
  for (const Finding& f : report.findings) {
    fh.fold(static_cast<std::uint64_t>(f.kind));
    fh.fold(f.file);
    fh.fold(static_cast<std::uint64_t>(f.ost));
    fh.fold_str(f.detail);
  }
  report.findings_hash = fh.h;

  // --- phase 3: serial repair in canonical order --------------------------
  if (options.repair) {
    report.repaired = true;
    for (Finding& f : report.findings) {
      switch (f.kind) {
        case FindingKind::kBadRecordId:
          ns.fsck_record(fs::slot_of_file_id(f.file)).id = f.file;
          f.repair = "rewrote record id from slot position";
          break;
        case FindingKind::kDanglingStripe:
          repair_dangling_stripe(ns, ost_index, target.lost_found_project, f);
          break;
        case FindingKind::kJournalMissingCreate: {
          const fs::FileRecord& rec =
              ns.slot_record(fs::slot_of_file_id(f.file));
          target.journal->append(fs::OpKind::kCreate, f.file, rec.project,
                                 rec.size, rec.ctime);
          f.repair = "backfilled create record";
          break;
        }
        case FindingKind::kJournalMissingUnlink: {
          const auto it = create_by_id.find(f.file);
          const std::uint32_t project =
              it != create_by_id.end() ? it->second.project : 0;
          const Bytes size = it != create_by_id.end() ? it->second.size : 0;
          const std::int64_t at = it != create_by_id.end() ? it->second.at : 0;
          target.journal->append(fs::OpKind::kUnlink, f.file, project, size,
                                 at);
          f.repair = "backfilled unlink record";
          break;
        }
        case FindingKind::kJournalGhostUnlink: {
          auto& records = target.journal->records_mutable();
          for (std::size_t i = 0; i < records.size(); ++i) {
            if (records[i].txid == f.expect_a) {
              records.erase(records.begin() +
                            static_cast<std::ptrdiff_t>(i));
              break;
            }
          }
          f.repair = "dropped ghost unlink record";
          break;
        }
        case FindingKind::kLiveCountDrift:
          ns.fsck_set_live_files(ns.recount_live());
          f.repair = "reset live-file counter from slot recount";
          break;
        case FindingKind::kCreateCountDrift:
          ns.fsck_set_total_created(
              fs::replay_op_log(*target.journal).creates);
          f.repair = "reconciled created-file counter with journal replay";
          break;
        case FindingKind::kOrphanObjects:
        case FindingKind::kLostObjects: {
          fs::Ost& ost = ns.ost(static_cast<std::size_t>(f.ost));
          ost.set_used(f.expect_a);
          ost.fsck_set_object_count(f.expect_b);
          f.repair = "reset OST accounting to " + std::to_string(f.expect_a) +
                     " bytes / " + std::to_string(f.expect_b) + " objects";
          break;
        }
        case FindingKind::kDneLoadDrift:
          target.dne->fsck_set_load(static_cast<std::size_t>(f.ost), 0.0);
          f.repair = "clamped MDT load to zero";
          break;
      }
      f.repaired = true;
      ++report.repairs_applied;
    }
    // Journal-cursor replay (fs/recovery): fold the backfilled tail into
    // the committed prefix so the journal is durable again.
    if (target.journal != nullptr) {
      const fs::JournalReplayOutcome outcome =
          fs::replay_from_cursor(*target.journal, target.journal->committed());
      target.journal->commit(outcome.new_cursor);
      report.journal_replayed = outcome.replayed;
    }
  }
  report.journal_cursor =
      target.journal != nullptr ? target.journal->committed() : 0;

  report.state_hash = fsck_state_hash(target);
  return report;
}

std::string fsck_report_json(const FsckReport& report) {
  std::ostringstream os;
  os << "{\"slots_scanned\": " << report.slots_scanned
     << ", \"live_files\": " << report.live_files
     << ", \"osts_scanned\": " << report.osts_scanned
     << ", \"journal_records\": " << report.journal_records
     << ", \"journal_replayed\": " << report.journal_replayed
     << ", \"journal_cursor\": " << report.journal_cursor
     << ", \"repairs_applied\": " << report.repairs_applied
     << ", \"repaired\": " << (report.repaired ? "true" : "false")
     << ", \"clean\": " << (report.clean() ? "true" : "false")
     << ", \"findings_hash\": \"" << to_hex(report.findings_hash)
     << "\", \"state_hash\": \"" << to_hex(report.state_hash)
     << "\", \"findings\": [";
  for (std::size_t i = 0; i < report.findings.size(); ++i) {
    const Finding& f = report.findings[i];
    if (i > 0) os << ", ";
    os << "{\"kind\": \"" << finding_kind_name(f.kind)
       << "\", \"file\": " << f.file << ", \"ost\": " << f.ost
       << ", \"detail\": \"";
    json_escape(os, f.detail);
    os << "\", \"repaired\": " << (f.repaired ? "true" : "false")
       << ", \"repair\": \"";
    json_escape(os, f.repair);
    os << "\"}";
  }
  os << "]}";
  return os.str();
}

std::uint64_t fsck_state_hash(const FsckTarget& target) {
  if (target.ns == nullptr) {
    throw std::invalid_argument("fsck_state_hash: target.ns is required");
  }
  fs::FsNamespace& ns = *target.ns;
  Fnv fnv;
  fnv.fold(ns.slot_count());
  for (std::size_t slot = 0; slot < ns.slot_count(); ++slot) {
    const fs::FileRecord& rec = ns.slot_record(slot);
    fnv.fold(rec.id);
    fnv.fold(rec.project);
    fnv.fold(rec.size);
    fnv.fold(static_cast<std::uint64_t>(rec.atime));
    fnv.fold(static_cast<std::uint64_t>(rec.mtime));
    fnv.fold(static_cast<std::uint64_t>(rec.ctime));
    fnv.fold(rec.stripe_offset);
    fnv.fold(rec.stripe_count);
    fnv.fold(rec.alive ? 1 : 0);
    for (std::uint32_t entry : ns.fsck_stripes(rec)) fnv.fold(entry);
  }
  fnv.fold(ns.live_files());
  fnv.fold(ns.total_created());
  for (std::size_t i = 0; i < ns.num_osts(); ++i) {
    fnv.fold(ns.ost(i).used());
    fnv.fold(ns.ost(i).object_count());
    fnv.fold(ns.ost(i).capacity());
  }
  if (target.journal != nullptr) {
    fnv.fold(target.journal->size());
    for (const fs::OpRecord& rec : target.journal->records()) {
      fnv.fold(rec.txid);
      fnv.fold(static_cast<std::uint64_t>(rec.kind));
      fnv.fold(rec.file);
      fnv.fold(rec.project);
      fnv.fold(rec.size);
      fnv.fold(static_cast<std::uint64_t>(rec.at));
    }
    fnv.fold(target.journal->committed());
  }
  if (target.dne != nullptr) {
    fnv.fold(target.dne->mdts());
    for (std::size_t m = 0; m < target.dne->mdts(); ++m) {
      fnv.fold(std::bit_cast<std::uint64_t>(target.dne->load_of(m)));
    }
  }
  return fnv.h;
}

// --- seeded corruption ------------------------------------------------------

namespace {

std::vector<std::size_t> live_slots(const fs::FsNamespace& ns) {
  std::vector<std::size_t> slots;
  for (std::size_t slot = 0; slot < ns.slot_count(); ++slot) {
    if (ns.slot_record(slot).alive) slots.push_back(slot);
  }
  return slots;
}

}  // namespace

std::string inject_corruption(const FsckTarget& target, FindingKind kind,
                              Rng& rng) {
  if (target.ns == nullptr) return "";
  fs::FsNamespace& ns = *target.ns;
  switch (kind) {
    case FindingKind::kBadRecordId: {
      const auto slots = live_slots(ns);
      if (slots.empty()) return "";
      const std::size_t slot = slots[rng.uniform_index(slots.size())];
      fs::FileRecord& rec = ns.fsck_record(slot);
      rec.id += 1 + rng.uniform_index(7);
      return "corrupted record id in slot " + std::to_string(slot) + " to " +
             std::to_string(rec.id);
    }
    case FindingKind::kDanglingStripe: {
      auto slots = live_slots(ns);
      std::erase_if(slots, [&ns](std::size_t slot) {
        return ns.fsck_stripes(ns.slot_record(slot)).empty();
      });
      if (slots.empty()) return "";
      const std::size_t slot = slots[rng.uniform_index(slots.size())];
      auto span = ns.fsck_stripes(ns.slot_record(slot));
      std::uint32_t max_id = 0;
      for (std::size_t i = 0; i < ns.num_osts(); ++i) {
        max_id = std::max(max_id, ns.ost(i).id());
      }
      const std::size_t entry = rng.uniform_index(span.size());
      span[entry] =
          max_id + 1 + static_cast<std::uint32_t>(rng.uniform_index(8));
      return "pointed stripe ref " + std::to_string(entry) + " of slot " +
             std::to_string(slot) + " at unknown ost " +
             std::to_string(span[entry]);
    }
    case FindingKind::kJournalMissingCreate: {
      if (target.journal == nullptr) return "";
      auto& records = target.journal->records_mutable();
      std::vector<std::size_t> candidates;
      for (std::size_t i = 0; i < records.size(); ++i) {
        if (records[i].kind == fs::OpKind::kCreate &&
            ns.exists(records[i].file)) {
          candidates.push_back(i);
        }
      }
      if (candidates.empty()) return "";
      const std::size_t idx = candidates[rng.uniform_index(candidates.size())];
      const std::uint64_t txid = records[idx].txid;
      records.erase(records.begin() + static_cast<std::ptrdiff_t>(idx));
      return "dropped create record txid " + std::to_string(txid);
    }
    case FindingKind::kJournalMissingUnlink: {
      if (target.journal == nullptr) return "";
      auto& records = target.journal->records_mutable();
      std::vector<std::size_t> candidates;
      for (std::size_t i = 0; i < records.size(); ++i) {
        if (records[i].kind == fs::OpKind::kUnlink) candidates.push_back(i);
      }
      if (candidates.empty()) return "";
      const std::size_t idx = candidates[rng.uniform_index(candidates.size())];
      const std::uint64_t txid = records[idx].txid;
      records.erase(records.begin() + static_cast<std::ptrdiff_t>(idx));
      return "dropped unlink record txid " + std::to_string(txid);
    }
    case FindingKind::kJournalGhostUnlink: {
      if (target.journal == nullptr) return "";
      const std::uint64_t ghost = fs::file_id_for_slot(
          77, ns.slot_count() + 3 + rng.uniform_index(5));
      target.journal->append(fs::OpKind::kUnlink, ghost, 0, 1_MiB, 0);
      return "appended ghost unlink of file " + std::to_string(ghost);
    }
    case FindingKind::kLiveCountDrift: {
      const std::uint64_t bump = 1 + rng.uniform_index(5);
      ns.fsck_set_live_files(ns.live_files() + bump);
      return "bumped live-file counter by " + std::to_string(bump);
    }
    case FindingKind::kCreateCountDrift: {
      if (target.journal == nullptr) return "";
      const std::uint64_t bump = 1 + rng.uniform_index(5);
      ns.fsck_set_total_created(ns.total_created() + bump);
      return "bumped created-file counter by " + std::to_string(bump);
    }
    case FindingKind::kOrphanObjects: {
      const std::size_t i = rng.uniform_index(ns.num_osts());
      fs::Ost& ost = ns.ost(i);
      ost.set_used(ost.used() + 32_MiB);
      ost.fsck_set_object_count(ost.object_count() + 2);
      return "planted orphan space and objects on ost " + std::to_string(i);
    }
    case FindingKind::kLostObjects: {
      std::vector<std::size_t> candidates;
      for (std::size_t i = 0; i < ns.num_osts(); ++i) {
        if (ns.ost(i).used() > 0 || ns.ost(i).object_count() > 0) {
          candidates.push_back(i);
        }
      }
      if (candidates.empty()) return "";
      const std::size_t i = candidates[rng.uniform_index(candidates.size())];
      fs::Ost& ost = ns.ost(i);
      ost.set_used(ost.used() - std::min<Bytes>(ost.used(),
                                                ost.used() / 2 + 1));
      ost.fsck_set_object_count(ost.object_count() -
                                std::min<std::uint64_t>(ost.object_count(), 1));
      return "lost reserved space and an object on ost " + std::to_string(i);
    }
    case FindingKind::kDneLoadDrift: {
      if (target.dne == nullptr) return "";
      const std::size_t mdt = rng.uniform_index(target.dne->mdts());
      target.dne->fsck_set_load(mdt, -(1.0 + rng.uniform()));
      return "drove mdt " + std::to_string(mdt) + " load negative";
    }
  }
  return "";
}

// --- synthetic cluster ------------------------------------------------------

SyntheticFs make_synthetic_fs(const SyntheticFsConfig& cfg) {
  SyntheticFs out;
  Rng rng(cfg.seed);
  block::SsuParams ssu_params;
  ssu_params.raid_groups = cfg.raid_groups;
  out.ssu = std::make_unique<block::Ssu>(ssu_params, 0, rng);
  out.osts.reserve(out.ssu->groups());
  std::vector<fs::Ost*> ost_ptrs;
  for (std::size_t g = 0; g < out.ssu->groups(); ++g) {
    out.osts.emplace_back(static_cast<std::uint32_t>(g), &out.ssu->group(g));
  }
  for (fs::Ost& ost : out.osts) ost_ptrs.push_back(&ost);
  out.ns = std::make_unique<fs::FsNamespace>("synthetic", std::move(ost_ptrs));
  out.journal = std::make_unique<fs::OpLog>();
  fs::DneParams dne_params;
  dne_params.mdts = cfg.mdts;
  out.dne = std::make_unique<fs::DneNamespace>(dne_params);

  sim::SimTime now = 0;
  std::vector<fs::FileId> created;
  for (std::size_t i = 0; i < cfg.files; ++i) {
    now += sim::kSecond;
    const Bytes size = (4 + rng.uniform_index(61)) * 1_MiB;
    const auto project = static_cast<std::uint32_t>(rng.uniform_index(4));
    const fs::FileId id = out.ns->create_file(project, size, now, rng);
    if (id == fs::kNoFile) continue;
    out.journal->append(fs::OpKind::kCreate, id, project, size, now);
    out.dne->account(project, fs::MetaOp::kCreate);
    created.push_back(id);
  }
  for (fs::FileId id : created) {
    if (!rng.chance(cfg.churn)) continue;
    now += sim::kSecond;
    const fs::FileRecord& rec = out.ns->file(id);
    const std::uint32_t project = rec.project;
    const Bytes size = rec.size;
    out.ns->unlink(id, now);
    out.journal->append(fs::OpKind::kUnlink, id, project, size, now);
    out.dne->account(project, fs::MetaOp::kUnlink);
  }
  out.journal->commit(out.journal->last_txid());
  return out;
}

}  // namespace spider::tools
