// Lookahead extraction for the sharded engine (sim/sharded_sim.hpp).
//
// Conservative parallel simulation needs one number from the network
// models: the minimum latency any event can incur crossing from one
// failure/routing domain to another. Nothing a shard does during an epoch
// of that width can be due on another shard before the epoch ends, so the
// engine never rolls back. The floors live here, next to the models that
// justify them:
//
//   * Titan's Gemini torus moves a packet in ~100ns per hop, and distinct
//     domains are at least one hop apart.
//   * SION's FDR InfiniBand switches add a few hundred ns per crossing;
//     an inter-zone path is router -> leaf -> core -> leaf -> server.
//   * An LNET router bridging torus and fabric adds packet-forwarding work
//     on the order of a microsecond.
//
// The latency floors alone give sub-microsecond epochs — correct but
// barrier-dominated. Bulk I/O gives much better lookahead for free: a
// domain crossing carries at least an RPC's worth of bytes, and the wire
// time of the minimum transfer (bytes / port bandwidth) is latency the
// receiver provably cannot beat. cross_zone_lookahead() folds that in, so
// a 1 MiB minimum RPC turns ~1.6us of switch latency into ~175us epochs —
// hundreds of events per shard between barriers.
#pragma once

#include "common/units.hpp"
#include "sim/time.hpp"

namespace spider::net {

class Torus3D;
class IbFabric;

/// One Gemini torus hop (link traversal + router pass-through).
inline constexpr sim::SimTime kTorusHopLatency = 105 * sim::kNanosecond;
/// One InfiniBand switch crossing (FDR-class cut-through).
inline constexpr sim::SimTime kIbSwitchHopLatency = 200 * sim::kNanosecond;
/// LNET router transit: torus-side receive, credit handling, fabric-side
/// re-issue.
inline constexpr sim::SimTime kLnetRouterTransit = 1 * sim::kMicrosecond;

/// Minimum latency between two distinct torus nodes: one hop. (A torus of
/// one node has no cross-node traffic; the hop floor still applies to any
/// model that calls this, so it is returned unconditionally.)
sim::SimTime min_torus_path_latency(const Torus3D& torus);

/// Minimum latency of an inter-zone fabric path: source leaf, core (when
/// the fabric has one), destination leaf, plus the LNET router transit that
/// bridges compute- and storage-side. Zones on the same leaf still cross
/// that leaf's crossbar once.
sim::SimTime cross_zone_path_latency(const IbFabric& fabric);

/// Wire time of `message` bytes at the fabric's port bandwidth — the floor
/// for any real transfer, independent of congestion.
sim::SimTime serialization_time(const IbFabric& fabric, Bytes message);

/// Conservative lookahead for domains separated by the fabric: switch/router
/// latency floor plus the serialization time of the smallest message a
/// domain crossing can carry. This is what ShardedConfig::lookahead should
/// be for fabric-partitioned scenarios.
sim::SimTime cross_zone_lookahead(const IbFabric& fabric, Bytes min_message);

/// Minimum over every cross-domain channel the center has: torus hops and
/// fabric paths. The safe lookahead when shards mix domain kinds.
sim::SimTime min_lookahead(const Torus3D& torus, const IbFabric& fabric);

}  // namespace spider::net
