file(REMOVE_RECURSE
  "CMakeFiles/spider_workload.dir/workload/analytics.cpp.o"
  "CMakeFiles/spider_workload.dir/workload/analytics.cpp.o.d"
  "CMakeFiles/spider_workload.dir/workload/arrivals.cpp.o"
  "CMakeFiles/spider_workload.dir/workload/arrivals.cpp.o.d"
  "CMakeFiles/spider_workload.dir/workload/characterize.cpp.o"
  "CMakeFiles/spider_workload.dir/workload/characterize.cpp.o.d"
  "CMakeFiles/spider_workload.dir/workload/checkpoint.cpp.o"
  "CMakeFiles/spider_workload.dir/workload/checkpoint.cpp.o.d"
  "CMakeFiles/spider_workload.dir/workload/ior.cpp.o"
  "CMakeFiles/spider_workload.dir/workload/ior.cpp.o.d"
  "CMakeFiles/spider_workload.dir/workload/mixed.cpp.o"
  "CMakeFiles/spider_workload.dir/workload/mixed.cpp.o.d"
  "CMakeFiles/spider_workload.dir/workload/pattern.cpp.o"
  "CMakeFiles/spider_workload.dir/workload/pattern.cpp.o.d"
  "CMakeFiles/spider_workload.dir/workload/s3d.cpp.o"
  "CMakeFiles/spider_workload.dir/workload/s3d.cpp.o.d"
  "CMakeFiles/spider_workload.dir/workload/trace_io.cpp.o"
  "CMakeFiles/spider_workload.dir/workload/trace_io.cpp.o.d"
  "libspider_workload.a"
  "libspider_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spider_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
