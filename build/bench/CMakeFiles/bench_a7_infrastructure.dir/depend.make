# Empty dependencies file for bench_a7_infrastructure.
# This may be replaced when dependencies are built.
