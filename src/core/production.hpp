// ProductionMix: compose a center's production day from the paper's
// workload classes and deploy it onto a ScenarioRunner.
//
// Section II's workload taxonomy as an API: periodic checkpoint writers
// (bandwidth-bound), interactive analytics readers (latency-bound), and
// background noise — the mix a data-centric PFS actually serves. Collects
// per-class outcomes (burst bandwidths, request latencies) so studies like
// bench_s1 and the examples don't re-implement the plumbing.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "core/scenario.hpp"
#include "workload/analytics.hpp"
#include "workload/s3d.hpp"

namespace spider::core {

struct MixOutcome {
  std::size_t bursts_completed = 0;
  Bytes checkpoint_bytes = 0;
  std::vector<double> burst_bandwidths;
  std::vector<double> analytics_latencies_s;
};

class ProductionMix {
 public:
  explicit ProductionMix(double duration_s) : duration_s_(duration_s) {}

  /// Add a periodic checkpointing application; its flows target OSTs
  /// starting at `ost_base` (round-robin over the whole fleet).
  ProductionMix& add_checkpoint_app(const workload::S3dParams& params,
                                    std::size_t ost_base = 0);

  /// Add an interactive analytics stream over `ost_span` OSTs starting at
  /// `ost_base`.
  ProductionMix& add_analytics(const workload::AnalyticsParams& params,
                               std::size_t ost_base = 0,
                               std::size_t ost_span = 64);

  /// Sporadic background bursts (other users), mean gap `mean_gap_s`.
  ProductionMix& add_noise(std::uint32_t clients, Bytes bytes_per_client,
                           double mean_gap_s);

  std::size_t checkpoint_apps() const { return checkpoint_.size(); }
  std::size_t analytics_streams() const { return analytics_.size(); }

  /// Schedule everything onto the runner. The returned outcome object is
  /// filled in as the simulation executes; read it after sim.run().
  std::shared_ptr<MixOutcome> deploy(ScenarioRunner& runner, Rng& rng) const;

 private:
  struct CheckpointSpec {
    workload::S3dParams params;
    std::size_t ost_base;
  };
  struct AnalyticsSpec {
    workload::AnalyticsParams params;
    std::size_t ost_base;
    std::size_t ost_span;
  };
  struct NoiseSpec {
    std::uint32_t clients;
    Bytes bytes_per_client;
    double mean_gap_s;
  };

  double duration_s_;
  std::vector<CheckpointSpec> checkpoint_;
  std::vector<AnalyticsSpec> analytics_;
  std::vector<NoiseSpec> noise_;
};

}  // namespace spider::core
