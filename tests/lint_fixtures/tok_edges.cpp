// Tokenizer edge cases: everything in this file must stay silent under
// every rule, even with the file forced sim-critical.
//
// - rule triggers quoted inside a raw string
// - rule triggers inside a block comment that spans lines
// - rule triggers inside an `#if 0` region
// - digit separators, which a naive lexer reads as char-literal openers
//   (blanking the rest of the line — including real triggers after them)
namespace fixture {

const char* kDoc = R"doc(
  std::unordered_map<int, int> quoted_in_raw_string;
  for (const auto& kv : quoted_in_raw_string) rand();
)doc";

/* A block comment spanning rule triggers:
   std::unordered_set<int> commented_out;
   std::random_device rd;
*/

#if 0
inline int dead_code() {
  std::srand(42);
  return std::rand();
}
#endif

// The digit separators below once lexed as char literals, blanking the
// trailing `schedule` comment test into code. They are plain pp-numbers.
inline long long big() { return 1'000'000; }
inline char u8lit() { return 'x'; }

}  // namespace fixture
