// Full fair-lio parameter-space sweep (Section III-B).
//
// "The benchmark tool is synthetic, performing a parameter space
// exploration over several variables, including I/O request size, queue
// depth, read to write ratio, I/O duration, and I/O mode (i.e. sequential
// or random)." This orchestrator runs the cross product against a disk or
// RAID group — the exact deliverable vendors executed for the RFP — with
// optional parallel execution across sweep points (each point gets a
// deterministic per-point RNG, so parallel and serial runs are
// bit-identical).
#pragma once

#include <cstdint>
#include <vector>

#include "block/fairlio.hpp"
#include "common/table.hpp"

namespace spider::block {

struct SweepConfig {
  std::vector<Bytes> request_sizes{4_KiB, 64_KiB, 512_KiB, 1_MiB, 4_MiB};
  std::vector<unsigned> queue_depths{1, 4, 16};
  std::vector<double> write_fractions{0.0, 0.6, 1.0};
  std::vector<IoMode> modes{IoMode::kSequential, IoMode::kRandom};
  double duration_s = 2.0;
  std::uint64_t seed = 1;
  /// Worker threads (1 = serial; results identical either way).
  std::size_t threads = 1;
};

struct SweepPoint {
  FairLioConfig config;
  FairLioResult result;
};

/// Run the cross-product sweep against one disk.
std::vector<SweepPoint> run_sweep(const Disk& disk, const SweepConfig& cfg);
/// Run the cross-product sweep against one RAID group.
std::vector<SweepPoint> run_sweep(const Raid6Group& group,
                                  const SweepConfig& cfg);

/// Render sweep results as the vendor-response table.
Table sweep_table(const std::vector<SweepPoint>& points, std::string title);

/// Summary statistics the RFP evaluation keyed on.
struct SweepSummary {
  Bandwidth best_sequential = 0.0;
  Bandwidth best_random = 0.0;
  /// random(1 MiB)/sequential at queue depth 1, read — the paper's
  /// calibration metric.
  double random_fraction_1mb = 0.0;
  /// Worst p99 latency anywhere in the space.
  double worst_p99_s = 0.0;
};
SweepSummary summarize_sweep(const std::vector<SweepPoint>& points);

}  // namespace spider::block
