// Fixture for spiderlint rule L13: tools/spiderfsck IS the repair context —
// every call here is legitimate by location. Must NOT be flagged.
#include "fs/repairable.hpp"

namespace fixture {

void repair_counts(Table& t) {
  t.fsck_set_count(42);
  t.scrub_reset();
}

}  // namespace fixture
