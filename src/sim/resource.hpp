// Capacitated resources, flow paths, and the max-min fair-share solver.
//
// spiderpfs models the I/O stack (Lesson 12: "build the performance profile
// for each layer") as a network of capacitated resources: disks, RAID
// groups, controllers, OSS nodes, InfiniBand links, LNET routers, torus
// links, and client injection ports. A *flow* is a transfer that traverses
// an ordered list of resources; hop *cost* expresses efficiency — e.g. a
// random-I/O flow consumes 4-5x disk capacity per delivered byte (the paper:
// a single disk achieves 20-25% of peak under 1 MB random I/O), and a
// small-transfer flow is additionally limited by a per-flow rate cap from
// RPC overhead.
//
// Rates are assigned by progressive (water-filling) max-min fairness with
// per-hop costs and per-flow caps, the standard flow-level model of
// bandwidth sharing. The same solver backs both the static
// SteadyStateSolver and the dynamic FlowNetwork.
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <string>
#include <vector>

namespace spider::sim {

using ResourceId = std::uint32_t;

inline constexpr double kUnbounded = std::numeric_limits<double>::infinity();

/// One hop of a flow path: the resource it crosses and how many units of
/// that resource's capacity one delivered unit consumes (cost >= 0).
struct PathHop {
  ResourceId resource;
  double cost = 1.0;
};

/// Solver view of one flow.
struct SolverFlow {
  std::span<const PathHop> path;
  /// The flow's own maximum rate (client-side limit); kUnbounded if none.
  double rate_cap = kUnbounded;
};

/// Result of one max-min solve.
struct SolveResult {
  std::vector<double> rate;         ///< per flow, units/sec
  std::vector<double> utilization;  ///< per resource, in [0, 1]
};

/// Progressive-filling max-min allocation.
///
/// capacity[r] is resource r's capacity in units/sec; a zero-capacity
/// resource pins every flow crossing it (with positive cost) to rate 0.
/// Flows with empty paths get min(rate_cap, 0 if cap unbounded) — callers
/// should give pathless flows a finite cap.
SolveResult solve_max_min(std::span<const double> capacity,
                          std::span<const SolverFlow> flows);

}  // namespace spider::sim
