#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "infra/config_mgmt.hpp"
#include "infra/gedi.hpp"

namespace spider::infra {
namespace {

// --- GeDI ---------------------------------------------------------------------

GediProvisioner spider_gedi() {
  GediProvisioner gedi;
  NodeImage image;
  image.name = "spider-oss";
  image.version = 3;
  gedi.set_image(image);
  // The paper's examples: network config, srp_daemon, subnet manager —
  // registered out of order to exercise the integer-order contract.
  gedi.add_boot_script({30, "S30-subnet-manager", {"/etc/opensm/opensm.conf"}, 1.0});
  gedi.add_boot_script({10, "S10-network", {"/etc/sysconfig/network"}, 0.5});
  gedi.add_boot_script({20, "S20-srp-daemon", {"/etc/srp_daemon.conf"}, 0.5});
  return gedi;
}

TEST(Gedi, ScriptsRunInIntegerOrder) {
  const auto gedi = spider_gedi();
  Rng rng(1);
  const auto rec = gedi.boot_node(17, rng);
  ASSERT_EQ(rec.script_order.size(), 3u);
  EXPECT_EQ(rec.script_order[0], "S10-network");
  EXPECT_EQ(rec.script_order[1], "S20-srp-daemon");
  EXPECT_EQ(rec.script_order[2], "S30-subnet-manager");
}

TEST(Gedi, ConfigFilesGeneratedBeforeServicesStart) {
  const auto gedi = spider_gedi();
  Rng rng(2);
  const auto rec = gedi.boot_node(0, rng);
  EXPECT_EQ(rec.generated_files.size(), 3u);
  EXPECT_EQ(rec.image_version, 3u);
}

TEST(Gedi, BootTimeComposition) {
  const auto gedi = spider_gedi();
  Rng rng(3);
  const auto rec = gedi.boot_node(0, rng);
  // POST (~45) + 2 GiB image at 100 MB/s (~21.5) + kernel (20) + scripts (2).
  EXPECT_GT(rec.boot_time_s, 80.0);
  EXPECT_LT(rec.boot_time_s, 100.0);
}

TEST(Gedi, SameImageEveryBootIsRepeatable) {
  const auto gedi = spider_gedi();
  Rng a(4), b(4);
  const auto r1 = gedi.boot_node(5, a);
  const auto r2 = gedi.boot_node(5, b);
  EXPECT_EQ(r1.script_order, r2.script_order);
  EXPECT_DOUBLE_EQ(r1.boot_time_s, r2.boot_time_s);
}

TEST(Gedi, FleetBootScalesInWaves) {
  const auto gedi = spider_gedi();
  const double one_wave = gedi.fleet_boot_time_s(64);
  const double two_waves = gedi.fleet_boot_time_s(128);
  const double still_two = gedi.fleet_boot_time_s(100);
  EXPECT_GT(two_waves, one_wave);
  EXPECT_DOUBLE_EQ(two_waves, still_two);
  EXPECT_DOUBLE_EQ(gedi.fleet_boot_time_s(0), 0.0);
}

TEST(Gedi, DisklessSavingsScaleWithFleet) {
  // Spider II's server plane: 288 OSS + 440 routers + 4 MDS class nodes.
  const auto savings = diskless_savings(288 + 440 + 4);
  EXPECT_GT(savings.per_node_acquisition, 500.0);
  EXPECT_NEAR(savings.fleet_acquisition,
              savings.per_node_acquisition * 732.0, 1e-6);
  EXPECT_GT(savings.fleet_annual_maintenance, 0.0);
}

TEST(Gedi, DisklessMttrIsOneBoot) {
  const auto gedi = spider_gedi();
  const auto mttr = repair_mttr(gedi);
  EXPECT_LT(mttr.diskless_s, 120.0);
  EXPECT_GT(mttr.diskful_s, mttr.diskless_s + 3000.0);
}

// --- configuration management ---------------------------------------------------

TEST(ConfigMgmt, SpecVersionsAdvance) {
  ConfigSpec spec;
  spec.set("lustre/version", "2.4.1");
  spec.set("lnet/networks", "o2ib0");
  EXPECT_EQ(spec.entries(), 2u);
  EXPECT_EQ(spec.version(), 2u);
  ASSERT_NE(spec.get("lustre/version"), nullptr);
  EXPECT_EQ(*spec.get("lustre/version"), "2.4.1");
  EXPECT_EQ(spec.get("missing"), nullptr);
}

TEST(ConfigMgmt, FreshNodesDriftUntilConverged) {
  ConfigManager mgr("spider-oss", 8);
  mgr.spec().set("a", "1");
  mgr.spec().set("b", "2");
  auto report = mgr.audit();
  EXPECT_EQ(report.drifted_nodes, 8u);
  EXPECT_EQ(report.drifted_entries, 16u);
  EXPECT_EQ(mgr.converge(), 16u);
  report = mgr.audit();
  EXPECT_EQ(report.drifted_nodes, 0u);
}

TEST(ConfigMgmt, AuditCatchesOutOfBandMutation) {
  ConfigManager mgr("spider-routers", 4);
  mgr.spec().set("lnet/routes", "o2ib0 1");
  mgr.converge();
  mgr.node(2).mutate("lnet/routes", "hand-edited");
  const auto report = mgr.audit();
  EXPECT_EQ(report.drifted_nodes, 1u);
  EXPECT_EQ(report.drifted_entries, 1u);
}

TEST(ConfigMgmt, StagedRolloutSucceedsAndConvergesFleet) {
  ConfigManager mgr("spider-oss", 100);
  mgr.spec().set("kernel", "2.6.32-279");
  mgr.converge();
  ConfigSpec next = mgr.spec();
  next.set("kernel", "2.6.32-358");
  Rng rng(5);
  const auto result = mgr.staged_rollout(next, 0.05, /*failure_prob=*/0.0, rng);
  EXPECT_TRUE(result.success);
  EXPECT_FALSE(result.rolled_back);
  EXPECT_EQ(result.converged_nodes, 100u);
  EXPECT_EQ(mgr.audit().drifted_nodes, 0u);
  EXPECT_EQ(*mgr.spec().get("kernel"), "2.6.32-358");
}

TEST(ConfigMgmt, CanaryFailureRollsBackWithoutFleetExposure) {
  ConfigManager mgr("spider-oss", 100);
  mgr.spec().set("kernel", "good");
  mgr.converge();
  ConfigSpec bad = mgr.spec();
  bad.set("kernel", "bad");
  Rng rng(6);
  const auto result = mgr.staged_rollout(bad, 0.05, /*failure_prob=*/1.0, rng);
  EXPECT_FALSE(result.success);
  EXPECT_TRUE(result.rolled_back);
  // Spec unchanged; no node drifts from the good spec.
  EXPECT_EQ(*mgr.spec().get("kernel"), "good");
  EXPECT_EQ(mgr.audit().drifted_nodes, 0u);
}

TEST(ConfigMgmt, CentralizationEliminatesInconsistencyAndEffort) {
  Rng rng(7);
  const auto cmp = compare_centralization(/*fleets=*/5, /*edits=*/200,
                                          /*miss_prob=*/0.03, rng);
  EXPECT_EQ(cmp.specs_centralized, 1u);
  EXPECT_EQ(cmp.specs_separate, 5u);
  EXPECT_EQ(cmp.edits_separate, 5.0 * cmp.edits_centralized);
  EXPECT_GT(cmp.inconsistent_entries, 0u);  // separate instances drift
}

class CentralizationP : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CentralizationP, MoreFleetsMeansMoreDrift) {
  Rng rng(GetParam());
  const auto few = compare_centralization(2, 300, 0.05, rng);
  Rng rng2(GetParam());
  const auto many = compare_centralization(8, 300, 0.05, rng2);
  EXPECT_GE(many.inconsistent_entries, few.inconsistent_entries);
  EXPECT_GT(many.edits_separate, few.edits_separate);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CentralizationP, ::testing::Range<std::size_t>(0, 5));

}  // namespace
}  // namespace spider::infra
