// spiderlint rules: project-specific determinism & unit-safety checks.
//
// The simulator's claims (fair-share splits, congestion envelopes, slow-disk
// culling distributions) are only meaningful if runs are reproducible.
// PR 1 made divergence observable (sim/replay.hpp); these rules make the
// usual sources of divergence unmergeable:
//
//   L1 unordered-iteration  (error)   no unordered_map/unordered_set in
//       sim-critical directories (src/sim, src/block, src/fs, src/net):
//       iteration order — and therefore float-sum order — depends on
//       hash/rehash history. Suppress: // spiderlint: ordered-ok
//   L2 nondet-source        (error)   no wall-clock or ambient randomness
//       anywhere in src/ (std::random_device, rand, time(), system_clock,
//       mt19937 outside common/rng). Suppress: // spiderlint: nondet-ok
//   L3 raw-unit-double      (warning) a raw `double` in a public header
//       whose name carries a unit (*_bytes, *_seconds, *_bw, latency*)
//       must use the units.hpp vocabulary types instead.
//       Suppress: // spiderlint: units-ok
//   L4 replay-site          (error)   bare schedule()/reschedule() entry
//       points must carry the scheduling site (std::source_location or a
//       site hash) so replay divergence stays localizable.
//       Suppress: // spiderlint: site-ok
//
// A suppression is a trailing comment on the flagged line (or a comment-only
// line directly above): `// spiderlint: <token> — <reason>`. Reasons are
// required by policy (docs/static-analysis.md), not by the tool.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "tools/lint/scan.hpp"

namespace spider::lint {

enum class Severity { kWarning, kError };

std::string_view to_string(Severity s);

/// One rule violation.
struct Finding {
  std::string rule;        ///< "L1".."L4"
  Severity severity = Severity::kError;
  std::string file;
  std::size_t line = 0;    ///< 1-based
  std::size_t column = 0;  ///< 1-based
  std::string message;
  std::string hint;        ///< fix-it hint
};

/// Static metadata for one rule.
struct RuleInfo {
  std::string_view id;
  std::string_view name;
  Severity severity;
  std::string_view summary;
  std::string_view suppression;  ///< suppression token, e.g. "ordered-ok"
  std::string_view hint;
};

/// All rules, in id order.
const std::vector<RuleInfo>& rules();
/// Lookup by id ("L1"); nullptr when unknown.
const RuleInfo* rule(std::string_view id);

/// Which rules run.
struct RuleSet {
  bool l1 = true;
  bool l2 = true;
  bool l3 = true;
  bool l4 = true;
  bool enabled(std::string_view id) const;
};

/// How a file is scoped for rule applicability.
struct FileClass {
  bool in_src = false;        ///< under src/: L2, L4 apply
  bool sim_critical = false;  ///< under src/{sim,block,fs,net}: L1 applies
  bool is_header = false;     ///< *.hpp/*.h: L3 applies
  bool rng_home = false;      ///< src/common/rng.*: mt19937 exempt from L2
};

/// Classify a path by its directory components and extension.
FileClass classify_path(std::string_view path);

/// Run the enabled rules over one scanned file. `paired_header`, when given,
/// seeds L1's identifier tracking with the file's own header (so a .cpp
/// iterating a member declared unordered in its .hpp is caught).
std::vector<Finding> lint_file(const SourceFile& file, const FileClass& cls,
                               const SourceFile* paired_header = nullptr,
                               const RuleSet& enabled = {});

}  // namespace spider::lint
