#include "tools/lint/include_graph.hpp"

#include <algorithm>
#include <functional>

#include "tools/lint/token.hpp"

namespace spider::lint {

std::vector<IncludeEdge> quoted_includes(const SourceFile& file) {
  std::vector<IncludeEdge> edges;
  for (std::size_t l = 0; l < file.lines.size(); ++l) {
    const Line& line = file.lines[l];
    if (pp_directive(line) != "include") continue;
    // The scanner blanked the include string's contents in `code` but kept
    // the raw text; read the quoted spelling from `raw`.
    const std::size_t open = line.raw.find('"');
    if (open == std::string::npos) continue;  // <system> include
    const std::size_t close = line.raw.find('"', open + 1);
    if (close == std::string::npos) continue;
    edges.push_back(
        IncludeEdge{line.raw.substr(open + 1, close - open - 1), l});
  }
  return edges;
}

std::string include_key(std::string_view path) {
  // Find the last "/src/" (or leading "src/") component and return what
  // follows it.
  std::size_t best = std::string_view::npos;
  std::size_t pos = path.find("src");
  while (pos != std::string_view::npos) {
    const bool starts = pos == 0 || path[pos - 1] == '/';
    const bool ends = pos + 3 < path.size() && path[pos + 3] == '/';
    if (starts && ends) best = pos + 4;
    pos = path.find("src", pos + 1);
  }
  if (best == std::string_view::npos) return {};
  return std::string(path.substr(best));
}

int layer_of(std::string_view key) {
  const std::size_t slash = key.find('/');
  const std::string_view top =
      slash == std::string_view::npos ? key : key.substr(0, slash);
  if (top == "common") return 0;
  if (top == "sim") return 1;
  if (top == "block" || top == "fs" || top == "net") return 2;
  if (top == "workload") return 3;
  if (top == "core") return 4;
  if (top == "tools" || top == "infra") return 5;
  return -1;
}

std::string_view layer_name(int layer) {
  switch (layer) {
    case 0: return "common";
    case 1: return "sim";
    case 2: return "block/fs/net";
    case 3: return "workload";
    case 4: return "core";
    case 5: return "tools/infra";
    default: return "unlayered";
  }
}

void IncludeGraph::add_file(const std::string& key, const SourceFile* source) {
  if (key.empty() || source == nullptr) return;
  files_[key] = source;
}

std::vector<std::vector<std::string>> IncludeGraph::cycles() const {
  // Iterative DFS with tri-color marking; a back edge to a grey node names a
  // cycle. Each strongly-entangled set may surface several times via
  // different back edges; dedupe by the cycle's canonical rotation.
  std::vector<std::vector<std::string>> out;
  std::map<std::string, std::vector<std::string>> adj;
  for (const auto& [key, src] : files_) {
    std::vector<std::string> targets;
    for (const IncludeEdge& e : quoted_includes(*src)) {
      if (files_.count(e.target) > 0) targets.push_back(e.target);
    }
    adj[key] = std::move(targets);
  }
  std::map<std::string, int> color;  // 0 white, 1 grey, 2 black
  std::vector<std::string> path;

  std::vector<std::vector<std::string>> seen_canonical;
  auto canonical = [](std::vector<std::string> cycle) {
    // cycle is [a, ..., a]; drop the closing repeat, rotate smallest first.
    cycle.pop_back();
    const auto min_it = std::min_element(cycle.begin(), cycle.end());
    std::rotate(cycle.begin(), min_it, cycle.end());
    return cycle;
  };

  std::function<void(const std::string&)> dfs = [&](const std::string& node) {
    color[node] = 1;
    path.push_back(node);
    for (const std::string& next : adj[node]) {
      if (color[next] == 1) {
        // Found a cycle: path suffix from `next` to node, closed with next.
        auto it = std::find(path.begin(), path.end(), next);
        std::vector<std::string> cycle(it, path.end());
        cycle.push_back(next);
        auto canon = canonical(cycle);
        if (std::find(seen_canonical.begin(), seen_canonical.end(), canon) ==
            seen_canonical.end()) {
          seen_canonical.push_back(canon);
          out.push_back(std::move(cycle));
        }
      } else if (color[next] == 0) {
        dfs(next);
      }
    }
    path.pop_back();
    color[node] = 2;
  };
  for (const auto& [key, targets] : adj) {
    (void)targets;
    if (color[key] == 0) dfs(key);
  }
  return out;
}

}  // namespace spider::lint
