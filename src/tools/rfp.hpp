// RFP / SOW evaluation machinery (Section III, Lessons 3-5).
//
// The Spider II Statement of Work defined the SSU as "the unit of
// configuration, pricing, benchmarking, and integration", set performance
// targets (1 TB/s sequential, 240 GB/s random, capacity, a 5% variance
// envelope), and invited both "block storage" and "appliance" response
// models. Lesson 5: "The evaluation criteria must structure the evaluation
// of all SOW requirements in a weighted manner such that every element of
// the vendor proposal is correctly considered in the context of the entire
// solution."
//
// This module turns that into code: SOW targets, vendor proposals
// (characterized per-SSU by the fair-lio numbers), a weighted scoring
// model across technical/performance/schedule/cost, response-model risk
// handling (the block model shifts integration risk to the buyer — which
// OLCF accepted, and the model prices), and best-value selection.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/units.hpp"

namespace spider::tools {

struct SowTargets {
  Bandwidth sequential_bw = 1.0 * kTBps;
  Bandwidth random_bw = 240.0 * kGBps;
  Bytes capacity = 32_PB;
  /// Acceptance variance envelope across RAID groups.
  double variance_envelope = 0.05;
  /// Total budget, in arbitrary cost units.
  double budget = 60.0;
  /// Required delivery, months from award.
  double required_schedule_months = 18.0;
};

enum class ResponseModel {
  kBlockStorage,  ///< buyer integrates storage, servers, network (OLCF's pick)
  kAppliance,     ///< vendor-integrated turnkey solution
};

struct Proposal {
  std::string vendor;
  ResponseModel model = ResponseModel::kBlockStorage;
  // Per-SSU characteristics, as benchmarked with the released suite.
  Bandwidth ssu_sequential_bw = 28.0 * kGBps;
  Bandwidth ssu_random_bw = 7.0 * kGBps;
  Bytes ssu_capacity = 896_TB;
  double price_per_ssu = 1.0;
  /// Measured variance across RAID groups in the benchmark response.
  double measured_variance = 0.05;
  double schedule_months = 15.0;
  /// Past performance / corporate capability, 0..1 (Lesson 5's criteria).
  double past_performance = 0.8;
};

struct EvaluationWeights {
  double technical = 0.30;
  double performance = 0.30;
  double schedule = 0.15;
  double cost = 0.25;
  /// Buyer-side integration cost for a block-storage response, as a
  /// fraction of hardware cost (the risk OLCF knowingly accepted).
  double block_integration_overhead = 0.06;
  /// Vendor margin typically embedded in appliance pricing.
  double appliance_premium = 0.18;
};

struct ProposalScore {
  std::string vendor;
  std::size_t ssus_needed = 0;
  double hardware_cost = 0.0;
  double total_cost = 0.0;  ///< including model-specific overheads
  bool meets_targets = false;
  bool within_budget = false;
  double technical = 0.0;
  double performance = 0.0;
  double schedule = 0.0;
  double cost = 0.0;
  double total = 0.0;
  std::vector<std::string> notes;
};

/// Score one proposal against the SOW.
ProposalScore evaluate_proposal(const SowTargets& sow, const Proposal& p,
                                const EvaluationWeights& w = {});

/// Best-value selection over all proposals; returns the winning index (or
/// SIZE_MAX when nothing qualifies) and, optionally, every score.
std::size_t best_value(std::span<const Proposal> proposals,
                       const SowTargets& sow,
                       const EvaluationWeights& w = {},
                       std::vector<ProposalScore>* scores = nullptr);

}  // namespace spider::tools
