src/CMakeFiles/spider_fs.dir/fs/journal.cpp.o: \
 /root/repo/src/fs/journal.cpp /usr/include/stdc-predef.h \
 /root/repo/src/fs/journal.hpp
