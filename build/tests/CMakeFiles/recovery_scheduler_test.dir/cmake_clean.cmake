file(REMOVE_RECURSE
  "CMakeFiles/recovery_scheduler_test.dir/recovery_scheduler_test.cpp.o"
  "CMakeFiles/recovery_scheduler_test.dir/recovery_scheduler_test.cpp.o.d"
  "recovery_scheduler_test"
  "recovery_scheduler_test.pdb"
  "recovery_scheduler_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recovery_scheduler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
