#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <barrier>
#include <cmath>
#include <functional>
#include <mutex>
#include <numeric>
#include <set>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/distributions.hpp"
#include "common/histogram.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/units.hpp"

namespace spider {
namespace {

TEST(Units, BinaryAndDecimalLiterals) {
  EXPECT_EQ(1_KiB, 1024u);
  EXPECT_EQ(1_MiB, 1024u * 1024u);
  EXPECT_EQ(1_GiB, 1024ull * 1024 * 1024);
  EXPECT_EQ(1_MB, 1000000u);
  EXPECT_EQ(2_TB, 2000000000000ull);
  EXPECT_DOUBLE_EQ(to_gbps(1.0 * kTBps), 1000.0);
  EXPECT_DOUBLE_EQ(to_pb(1000_TB), 1.0);
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIndexUnbiasedCoverage) {
  Rng rng(9);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 100000; ++i) ++counts[rng.uniform_index(10)];
  for (int c : counts) {
    EXPECT_GT(c, 9000);
    EXPECT_LT(c, 11000);
  }
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalMomentsRoughlyCorrect) {
  Rng rng(13);
  RunningStats rs;
  for (int i = 0; i < 100000; ++i) rs.add(rng.normal(5.0, 2.0));
  EXPECT_NEAR(rs.mean(), 5.0, 0.05);
  EXPECT_NEAR(rs.stddev(), 2.0, 0.05);
}

TEST(Rng, ExponentialMean) {
  Rng rng(17);
  RunningStats rs;
  for (int i = 0; i < 100000; ++i) rs.add(rng.exponential(4.0));
  EXPECT_NEAR(rs.mean(), 0.25, 0.01);
}

TEST(Rng, ForkIsIndependentAndDeterministic) {
  Rng a(5);
  Rng child1 = a.fork(1);
  Rng b(5);
  Rng child2 = b.fork(1);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(child1(), child2());
}

TEST(Rng, ChanceExtremes) {
  Rng rng(19);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Distributions, ParetoSamplesAboveScale) {
  Rng rng(23);
  Pareto p(1.5, 2.0);
  for (int i = 0; i < 10000; ++i) EXPECT_GE(p.sample(rng), 2.0);
}

TEST(Distributions, ParetoEmpiricalMeanMatchesAnalytic) {
  Rng rng(29);
  Pareto p(2.5, 1.0);
  RunningStats rs;
  for (int i = 0; i < 200000; ++i) rs.add(p.sample(rng));
  EXPECT_NEAR(rs.mean(), p.mean(), 0.05 * p.mean());
}

TEST(Distributions, ParetoInfiniteMeanForSmallAlpha) {
  Pareto p(0.9, 1.0);
  EXPECT_TRUE(std::isinf(p.mean()));
}

TEST(Distributions, ParetoRejectsBadParams) {
  EXPECT_THROW(Pareto(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(Pareto(1.0, -1.0), std::invalid_argument);
}

TEST(Distributions, BoundedParetoStaysInBounds) {
  Rng rng(31);
  BoundedPareto p(1.2, 1.0, 100.0);
  for (int i = 0; i < 20000; ++i) {
    const double x = p.sample(rng);
    EXPECT_GE(x, 1.0);
    EXPECT_LE(x, 100.0);
  }
}

TEST(Distributions, LogNormalMeanMatchesAnalytic) {
  Rng rng(37);
  LogNormal ln(0.5, 0.4);
  RunningStats rs;
  for (int i = 0; i < 200000; ++i) rs.add(ln.sample(rng));
  EXPECT_NEAR(rs.mean(), ln.mean(), 0.03 * ln.mean());
}

TEST(Distributions, ZipfPrefersLowRanks) {
  Rng rng(41);
  Zipf z(100, 1.2);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 100000; ++i) ++counts[z.sample(rng)];
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[10], counts[99]);
}

TEST(Distributions, DiscreteMixtureProbabilities) {
  const double weights[] = {1.0, 3.0};
  DiscreteMixture mix({weights, 2});
  EXPECT_NEAR(mix.probability(0), 0.25, 1e-12);
  EXPECT_NEAR(mix.probability(1), 0.75, 1e-12);
  Rng rng(43);
  int first = 0;
  for (int i = 0; i < 40000; ++i) {
    if (mix.sample(rng) == 0) ++first;
  }
  EXPECT_NEAR(first / 40000.0, 0.25, 0.02);
}

TEST(Distributions, EmpiricalSamplesFromValues) {
  Rng rng(47);
  Empirical e({1.0, 2.0, 4.0});
  for (int i = 0; i < 1000; ++i) {
    const double v = e.sample(rng);
    EXPECT_TRUE(v == 1.0 || v == 2.0 || v == 4.0);
  }
}

TEST(Stats, WelfordMatchesDirectComputation) {
  Rng rng(53);
  std::vector<double> xs;
  RunningStats rs;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-5, 5);
    xs.push_back(x);
    rs.add(x);
  }
  const double mean = std::accumulate(xs.begin(), xs.end(), 0.0) / 1000.0;
  double var = 0.0;
  for (double x : xs) var += (x - mean) * (x - mean);
  var /= 999.0;
  EXPECT_NEAR(rs.mean(), mean, 1e-9);
  EXPECT_NEAR(rs.variance(), var, 1e-9);
}

TEST(Stats, MergeEqualsSequential) {
  Rng rng(59);
  RunningStats all, a, b;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.normal();
    all.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(Stats, PercentileInterpolation) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100.0), 4.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50.0), 2.5);
}

TEST(Stats, PercentilesBatchMatchesSingle) {
  const std::vector<double> v{5.0, 1.0, 9.0, 3.0, 7.0};
  const std::vector<double> ps{10.0, 50.0, 90.0};
  const auto batch = percentiles(v, ps);
  for (std::size_t i = 0; i < ps.size(); ++i) {
    EXPECT_DOUBLE_EQ(batch[i], percentile(v, ps[i]));
  }
}

TEST(Stats, SpreadAndImbalance) {
  const std::vector<double> v{90.0, 100.0, 110.0};
  EXPECT_NEAR(spread_fraction(v), 0.2, 1e-12);
  EXPECT_NEAR(imbalance_of(v), 0.1, 1e-12);
  EXPECT_DOUBLE_EQ(spread_fraction({}), 0.0);
}

TEST(Histogram, LinearBinningTracksOutOfRangeExplicitly) {
  LinearHistogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(9.5);
  h.add(-100.0);  // below lo: underflow, NOT folded into bin 0
  h.add(100.0);   // at/above hi: overflow, NOT folded into bin 9
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(9), 1u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.total(), 4u);  // totals still conserved
  // hi itself is outside the half-open range.
  h.add(10.0);
  EXPECT_EQ(h.overflow(), 2u);
}

TEST(Histogram, LinearFractionBetweenIgnoresOutOfRangeMass) {
  // Regression: out-of-range samples used to clamp into the edge bins and
  // masquerade as in-range mass, skewing fraction_between (and the figure
  // regeneration built on it).
  LinearHistogram h(0.0, 10.0, 10);
  h.add(2.5);
  h.add(-1000.0);
  h.add(1000.0);
  EXPECT_NEAR(h.fraction_between(0.0, 10.0), 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(h.fraction_between(0.0, 1.0), 0.0, 1e-12);
  EXPECT_NEAR(h.fraction_between(9.0, 10.0), 0.0, 1e-12);
}

TEST(Histogram, ConstructorValidatesBeforeComputingWidth) {
  // bins == 0 must throw, not divide by zero while initializing width_.
  EXPECT_THROW(LinearHistogram(0.0, 1.0, 0), std::invalid_argument);
  EXPECT_THROW(LinearHistogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(LinearHistogram(2.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Log2Histogram(5, 5), std::invalid_argument);
}

TEST(Histogram, Log2OutOfRangeAndNonPositive) {
  Log2Histogram h(4, 10);  // bins cover [16, 1024)
  h.add(20.0);             // in range: 2^4 bin
  h.add(0.0);              // no binary exponent: underflow
  h.add(-5.0);             // negative: underflow
  h.add(1.0);              // 2^0 < 2^4: underflow
  h.add(4096.0);           // 2^12 >= 2^10: overflow
  EXPECT_EQ(h.count_for_exp(4), 1u);
  EXPECT_EQ(h.count_for_exp(9), 0u);  // overflow no longer folded in
  EXPECT_EQ(h.underflow(), 3u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.total(), 5u);
  // to_string reports the out-of-range mass so it can't silently vanish.
  const std::string s = h.to_string();
  EXPECT_NE(s.find("[-inf, 2^4): 3"), std::string::npos);
  EXPECT_NE(s.find("[2^10, inf): 1"), std::string::npos);
}

TEST(Histogram, Log2FractionBelowCountsUnderflow) {
  Log2Histogram h(4, 10);
  h.add(1.0);     // underflow
  h.add(20.0);    // 2^4
  h.add(100.0);   // 2^6
  h.add(4096.0);  // overflow
  // Below 64 = 2^6: the underflow sample and the 2^4 sample.
  EXPECT_NEAR(h.fraction_below(64.0), 2.0 / 4.0, 1e-12);
}

TEST(Histogram, Log2FractionBelow) {
  Log2Histogram h(0, 20);
  h.add(2.0);      // 2^1 bin
  h.add(1024.0);   // 2^10 bin
  h.add(1_MiB / 2.0);
  EXPECT_NEAR(h.fraction_below(512.0), 1.0 / 3.0, 1e-12);
  EXPECT_EQ(h.total(), 3u);
  EXPECT_FALSE(h.to_string().empty());
}

TEST(Table, FormatsAndQueriesCells) {
  Table t("demo");
  t.set_columns({"name", "count", "rate"});
  t.set_precision(2, 1);
  t.add_row({std::string("x"), std::int64_t{3}, 1.25});
  EXPECT_EQ(t.rows(), 1u);
  EXPECT_DOUBLE_EQ(t.number_at(0, 1), 3.0);
  EXPECT_DOUBLE_EQ(t.number_at(0, 2), 1.25);
  EXPECT_THROW(t.number_at(0, 0), std::invalid_argument);
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("demo"), std::string::npos);
  EXPECT_NE(os.str().find("1.2"), std::string::npos);
  std::ostringstream csv;
  t.print_csv(csv);
  EXPECT_NE(csv.str().find("x,3,1.2"), std::string::npos);
}

TEST(Table, RejectsWrongArity) {
  Table t;
  t.set_columns({"a", "b"});
  EXPECT_THROW(t.add_row({std::int64_t{1}}), std::invalid_argument);
}

TEST(Parallel, ParallelForCoversAllIndices) {
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(1000, [&](std::size_t i) { hits[i]++; }, 8);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Parallel, ThreadPoolRunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) pool.submit([&count] { ++count; });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(Parallel, InlineWhenSingleThread) {
  int sum = 0;  // no synchronization needed: must run inline
  parallel_for(10, [&](std::size_t i) { sum += static_cast<int>(i); }, 1);
  EXPECT_EQ(sum, 45);
}

TEST(Parallel, ThreadPoolPropagatesTaskException) {
  // Regression: an exception escaping a task used to std::terminate the
  // whole process. Now the first one per batch is rethrown from wait_idle.
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  for (int i = 0; i < 50; ++i) {
    pool.submit([&ran, i] {
      ++ran;
      if (i == 25) throw std::runtime_error("task 25 failed");
    });
  }
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  EXPECT_EQ(ran.load(), 50);  // the failing task didn't kill any worker
}

TEST(Parallel, ThreadPoolErrorIsClearedPerBatch) {
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("first batch"); });
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  // The pool stays usable and the stale error does not resurface.
  std::atomic<int> ok{0};
  for (int i = 0; i < 10; ++i) pool.submit([&ok] { ++ok; });
  EXPECT_NO_THROW(pool.wait_idle());
  EXPECT_EQ(ok.load(), 10);
}

TEST(Parallel, ParallelForPropagatesException) {
  EXPECT_THROW(
      parallel_for(1000, [](std::size_t i) {
        if (i == 123) throw std::invalid_argument("boom");
      }, 8),
      std::invalid_argument);
  // Inline path throws too.
  EXPECT_THROW(
      parallel_for(10, [](std::size_t i) {
        if (i == 3) throw std::invalid_argument("boom");
      }, 1),
      std::invalid_argument);
}

TEST(Parallel, ConsecutiveBatchesReuseTheSameWorkerThreads) {
  // Regression for the pooled fan-out: parallel_for used to spawn (and join)
  // fresh std::threads per call. Every thread a batch runs on must now be
  // either the caller or one of the shared pool's fixed workers — across
  // consecutive batches — which is only possible if batches reuse the pool.
  const std::vector<std::thread::id> workers = shared_pool().worker_ids();
  const std::thread::id caller = std::this_thread::get_id();
  auto run_batch = [] {
    std::mutex mu;
    std::set<std::thread::id> seen;
    // barrier(2) forces two distinct threads to co-run the batch: whichever
    // lane claims index 0 blocks until the other lane claims index 1, so the
    // caller alone can never finish the batch.
    std::barrier sync(2);
    parallel_for(
        2,
        [&](std::size_t) {
          sync.arrive_and_wait();
          std::lock_guard lock(mu);
          seen.insert(std::this_thread::get_id());
        },
        2);
    return seen;
  };
  const std::set<std::thread::id> batch1 = run_batch();
  const std::set<std::thread::id> batch2 = run_batch();
  EXPECT_EQ(batch1.size(), 2u);
  EXPECT_EQ(batch2.size(), 2u);
  for (const auto& seen : {batch1, batch2}) {
    for (const std::thread::id id : seen) {
      if (id == caller) continue;
      EXPECT_TRUE(std::find(workers.begin(), workers.end(), id) !=
                  workers.end())
          << "batch ran on a thread outside the shared pool";
    }
  }
}

TEST(Parallel, WaitIdleCountsFollowUpSubmissions) {
  // wait_idle is counted against submitted-vs-finished totals. A task that
  // submits follow-up work bumps the submitted count before it retires, so
  // wait_idle cannot return in the gap between "queue momentarily empty"
  // and "follow-up enqueued". (Run under sanitizers via the check.sh
  // presets; the counter handoff is the racy window being pinned.)
  ThreadPool pool(2);
  std::atomic<int> runs{0};
  std::function<void(int)> step = [&](int remaining) {
    ++runs;
    if (remaining > 0) {
      pool.submit([&step, remaining] { step(remaining - 1); });
    }
  };
  pool.submit([&step] { step(5); });
  pool.wait_idle();
  EXPECT_EQ(runs.load(), 6);  // the chain ran to completion before return

  // And the pool remains balanced for the next batch.
  pool.submit([&runs] { ++runs; });
  pool.wait_idle();
  EXPECT_EQ(runs.load(), 7);
}

TEST(Parallel, NestedParallelForDoesNotDeadlock) {
  // A worker thread that calls parallel_for runs it inline (waiting on
  // helpers from inside the pool could starve); the caller thread fans out
  // normally. Either way every index runs exactly once.
  std::vector<std::atomic<int>> hits(4 * 8);
  parallel_for(
      4,
      [&](std::size_t outer) {
        parallel_for(
            8, [&, outer](std::size_t inner) { hits[outer * 8 + inner]++; },
            4);
      },
      4);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Parallel, SharedPoolLeavesRoomForTheCaller) {
  // The shared pool is sized hardware_concurrency() - 1 (floor one worker):
  // the caller joins every batch, so workers + caller fill the machine
  // exactly instead of oversubscribing it by one.
  const unsigned hw = std::thread::hardware_concurrency();
  const std::size_t expected = hw > 1 ? hw - 1 : 1;
  EXPECT_EQ(shared_pool().size(), expected);
}

TEST(Parallel, BatchNeverExceedsPoolPlusCaller) {
  // Oversubscription regression: asking for far more lanes than the machine
  // has must clamp to shared_pool().size() + 1 concurrent participants. The
  // per-iteration spin keeps lanes overlapped long enough that an
  // oversubscribed fan-out would be observed by the high-water mark.
  const std::size_t cap = shared_pool().size() + 1;
  std::atomic<std::size_t> active{0};
  std::atomic<std::size_t> high_water{0};
  parallel_for(
      64,
      [&](std::size_t) {
        const std::size_t now = ++active;
        std::size_t seen = high_water.load();
        while (now > seen && !high_water.compare_exchange_weak(seen, now)) {
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        --active;
      },
      cap + 16);  // request far more lanes than can exist
  EXPECT_LE(high_water.load(), cap);
  EXPECT_GE(high_water.load(), 1u);
}

TEST(Parallel, ParallelForDefaultsToAutoFanOut) {
  // threads omitted (0 = auto) still covers every index exactly once.
  std::vector<std::atomic<int>> hits(256);
  parallel_for(256, [&](std::size_t i) { hits[i]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Parallel, SubmitToPinsTasksToOneWorkerInFifoOrder) {
  ThreadPool pool(3);
  const std::vector<std::thread::id> workers = pool.worker_ids();
  ASSERT_EQ(workers.size(), 3u);
  std::mutex mu;
  std::vector<int> order;
  std::set<std::thread::id> ran_on;
  for (int i = 0; i < 20; ++i) {
    pool.submit_to(1, [&, i] {
      std::lock_guard lock(mu);
      order.push_back(i);
      ran_on.insert(std::this_thread::get_id());
    });
  }
  pool.wait_idle();
  // All on worker 1, in submission order — the affinity contract the sharded
  // engine relies on to keep one shard's state warm on one OS thread.
  ASSERT_EQ(ran_on.size(), 1u);
  EXPECT_EQ(*ran_on.begin(), workers[1]);
  ASSERT_EQ(order.size(), 20u);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(order[i], i);
}

TEST(Parallel, SubmitToValidatesWorkerIndexAndPropagatesErrors) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.submit_to(2, [] {}), std::out_of_range);
  // Pinned tasks join the same batch accounting as shared ones: wait_idle
  // covers them and rethrows their first exception.
  std::atomic<int> ran{0};
  pool.submit_to(0, [&ran] {
    ++ran;
    throw std::runtime_error("pinned task failed");
  });
  pool.submit_to(1, [&ran] { ++ran; });
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  EXPECT_EQ(ran.load(), 2);
  pool.submit_to(0, [&ran] { ++ran; });
  EXPECT_NO_THROW(pool.wait_idle());
  EXPECT_EQ(ran.load(), 3);
}

// --- stats property tests ---------------------------------------------------

TEST(StatsProperty, PercentileMatchesPercentilesOnRandomInputs) {
  Rng rng(7001);
  for (int iter = 0; iter < 50; ++iter) {
    const std::size_t n = 1 + rng.uniform_index(200);
    std::vector<double> v(n);
    for (auto& x : v) x = rng.uniform(-1e6, 1e6);
    std::vector<double> ps;
    for (int k = 0; k < 8; ++k) ps.push_back(rng.uniform(0.0, 100.0));
    ps.insert(ps.end(), {0.0, 50.0, 100.0});
    const auto batch = percentiles(v, ps);
    ASSERT_EQ(batch.size(), ps.size());
    for (std::size_t i = 0; i < ps.size(); ++i) {
      // Same shared helper underneath -> bit-identical, not just close.
      EXPECT_DOUBLE_EQ(batch[i], percentile(v, ps[i]))
          << "iter " << iter << " p=" << ps[i];
    }
  }
}

TEST(StatsProperty, PercentileEdgeCases) {
  EXPECT_DOUBLE_EQ(percentile({}, 50.0), 0.0);
  EXPECT_TRUE(percentiles({}, std::vector<double>{25.0, 75.0}) ==
              (std::vector<double>{0.0, 0.0}));
  const std::vector<double> one{3.5};
  EXPECT_DOUBLE_EQ(percentile(one, 0.0), 3.5);
  EXPECT_DOUBLE_EQ(percentile(one, 37.0), 3.5);
  EXPECT_DOUBLE_EQ(percentile(one, 100.0), 3.5);
}

TEST(StatsProperty, MergeMatchesSinglePassOnRandomSplits) {
  Rng rng(7002);
  for (int iter = 0; iter < 30; ++iter) {
    const std::size_t n = rng.uniform_index(300);  // includes n == 0
    std::vector<double> v(n);
    for (auto& x : v) x = rng.uniform(-100.0, 100.0);
    RunningStats all;
    for (double x : v) all.add(x);
    // Split at a random point (possibly 0 or n: empty-side merges).
    const std::size_t cut = rng.uniform_index(n + 1);
    RunningStats left, right;
    for (std::size_t i = 0; i < cut; ++i) left.add(v[i]);
    for (std::size_t i = cut; i < n; ++i) right.add(v[i]);
    left.merge(right);
    EXPECT_EQ(left.count(), all.count());
    EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
    EXPECT_NEAR(left.variance(), all.variance(), 1e-7);
    EXPECT_DOUBLE_EQ(left.min(), all.min());
    EXPECT_DOUBLE_EQ(left.max(), all.max());
    EXPECT_NEAR(left.sum(), all.sum(), 1e-7);
  }
}

TEST(StatsProperty, MergeEdgeCases) {
  // empty.merge(empty)
  RunningStats a, b;
  a.merge(b);
  EXPECT_EQ(a.count(), 0u);
  EXPECT_DOUBLE_EQ(a.mean(), 0.0);
  // merge into empty
  RunningStats c, d;
  d.add(2.0);
  d.add(4.0);
  c.merge(d);
  EXPECT_EQ(c.count(), 2u);
  EXPECT_DOUBLE_EQ(c.mean(), 3.0);
  EXPECT_DOUBLE_EQ(c.min(), 2.0);
  EXPECT_DOUBLE_EQ(c.max(), 4.0);
  // merge of one-element accumulators
  RunningStats e, f;
  e.add(1.0);
  f.add(5.0);
  e.merge(f);
  EXPECT_EQ(e.count(), 2u);
  EXPECT_DOUBLE_EQ(e.mean(), 3.0);
  EXPECT_NEAR(e.variance(), 8.0, 1e-12);  // sample variance of {1, 5}
}

}  // namespace
}  // namespace spider
