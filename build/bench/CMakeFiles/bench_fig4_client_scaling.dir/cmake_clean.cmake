file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_client_scaling.dir/bench_fig4_client_scaling.cpp.o"
  "CMakeFiles/bench_fig4_client_scaling.dir/bench_fig4_client_scaling.cpp.o.d"
  "bench_fig4_client_scaling"
  "bench_fig4_client_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_client_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
