// spiderlint --fix: mechanically safe rewrites for a subset of findings.
//
// Only two fix families are safe enough to automate, and both are pure
// token substitutions:
//
//   L1 container swap     std::unordered_map<K,V>  -> std::map<K,V>
//                         std::unordered_set<K>    -> std::set<K>
//       applied only to type-use findings whose template argument list is
//       on one line and has no extra arguments (a custom hasher or
//       allocator makes the swap semantic, so it is left to a human); the
//       matching `#include <unordered_*>` is swapped once no uses remain.
//
//   L3 unit-alias rename  double x_bytes   -> spider::ByteVolume x_bytes
//                         double x_seconds -> spider::Seconds x_seconds
//                         double x_bw      -> spider::Bandwidth x_bw
//                         double latency*  -> spider::Seconds latency*
//       the aliases are doubles (common/units.hpp), so the rewrite cannot
//       change behaviour; `#include "common/units.hpp"` is inserted when
//       missing.
//
// Everything else (iteration findings, L2 nondeterminism, the semantic
// rules) requires judgement and is intentionally not auto-fixed.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "tools/lint/report.hpp"

namespace spider::lint {

struct FixResult {
  std::size_t fixes_applied = 0;
  std::vector<std::string> files_changed;  ///< sorted, deduplicated
};

/// Apply the safe fixes for `report`'s findings to the files on disk.
/// Unreadable/unwritable files are reported in `errors`; findings whose
/// source text no longer matches are skipped silently (the file moved under
/// us — rerun the lint).
FixResult apply_fixes(const LintReport& report,
                      std::vector<std::string>& errors);

}  // namespace spider::lint
