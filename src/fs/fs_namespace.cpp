#include "fs/fs_namespace.hpp"

#include <algorithm>
#include <stdexcept>

namespace spider::fs {

namespace {
// Local aliases for the public codec in fs_namespace.hpp.
constexpr FileId make_id(std::uint32_t generation, std::size_t slot) {
  return file_id_for_slot(generation, slot);
}
constexpr std::size_t slot_of(FileId id) { return slot_of_file_id(id); }
constexpr std::uint32_t generation_of(FileId id) {
  return generation_of_file_id(id);
}
}  // namespace

FsNamespace::FsNamespace(std::string name, std::vector<Ost*> osts,
                         const MdsParams& mds_params, AllocatorMode alloc_mode,
                         StripePolicy default_policy)
    : name_(std::move(name)),
      osts_(std::move(osts)),
      mds_(mds_params),
      allocator_(osts_, alloc_mode),
      default_policy_(default_policy) {
  if (osts_.empty()) throw std::invalid_argument("FsNamespace: no OSTs");
}

FileId FsNamespace::create_file(std::uint32_t project, Bytes size,
                                sim::SimTime now, Rng& rng,
                                std::optional<StripePolicy> policy) {
  const StripePolicy p = policy.value_or(default_policy_);
  auto chosen = allocator_.allocate(p.stripe_count, size, rng);
  if (chosen.empty()) return kNoFile;
  mds_.account(MetaOp::kCreate);

  // Pick the slot without mutating anything so the changelog append below
  // genuinely precedes every namespace-state change (spiderlint L14).
  const bool reuse = !free_slots_.empty();
  const std::size_t slot = reuse ? free_slots_.back() : files_.size();
  const std::uint32_t generation =
      reuse ? generation_of(files_[slot].id) + 1 : 0;
  const FileId id = make_id(generation, slot);
  if (oplog_ != nullptr && (oplog_mask_ & kLogCreate) != 0) {
    oplog_->append(OpKind::kCreate, id, project, size,
                   static_cast<std::int64_t>(now));
  }

  if (reuse) {
    free_slots_.pop_back();
  } else {
    files_.emplace_back();
  }
  FileRecord& rec = files_[slot];
  rec.id = make_id(generation, slot);
  rec.project = project;
  rec.size = size;
  rec.atime = rec.mtime = rec.ctime = now;
  rec.stripe_offset = static_cast<std::uint32_t>(stripe_pool_.size());
  rec.stripe_count = static_cast<std::uint32_t>(chosen.size());
  rec.alive = true;
  stripe_pool_.insert(stripe_pool_.end(), chosen.begin(), chosen.end());
  ++live_files_;
  ++total_created_;
  return rec.id;
}

bool FsNamespace::exists(FileId id) const {
  if (id == kNoFile) return false;
  const std::size_t slot = slot_of(id);
  return slot < files_.size() && files_[slot].alive && files_[slot].id == id;
}

const FileRecord& FsNamespace::file(FileId id) const {
  if (!exists(id)) throw std::out_of_range("FsNamespace::file: no such file");
  return files_[slot_of(id)];
}

FileRecord& FsNamespace::record(FileId id) {
  if (!exists(id)) throw std::out_of_range("FsNamespace: no such file");
  return files_[slot_of(id)];
}

void FsNamespace::read_file(FileId id, sim::SimTime now) {
  FileRecord& rec = record(id);
  // Atime-only records are masked off by default (atime churn at 1e9
  // entries would dwarf every other record kind, exactly why `lctl
  // changelog` ships with them off).
  if (oplog_ != nullptr && (oplog_mask_ & kLogAtime) != 0) {
    oplog_->append(OpKind::kSetattr, id, rec.project, rec.size,
                   static_cast<std::int64_t>(now));
  }
  rec.atime = now;
  mds_.account(MetaOp::kLookup);
  mds_.account(MetaOp::kStat, rec.stripe_count);
}

void FsNamespace::touch_file(FileId id, sim::SimTime now) {
  FileRecord& rec = record(id);
  if (oplog_ != nullptr && (oplog_mask_ & kLogSetattr) != 0) {
    oplog_->append(OpKind::kSetattr, id, rec.project, rec.size,
                   static_cast<std::int64_t>(now));
  }
  rec.mtime = now;
  rec.atime = now;
  mds_.account(MetaOp::kSetattr);
}

void FsNamespace::stat_file(FileId id) {
  const FileRecord& rec = record(id);
  mds_.account(MetaOp::kStat, rec.stripe_count);
}

bool FsNamespace::resize_file(FileId id, Bytes new_size, sim::SimTime now) {
  if (!exists(id)) return false;
  FileRecord& rec = files_[slot_of(id)];
  const Bytes old_size = rec.size;
  if (new_size != old_size) {
    // OST reservation first: a grow that does not fit must leave no record
    // and no state change. OST counters are derived data-path state (their
    // mutators carry their own annotations in fs/ost.hpp), so the record
    // below still precedes every *namespace* mutation.
    // spiderlint: journal-ok
    if (!allocator_.resize(stripes_of(rec), old_size, new_size)) return false;
  }
  if (oplog_ != nullptr && (oplog_mask_ & kLogResize) != 0) {
    oplog_->append(OpKind::kResize, id, rec.project, new_size,
                   static_cast<std::int64_t>(now), /*prev_project=*/0,
                   /*prev_size=*/old_size);
  }
  rec.size = new_size;
  rec.mtime = now;
  rec.ctime = now;
  mds_.account(MetaOp::kSetattr);
  return true;
}

bool FsNamespace::set_project(FileId id, std::uint32_t new_project,
                              sim::SimTime now) {
  if (!exists(id)) return false;
  FileRecord& rec = files_[slot_of(id)];
  const std::uint32_t old_project = rec.project;
  if (oplog_ != nullptr && (oplog_mask_ & kLogSetProject) != 0 &&
      new_project != old_project) {
    oplog_->append(OpKind::kSetProject, id, new_project, rec.size,
                   static_cast<std::int64_t>(now),
                   /*prev_project=*/old_project);
  }
  rec.project = new_project;
  rec.ctime = now;
  mds_.account(MetaOp::kSetattr);
  return true;
}

bool FsNamespace::unlink(FileId id, sim::SimTime now) {
  if (!exists(id)) return false;
  FileRecord& rec = files_[slot_of(id)];
  if (oplog_ != nullptr && (oplog_mask_ & kLogUnlink) != 0) {
    oplog_->append(OpKind::kUnlink, id, rec.project, rec.size,
                   static_cast<std::int64_t>(now));
  }
  allocator_.release(stripes_of(rec), rec.size);
  mds_.account(MetaOp::kUnlink);
  rec.alive = false;
  free_slots_.push_back(slot_of(id));
  --live_files_;
  return true;
}

void FsNamespace::for_each_file(
    const std::function<void(const FileRecord&)>& fn) const {
  // Walk telemetry, not namespace state: the changelog oracle reads
  // full_walks() to prove incremental query paths never scan.
  // spiderlint: journal-ok
  ++full_walks_;
  for (const auto& rec : files_) {
    if (rec.alive) fn(rec);
  }
}

std::vector<FileId> FsNamespace::live_ids() const {
  // spiderlint: journal-ok (walk telemetry, see for_each_file)
  ++full_walks_;
  std::vector<FileId> ids;
  ids.reserve(live_files_);
  for (const auto& rec : files_) {
    if (rec.alive) ids.push_back(rec.id);
  }
  return ids;
}

std::uint64_t FsNamespace::recount_live() const {
  // spiderlint: journal-ok (walk telemetry, see for_each_file)
  ++full_walks_;
  std::uint64_t n = 0;
  for (const auto& rec : files_) {
    if (rec.alive) ++n;
  }
  return n;
}

std::span<std::uint32_t> FsNamespace::fsck_stripes(const FileRecord& rec) {
  const std::size_t begin =
      std::min<std::size_t>(rec.stripe_offset, stripe_pool_.size());
  const std::size_t count =
      std::min<std::size_t>(rec.stripe_count, stripe_pool_.size() - begin);
  return {stripe_pool_.data() + begin, count};
}

Bytes FsNamespace::capacity() const {
  Bytes total = 0;
  for (const Ost* o : osts_) total += o->capacity();
  return total;
}

Bytes FsNamespace::used() const {
  Bytes total = 0;
  for (const Ost* o : osts_) total += o->used();
  return total;
}

double FsNamespace::fullness() const {
  const Bytes cap = capacity();
  return cap == 0 ? 1.0 : static_cast<double>(used()) / static_cast<double>(cap);
}

std::map<std::uint32_t, Bytes> FsNamespace::usage_by_project() const {
  std::map<std::uint32_t, Bytes> usage;
  for_each_file([&usage](const FileRecord& rec) { usage[rec.project] += rec.size; });
  return usage;
}

Bandwidth FsNamespace::aggregate_ost_bw(block::IoMode mode, block::IoDir dir,
                                        Bytes request_size) const {
  double total = 0.0;
  for (const Ost* o : osts_) total += o->bandwidth(mode, dir, request_size);
  return total;
}

std::span<const std::uint32_t> FsNamespace::stripes_of(const FileRecord& rec) const {
  return {stripe_pool_.data() + rec.stripe_offset, rec.stripe_count};
}

}  // namespace spider::fs
