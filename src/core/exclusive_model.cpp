#include "core/exclusive_model.hpp"

namespace spider::core {

WorkflowResult compare_workflow(const WorkflowSpec& spec) {
  const double data = static_cast<double>(spec.dataset);
  const double reduced = data * spec.reduction_factor;

  // Data-centric: every stage reads/writes the shared PFS directly.
  const double dc = data / spec.sim_write_bw              // simulation dump
                    + data / spec.analysis_read_bw        // analysis reads
                    + spec.analysis_compute_s             //
                    + reduced / spec.viz_read_bw          // viz reads reduced set
                    + spec.viz_compute_s;

  // Machine-exclusive: stage the dataset to the analysis island, then the
  // reduced set to the viz island, through the data-movement cluster.
  const double ex = data / spec.sim_write_bw
                    + data / spec.mover_bw                // stage to analysis FS
                    + data / spec.analysis_read_bw
                    + spec.analysis_compute_s
                    + reduced / spec.mover_bw             // stage to viz FS
                    + reduced / spec.viz_read_bw
                    + spec.viz_compute_s;

  WorkflowResult out;
  out.datacentric_s = dc;
  out.exclusive_s = ex;
  const double movement = data / spec.mover_bw + reduced / spec.mover_bw;
  out.movement_fraction = ex > 0.0 ? movement / ex : 0.0;
  out.speedup = dc > 0.0 ? ex / dc : 0.0;
  return out;
}

AvailabilityResult compare_availability(const AvailabilitySpec& spec) {
  AvailabilityResult out;
  // Exclusive island: the dataset is behind the owning machine.
  out.exclusive = spec.machine_availability * spec.pfs_availability;
  // Data-centric: only the PFS needs to be up.
  out.datacentric = spec.pfs_availability;
  return out;
}

}  // namespace spider::core
