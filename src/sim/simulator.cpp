#include "sim/simulator.hpp"

#include <cassert>
#include <stdexcept>

namespace spider::sim {

std::uint64_t site_hash(const std::source_location& loc) {
  // FNV-1a over the file basename, then fold in the line. Hashing contents
  // (not the pointer) makes the value reproducible across runs and builds;
  // dropping the directory prefix makes it reproducible across *checkouts*,
  // so replay hashes can be compared between machines and CI.
  const char* name = loc.file_name();
  for (const char* p = name; *p; ++p) {
    if (*p == '/' || *p == '\\') name = p + 1;
  }
  std::uint64_t h = 1469598103934665603ull;
  for (const char* p = name; *p; ++p) {
    h ^= static_cast<unsigned char>(*p);
    h *= 1099511628211ull;
  }
  h ^= loc.line();
  h *= 1099511628211ull;
  return h;
}

EventId Simulator::schedule_at(SimTime when, EventFn fn, std::source_location loc) {
  if (when < now_) throw std::invalid_argument("schedule_at: time in the past");
  return queue_.schedule(when, std::move(fn), site_hash(loc));
}

EventId Simulator::schedule_in(SimTime dt, EventFn fn, std::source_location loc) {
  if (dt < 0) throw std::invalid_argument("schedule_in: negative delay");
  return queue_.schedule(now_ + dt, std::move(fn), site_hash(loc));
}

void Simulator::dispatch(EventQueue::Fired fired) {
  assert(fired.when >= now_);
  now_ = fired.when;
  if (observer_) observer_(fired.when, fired.id, fired.site);
  fired.fn();
  ++executed_;
}

std::uint64_t Simulator::run(SimTime until) {
  std::uint64_t ran = 0;
  while (!queue_.empty() && queue_.next_time() <= until) {
    dispatch(queue_.pop());
    ++ran;
  }
  if (queue_.empty()) return ran;
  // Cut off: advance the clock to the horizon so callers can resume.
  if (until != std::numeric_limits<SimTime>::max() && now_ < until) now_ = until;
  return ran;
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  dispatch(queue_.pop());
  return true;
}

}  // namespace spider::sim
