// --fix fixture for L3 unit-alias renames. After `spiderlint --fix` every
// unit-bearing double below must use the units.hpp vocabulary type (with
// the include inserted), recompile, and re-lint clean.
#pragma once

namespace fixture {

struct TransferStats {
  double transfer_bytes = 0.0;
  double elapsed_seconds = 0.0;
  double peak_bw = 0.0;
  double latency_p99 = 0.0;
};

}  // namespace fixture
