#include "sim/replay.hpp"

#include <bit>
#include <sstream>

#include "sim/flow_network.hpp"
#include "sim/simulator.hpp"

namespace spider::sim {

namespace {
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

std::uint64_t fold(std::uint64_t h, std::uint64_t v) {
  // FNV-1a a byte at a time so every bit of v lands in the hash.
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xffu;
    h *= kFnvPrime;
  }
  return h;
}

std::uint64_t fold_double(std::uint64_t h, double v) {
  // Bit-exact: +0.0 vs -0.0 or differently-rounded results hash differently,
  // which is the point — replay equality is bitwise, not approximate.
  return fold(h, std::bit_cast<std::uint64_t>(v));
}
}  // namespace

void ReplayRecorder::attach(Simulator& sim) {
  sim.set_observer(EventObserver(*this));
}

void ReplayRecorder::on_event(SimTime when, EventId id, std::uint64_t site) {
  records_.push_back(Record{when, id, site});
  event_hash_ = fold(event_hash_, static_cast<std::uint64_t>(when));
  event_hash_ = fold(event_hash_, id);
  event_hash_ = fold(event_hash_, site);
}

void ReplayRecorder::record_resource_stats(const FlowNetwork& net) {
  for (std::size_t r = 0; r < net.resources(); ++r) {
    const ResourceStats& s = net.stats(static_cast<ResourceId>(r));
    stats_hash_ = fold_double(stats_hash_, s.served);
    stats_hash_ = fold_double(stats_hash_, s.busy_integral);
    stats_hash_ = fold_double(stats_hash_, s.current_load);
    stats_hash_ = fold(stats_hash_, s.flows_seen);
  }
}

std::uint64_t ReplayRecorder::combined_hash() const {
  return fold(fold(1469598103934665603ull, event_hash_), stats_hash_);
}

std::size_t ReplayRecorder::first_divergence(const ReplayRecorder& a,
                                             const ReplayRecorder& b) {
  const std::size_t n = std::min(a.records_.size(), b.records_.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (!(a.records_[i] == b.records_[i])) return i;
  }
  if (a.records_.size() != b.records_.size()) return n;
  return npos;
}

std::string ReplayRecorder::divergence_report(const ReplayRecorder& a,
                                              const ReplayRecorder& b) {
  const std::size_t i = first_divergence(a, b);
  std::ostringstream os;
  if (i == npos) {
    if (a.stats_hash_ != b.stats_hash_) {
      os << "event streams identical but stats hashes differ: " << std::hex
         << a.stats_hash_ << " vs " << b.stats_hash_;
    } else {
      os << "identical";
    }
    return os.str();
  }
  os << "first divergence at event " << i << " of (" << a.records_.size()
     << ", " << b.records_.size() << "): ";
  auto describe = [&os](const ReplayRecorder& r, std::size_t idx) {
    if (idx >= r.records_.size()) {
      os << "<stream ended>";
      return;
    }
    const Record& rec = r.records_[idx];
    os << "{t=" << rec.when << " id=" << rec.id << " site=" << std::hex
       << rec.site << std::dec << "}";
  };
  describe(a, i);
  os << " vs ";
  describe(b, i);
  return os.str();
}

}  // namespace spider::sim
