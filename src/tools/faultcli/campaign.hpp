// Fault-campaign engine: binds declarative FaultPlans to a concrete cluster.
//
// sim/faultplan.hpp is deliberately subsystem-agnostic — it only knows when
// injections fire. This layer supplies the *what*: a small but complete
// Spider-style cluster (one SSU of RAID-6 groups behind a controller pair,
// OSTs, a namespace with MDS and purge, and a flow network modelling the
// OST/controller/LNET-router path), one binding per FaultKind, predicates
// for the conditioned triggers, a deterministic background workload, and the
// invariant-oracle set from the ISSUE catalogue:
//
//   flow-conservation   utilization/served/delivered bounds (sim/oracle.hpp)
//   write-accounting    bytes acked never exceed bytes issued
//   raid-read-safety    reads are never served from non-online members
//   rebuild-monotone    rebuild progress never moves backwards
//   namespace-journal   namespace counters match the op journal replay
//   purge-age           purge never deletes files younger than the policy
//
// Everything — cluster construction, workload, injections, oracle sweeps —
// derives from (plan, seed), so a campaign's verdict is reproducible
// bit-for-bit and its replay hash can be diffed across processes.
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "block/ssu.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"
#include "fs/changelog.hpp"
#include "fs/fs_namespace.hpp"
#include "fs/ost.hpp"
#include "fs/purge.hpp"
#include "sim/faultplan.hpp"
#include "sim/flow_network.hpp"
#include "sim/oracle.hpp"
#include "sim/replay.hpp"
#include "sim/sharded_sim.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"
#include "tools/spiderfsck/fsck.hpp"

namespace spider::tools {

/// Write-path accounting shared between the workload and its oracle: bytes
/// issued when a write flow starts, bytes acked when it completes.
struct WriteLedger {
  double issued = 0.0;
  double acked = 0.0;
};

/// Metadata-operation journal the namespace-journal oracle replays against
/// the namespace's own counters.
struct OpJournal {
  std::uint64_t creates = 0;
  std::uint64_t unlinks = 0;
};

/// Records rebuild progress samples; the rebuild-monotone oracle asserts
/// per-group fractions never decrease within one rebuild.
class RebuildTracker {
 public:
  struct Sample {
    std::size_t group = 0;
    double fraction = 0.0;
    bool fresh = false;  ///< first sample of a new rebuild (resets tracking)
  };

  void on_start(std::size_t group, sim::SimTime now, double duration_s);
  void on_finish(std::size_t group);
  void on_abort(std::size_t group);
  /// Append one progress sample per active rebuild at `now`.
  void sample(sim::SimTime now);

  const std::vector<Sample>& samples() const { return samples_; }
  /// Mutable access so negative tests can seed a hostile sample.
  std::vector<Sample>& samples_mutable() { return samples_; }
  std::size_t active_rebuilds() const { return active_.size(); }

 private:
  struct Active {
    sim::SimTime start = 0;
    double duration_s = 0.0;
  };
  std::map<std::size_t, Active> active_;
  std::vector<Sample> samples_;
};

// --- oracle factories (each checks one ISSUE-catalogue invariant) ----------
std::unique_ptr<sim::Oracle> make_accounting_oracle(const WriteLedger& ledger);
std::unique_ptr<sim::Oracle> make_raid_read_oracle(
    std::vector<const block::Raid6Group*> groups);
std::unique_ptr<sim::Oracle> make_rebuild_monotone_oracle(
    const RebuildTracker& tracker);
std::unique_ptr<sim::Oracle> make_namespace_journal_oracle(
    const fs::FsNamespace& ns, const OpJournal& journal);
std::unique_ptr<sim::Oracle> make_purge_age_oracle(
    const std::vector<fs::PurgeReport>& reports, double window_days);
/// Changelog-consistency oracle (ROADMAP item 2): each sweep folds newly
/// committed records into `accounting`, then asserts the derived
/// per-project usage and live-file count equal the namespace ground truth.
/// Fires on crash-rewound cursors (and rebuilds) and on interior txid
/// gaps. Wired into the churn runner; campaigns can add it when their
/// namespace has the log attached.
std::unique_ptr<sim::Oracle> make_changelog_oracle(
    const fs::FsNamespace& ns, const fs::OpLog& log,
    fs::ChangelogAccounting& accounting);

/// Cluster and workload shape of one campaign run.
struct CampaignConfig {
  std::size_t raid_groups = 8;
  std::size_t enclosures = 10;
  /// 0 = use the plan's horizon_s.
  Seconds horizon_s = 0.0;
  sim::SimTime oracle_interval = 5 * sim::kSecond;
  sim::SimTime create_interval = 2 * sim::kSecond;
  sim::SimTime read_interval = 3 * sim::kSecond;
  sim::SimTime purge_interval = 60 * sim::kSecond;
  /// Purge window small enough that sweeps actually delete files within a
  /// few-hundred-second horizon (the production 14d cadence is exercised by
  /// fs tests; campaigns need churn).
  double purge_window_days = 0.002;
};

/// Mutation target bounds matching the cluster `cfg` builds.
sim::PlanBounds campaign_bounds(const CampaignConfig& cfg = {});

/// Outcome of one campaign run: identity, reproducibility hashes, telemetry,
/// and every oracle violation observed.
struct RunVerdict {
  std::string plan;
  std::uint64_t seed = 0;
  /// Site-inclusive replay hash (events + flow telemetry) — the cross-process
  /// determinism check.
  std::uint64_t replay_hash = 0;
  /// Site-free (when, id) stream hash — stable across line-number refactors,
  /// pinned by golden tests.
  std::uint64_t stream_hash = 0;
  std::uint64_t events = 0;
  std::size_t injections_fired = 0;
  std::size_t reverts_fired = 0;
  std::uint64_t files_created = 0;
  std::uint64_t files_purged = 0;
  double delivered = 0.0;  ///< flow units delivered end-to-end
  bool data_lost = false;
  std::vector<sim::OracleViolation> violations;

  /// Outcome of the post-run fsck stage (inject -> detect -> fsck ->
  /// re-run oracles). Populated by run_campaign_checked(); `ran` stays
  /// false — and the JSON keeps its historical shape — otherwise.
  struct RepairSummary {
    bool ran = false;
    std::uint64_t findings = 0;
    std::uint64_t repairs = 0;
    /// Distinct finding-kind names, canonical order.
    std::vector<std::string> kinds;
    std::uint64_t findings_hash = 0;
    std::uint64_t state_hash = 0;
    std::uint64_t post_violations = 0;
    /// fsck re-check came back clean AND the post-repair oracle sweep
    /// observed no violations.
    bool post_clean = false;
  };
  RepairSummary repair;

  bool clean() const { return violations.empty(); }
};

/// Render a verdict as one JSON object (stable field order; hashes as hex).
std::string verdict_json(const RunVerdict& verdict);

/// Site-free FNV-1a over the (when, id) pairs of a recorded event stream.
std::uint64_t stream_hash(const sim::ReplayRecorder& recorder);

/// One deterministic fault-campaign run over a plan.
class FaultCampaign {
 public:
  FaultCampaign(const sim::FaultPlan& plan, std::uint64_t seed,
                const CampaignConfig& cfg = {});
  /// Host the campaign on an externally owned engine — typically one shard
  /// of a ShardedSimulator (pass engine.shard(k)). The campaign schedules
  /// everything on `sim`; drive it with run_with(). `sim` must outlive the
  /// campaign and start at time 0 with an empty queue.
  FaultCampaign(const sim::FaultPlan& plan, std::uint64_t seed,
                const CampaignConfig& cfg, sim::Simulator& sim);

  /// Arm the plan, drive workload + oracle sweeps to the horizon, and
  /// return the verdict. Call once per instance.
  RunVerdict run();

  /// Like run(), but the epochs of `engine` drive the clock — for campaigns
  /// hosted on a shard (see the external-engine constructor). The verdict,
  /// hashes included, is byte-identical to run()'s at any shard or worker
  /// count: all campaign events live on one shard, and chopping the run
  /// into epochs pops the same (when, id) sequence the serial run does.
  RunVerdict run_with(sim::ShardedSimulator& engine);

  sim::Simulator& simulator() { return sim_; }
  sim::OracleSuite& oracles() { return suite_; }
  sim::FaultInjector& injector() { return injector_; }
  fs::FsNamespace& ns() { return *ns_; }
  block::Ssu& ssu() { return ssu_; }
  sim::FlowNetwork& network() { return net_; }
  WriteLedger& ledger() { return ledger_; }
  OpJournal& journal() { return journal_; }
  /// The redo log every create/purge-unlink lands in (fs/journal.hpp);
  /// what spiderfsck cross-references the namespace against.
  fs::OpLog& oplog() { return oplog_; }
  RebuildTracker& rebuilds() { return rebuilds_; }
  /// The purge-report log the purge-age oracle watches.
  std::vector<fs::PurgeReport>& purge_log() { return purge_reports_; }

  /// The namespace + op journal as one fsck target (no DNE facet: the
  /// campaign cluster models a single-MDS namespace).
  FsckTarget fsck_target();

  /// Post-run fsck stage: repair the namespace/journal/OSTs, re-check that
  /// the repair converged, refresh the campaign's journal counters from the
  /// op-log replay, and re-run every oracle against the repaired state.
  /// Call after run()/run_with() — it checks state, not the event stream.
  struct FsckOutcome {
    FsckReport report;      ///< primary (repairing) pass
    bool converged = false; ///< serial re-check found nothing
    std::vector<sim::OracleViolation> post_violations;
    bool post_clean() const { return converged && post_violations.empty(); }
  };
  FsckOutcome fsck_and_reverify(const FsckOptions& options = {});

 private:
  FaultCampaign(const sim::FaultPlan& plan, std::uint64_t seed,
                const CampaignConfig& cfg, sim::Simulator* external);
  /// Arm the plan and schedule the workload drivers + oracle sweeps.
  void prepare();
  /// Collect telemetry into the verdict once the horizon is reached.
  RunVerdict finish();
  void bind_faults();
  void bind_triggers();
  void add_oracles();
  void sync_network();
  void start_rebuild(std::size_t g, std::size_t m);
  /// Schedule `fn` every `interval` until the horizon (first run at
  /// `interval`). The driver closure lives in drivers_ so recurrence needs
  /// no self-owning shared state.
  void every(sim::SimTime interval, std::function<void()> fn);
  void do_create();
  void do_read();
  void do_purge();

  sim::FaultPlan plan_;
  std::uint64_t seed_;
  CampaignConfig cfg_;
  /// Engine storage when self-hosted; empty when an external simulator (a
  /// ShardedSimulator shard) hosts the campaign. Declared before sim_ so
  /// the reference can bind to it during construction.
  std::unique_ptr<sim::Simulator> owned_sim_;
  sim::Simulator& sim_;
  Rng rng_;
  block::Ssu ssu_;
  std::vector<fs::Ost> osts_;
  std::unique_ptr<fs::FsNamespace> ns_;
  sim::FlowNetwork net_;
  sim::FaultInjector injector_;
  sim::OracleSuite suite_;
  sim::ReplayRecorder recorder_;
  WriteLedger ledger_;
  OpJournal journal_;
  fs::OpLog oplog_;
  RebuildTracker rebuilds_;
  std::vector<fs::PurgeReport> purge_reports_;
  std::vector<fs::FileId> files_;
  std::list<std::function<void()>> drivers_;
  std::vector<sim::ResourceId> ost_res_;
  sim::ResourceId controller_res_ = 0;
  sim::ResourceId router_res_ = 0;
  double router_base_capacity_ = 0.0;
  sim::SimTime horizon_ = 0;
};

/// Convenience: build, run, and return the verdict for (plan, seed).
RunVerdict run_campaign(const sim::FaultPlan& plan, std::uint64_t seed,
                        const CampaignConfig& cfg = {});

/// Run the campaign hosted on shard 0 of a `shards`-wide ShardedSimulator
/// with `workers` lanes (0 = auto, 1 = serial). The verdict is
/// byte-identical to run_campaign's — the determinism bar spiderfault
/// --shards=N meets, pinned by the golden traces at 1/2/4/8 shards.
RunVerdict run_campaign_sharded(const sim::FaultPlan& plan, std::uint64_t seed,
                                const CampaignConfig& cfg = {},
                                std::size_t shards = 1,
                                std::size_t workers = 0);

/// run_campaign plus the fsck stage: after the horizon, repair the cluster
/// state, re-run every oracle, and fold the outcome into verdict.repair.
/// The event-stream hashes are untouched — fsck runs outside the simulation.
RunVerdict run_campaign_checked(const sim::FaultPlan& plan, std::uint64_t seed,
                                const CampaignConfig& cfg = {},
                                const FsckOptions& fsck = {});

/// Sharded variant of run_campaign_checked (spiderfault --shards + --fsck).
RunVerdict run_campaign_sharded_checked(const sim::FaultPlan& plan,
                                        std::uint64_t seed,
                                        const CampaignConfig& cfg = {},
                                        std::size_t shards = 1,
                                        std::size_t workers = 0,
                                        const FsckOptions& fsck = {});

}  // namespace spider::tools
