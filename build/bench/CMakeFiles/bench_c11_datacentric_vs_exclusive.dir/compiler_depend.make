# Empty compiler generated dependencies file for bench_c11_datacentric_vs_exclusive.
# This may be replaced when dependencies are built.
