// Capture-parser edge cases for spiderlint L9-L12.
//
// Every construct here is engineered to look like a hazardous capture to a
// naive bracket-matcher: subscripts in schedule arguments, attributes,
// structured bindings, template lambdas, nested lambdas, moves out of
// shard state, and a capture list the parser cannot understand. None may
// fire — a misparse must degrade to a missed finding, never a false one.
#include <utility>
#include <vector>

#include "common/annotations.hpp"

#define CAPTURE_NOTHING()

namespace fixture {

struct Sim {
  template <typename Fn>
  void schedule_at(long when, Fn fn);
};

class Edges {
 public:
  void run() {
    // A subscript on shard-owned state in an argument list is not a
    // capture (and not a closure).
    sim_.schedule_at(ticks_[0], CAPTURE_NOTHING());

    // An attribute is not a lambda introducer.
    [[maybe_unused]] long first = ticks_[0];

    // A structured binding is not a capture list.
    auto& [lo, hi] = range_;

    // Value init-capture moves the buffer out: the event owns it.
    sim_.schedule_at(lo, [buf = std::move(spare_)] { (void)buf.size(); });

    // Template lambda with specifiers: parses; the value default copies
    // and its body touches nothing shard-owned.
    sim_.schedule_at(hi, [=]<typename T>(T t) mutable noexcept { (void)t; });

    // Nested lambda: the inner default-ref captures only the outer
    // closure's locals.
    sim_.schedule_at(first, [lo] {
      long acc = 0;
      auto inner = [&] { acc += lo; };
      inner();
    });

    // A macro in the capture list defeats the parser: the lambda is marked
    // unparsed and skipped (missed finding, never a false one).
    sim_.schedule_at(10, [CAPTURE_NOTHING()] { ticks_.clear(); });
  }

 private:
  Sim sim_;
  std::vector<long> ticks_ SPIDER_SHARD_OWNED(shard);
  std::vector<int> spare_;
  std::pair<long, long> range_;
};

}  // namespace fixture
