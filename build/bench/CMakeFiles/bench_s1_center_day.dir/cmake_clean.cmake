file(REMOVE_RECURSE
  "CMakeFiles/bench_s1_center_day.dir/bench_s1_center_day.cpp.o"
  "CMakeFiles/bench_s1_center_day.dir/bench_s1_center_day.cpp.o.d"
  "bench_s1_center_day"
  "bench_s1_center_day.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_s1_center_day.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
