file(REMOVE_RECURSE
  "CMakeFiles/dynamic_property_test.dir/dynamic_property_test.cpp.o"
  "CMakeFiles/dynamic_property_test.dir/dynamic_property_test.cpp.o.d"
  "dynamic_property_test"
  "dynamic_property_test.pdb"
  "dynamic_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynamic_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
