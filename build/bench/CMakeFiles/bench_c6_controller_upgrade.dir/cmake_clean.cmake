file(REMOVE_RECURSE
  "CMakeFiles/bench_c6_controller_upgrade.dir/bench_c6_controller_upgrade.cpp.o"
  "CMakeFiles/bench_c6_controller_upgrade.dir/bench_c6_controller_upgrade.cpp.o.d"
  "bench_c6_controller_upgrade"
  "bench_c6_controller_upgrade.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_c6_controller_upgrade.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
