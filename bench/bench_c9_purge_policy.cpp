// C9 (Lesson 10): the 14-day automatic purge keeps scratch capacity under
// control.
//
// Paper: "Files that are not created, modified, or accessed within a
// contiguous 14 day range are deleted by an automated process. This
// mechanism allows for automatic capacity trimming" — keeping the file
// system below the 70% severe-degradation point.
#include <iostream>
#include <memory>
#include <vector>

#include "bench_util.hpp"
#include "block/raid.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "fs/fs_namespace.hpp"
#include "fs/purge.hpp"

int main() {
  using namespace spider;

  // A compact namespace (16 OSTs) with a production-like churn: projects
  // create files daily; a fraction of files keeps being re-read.
  Rng rng(2014);
  std::vector<std::unique_ptr<block::Raid6Group>> groups;
  std::vector<std::unique_ptr<fs::Ost>> osts;
  std::vector<fs::Ost*> ptrs;
  for (int i = 0; i < 16; ++i) {
    std::vector<block::Disk> members;
    for (int m = 0; m < 10; ++m) {
      members.emplace_back(block::DiskParams{}, m, 1.0, 1e-4);
    }
    groups.push_back(std::make_unique<block::Raid6Group>(block::RaidParams{},
                                                         std::move(members)));
    osts.push_back(std::make_unique<fs::Ost>(i, groups.back().get()));
    ptrs.push_back(osts.back().get());
  }

  bench::banner("C9: 120 days of scratch churn, with and without the 14-day purge");
  Table table;
  table.set_columns({"day", "no-purge fullness %", "purged fullness %",
                     "files purged (cumulative)"});

  auto churn_day = [&rng](fs::FsNamespace& ns, int day,
                          std::vector<fs::FileId>& live) {
    const auto now = static_cast<sim::SimTime>(day) * sim::kDay;
    // ~150 files/day of 40 GiB: the no-purge run crosses 70% after about a
    // month, while 14 days of production fits comfortably (~35%).
    for (int f = 0; f < 150; ++f) {
      const auto id = ns.create_file(1 + f % 20, 40_GiB, now, rng);
      if (id != fs::kNoFile) live.push_back(id);
    }
    // 2% of remembered files are re-read (they must survive purge).
    for (std::size_t i = 0; i < live.size() / 50; ++i) {
      const auto id = live[rng.uniform_index(live.size())];
      if (ns.exists(id)) ns.read_file(id, now);
    }
  };

  fs::FsNamespace unmanaged("no-purge", ptrs);
  std::vector<std::unique_ptr<block::Raid6Group>> groups2;
  std::vector<std::unique_ptr<fs::Ost>> osts2;
  std::vector<fs::Ost*> ptrs2;
  for (int i = 0; i < 16; ++i) {
    std::vector<block::Disk> members;
    for (int m = 0; m < 10; ++m) {
      members.emplace_back(block::DiskParams{}, m, 1.0, 1e-4);
    }
    groups2.push_back(std::make_unique<block::Raid6Group>(block::RaidParams{},
                                                          std::move(members)));
    osts2.push_back(std::make_unique<fs::Ost>(i, groups2.back().get()));
    ptrs2.push_back(osts2.back().get());
  }
  fs::FsNamespace managed("purged", ptrs2);

  std::vector<fs::FileId> live_a, live_b;
  std::uint64_t purged_total = 0;
  double peak_managed = 0.0, final_unmanaged = 0.0;
  for (int day = 0; day < 120; ++day) {
    churn_day(unmanaged, day, live_a);
    churn_day(managed, day, live_b);
    const auto report = fs::run_purge(
        managed, static_cast<sim::SimTime>(day) * sim::kDay, fs::PurgePolicy{14.0});
    purged_total += report.purged;
    peak_managed = std::max(peak_managed, managed.fullness());
    final_unmanaged = unmanaged.fullness();
    if (day % 10 == 9) {
      table.add_row({static_cast<std::int64_t>(day + 1),
                     unmanaged.fullness() * 100.0, managed.fullness() * 100.0,
                     static_cast<std::int64_t>(purged_total)});
    }
  }
  table.print(std::cout);
  std::cout << "\n";

  bench::ShapeChecker checker;
  checker.check(final_unmanaged > 0.70,
                "without purge the scratch crosses the 70% degradation knee");
  checker.check(peak_managed < 0.45,
                "with the 14-day purge fullness plateaus well below the knee");
  checker.check(purged_total > 10000, "purge engine does sustained work");
  checker.check(managed.live_files() > 13 * 150u,
                "files inside the 14-day window are preserved");
  return checker.exit_code();
}
