#include "net/placement.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>
#include <sstream>
#include <stdexcept>

#include "common/stats.hpp"

namespace spider::net {

namespace {

/// XY cabinet cells for module placement, ordered by strategy.
std::vector<std::pair<int, int>> module_cells(const Torus3D& torus,
                                              std::size_t modules,
                                              PlacementStrategy strategy) {
  const auto& d = torus.dims();
  const std::size_t cells = static_cast<std::size_t>(d.x) * static_cast<std::size_t>(d.y);
  if (modules > cells) {
    throw std::invalid_argument("place_routers: more modules than XY cabinets");
  }
  std::vector<std::pair<int, int>> out;
  out.reserve(modules);
  if (strategy == PlacementStrategy::kClustered) {
    // Column-major fill from the x=0 edge.
    for (int x = 0; x < d.x && out.size() < modules; ++x) {
      for (int y = 0; y < d.y && out.size() < modules; ++y) {
        out.emplace_back(x, y);
      }
    }
    return out;
  }
  // Uniform stride over the flattened XY grid (also the base layout for
  // kFgrZoned, which differs only in group assignment).
  const double stride = static_cast<double>(cells) / static_cast<double>(modules);
  for (std::size_t m = 0; m < modules; ++m) {
    const auto cell = static_cast<std::size_t>(std::floor(static_cast<double>(m) * stride));
    out.emplace_back(static_cast<int>(cell % static_cast<std::size_t>(d.x)),
                     static_cast<int>(cell / static_cast<std::size_t>(d.x)));
  }
  return out;
}

}  // namespace

std::vector<PlacedRouter> place_routers(const Torus3D& torus,
                                        const PlacementConfig& cfg,
                                        PlacementStrategy strategy) {
  if (cfg.num_groups == 0 || cfg.routers_per_module == 0) {
    throw std::invalid_argument("place_routers: groups and routers_per_module > 0");
  }
  const auto cells = module_cells(torus, cfg.modules, strategy);
  const auto& d = torus.dims();
  std::vector<PlacedRouter> routers;
  routers.reserve(cfg.modules * cfg.routers_per_module);
  for (std::size_t m = 0; m < cells.size(); ++m) {
    const auto [cx, cy] = cells[m];
    int group;
    if (strategy == PlacementStrategy::kFgrZoned) {
      // Zone the XY plane: nearby cabinets share a group, so a group's
      // routers form a topological neighborhood (Figure 2's color blocks).
      const int zones_x = static_cast<int>(std::ceil(std::sqrt(static_cast<double>(cfg.num_groups))));
      const int zones_y = static_cast<int>((cfg.num_groups + zones_x - 1) / zones_x);
      const int zx = std::min(zones_x - 1, cx * zones_x / d.x);
      const int zy = std::min(zones_y - 1, cy * zones_y / d.y);
      group = static_cast<int>((zy * zones_x + zx) % static_cast<int>(cfg.num_groups));
    } else {
      group = static_cast<int>(m % cfg.num_groups);
    }
    for (std::size_t r = 0; r < cfg.routers_per_module; ++r) {
      PlacedRouter pr;
      // Spread the module's routers across Z within the cabinet.
      const int z = static_cast<int>((r * static_cast<std::size_t>(d.z)) /
                                     cfg.routers_per_module);
      pr.node = torus.node_id(Coord{cx, cy, z});
      pr.module = static_cast<int>(m);
      pr.group = group;
      // Each router of a module uplinks to a different leaf switch of the
      // group's quad.
      pr.ib_leaf = (static_cast<std::size_t>(group) * cfg.routers_per_module + r) %
                   cfg.leaf_switches;
      routers.push_back(pr);
    }
  }
  return routers;
}

PlacementQuality evaluate_placement(const Torus3D& torus,
                                    std::span<const PlacedRouter> routers) {
  PlacementQuality q;
  if (routers.empty()) return q;
  RunningStats hops;
  std::vector<double> load(routers.size(), 0.0);
  for (int n = 0; n < torus.num_nodes(); ++n) {
    int best = std::numeric_limits<int>::max();
    std::size_t best_r = 0;
    for (std::size_t r = 0; r < routers.size(); ++r) {
      const int h = torus.hop_count(n, routers[r].node);
      if (h < best) {
        best = h;
        best_r = r;
      }
    }
    hops.add(static_cast<double>(best));
    load[best_r] += 1.0;
  }
  q.mean_hops_to_router = hops.mean();
  q.max_hops_to_router = hops.max();
  q.hops_stddev = hops.stddev();
  q.router_load_imbalance = imbalance_of(load);
  return q;
}

namespace {

/// Objective for module placement: mean torus-XY distance from every
/// cabinet to its nearest module cell, with the max distance as a
/// lexicographic tiebreaker (scaled in as a small term).
double xy_objective(const Torus3D& torus,
                    const std::vector<std::pair<int, int>>& cells) {
  const auto& d = torus.dims();
  auto wrap = [](int a, int b, int extent) {
    const int diff = std::abs(a - b);
    return std::min(diff, extent - diff);
  };
  double total = 0.0;
  double worst = 0.0;
  for (int x = 0; x < d.x; ++x) {
    for (int y = 0; y < d.y; ++y) {
      int best = std::numeric_limits<int>::max();
      for (const auto& [cx, cy] : cells) {
        best = std::min(best, wrap(x, cx, d.x) + wrap(y, cy, d.y));
        if (best == 0) break;
      }
      total += best;
      worst = std::max(worst, static_cast<double>(best));
    }
  }
  const double cabs = static_cast<double>(d.x) * static_cast<double>(d.y);
  return total / cabs + 0.01 * worst;
}

}  // namespace

std::vector<PlacedRouter> place_routers_optimized(const Torus3D& torus,
                                                  const PlacementConfig& cfg,
                                                  Rng& rng,
                                                  std::size_t iterations) {
  const auto& d = torus.dims();
  auto cells = module_cells(torus, cfg.modules,
                            PlacementStrategy::kUniformSpread);
  std::set<std::pair<int, int>> occupied(cells.begin(), cells.end());
  double score = xy_objective(torus, cells);
  for (std::size_t it = 0; it < iterations; ++it) {
    const std::size_t m = rng.uniform_index(cells.size());
    const std::pair<int, int> proposal{
        static_cast<int>(rng.uniform_index(static_cast<std::uint64_t>(d.x))),
        static_cast<int>(rng.uniform_index(static_cast<std::uint64_t>(d.y)))};
    if (occupied.contains(proposal)) continue;
    const auto old = cells[m];
    cells[m] = proposal;
    const double candidate = xy_objective(torus, cells);
    if (candidate < score) {
      score = candidate;
      occupied.erase(old);
      occupied.insert(proposal);
    } else {
      cells[m] = old;
    }
  }
  // Materialize routers from the optimized cells with FGR zoning (same
  // logic as place_routers for kFgrZoned).
  std::vector<PlacedRouter> routers;
  routers.reserve(cells.size() * cfg.routers_per_module);
  const int zones_x = static_cast<int>(
      std::ceil(std::sqrt(static_cast<double>(cfg.num_groups))));
  const int zones_y = static_cast<int>((cfg.num_groups + zones_x - 1) / zones_x);
  for (std::size_t m = 0; m < cells.size(); ++m) {
    const auto [cx, cy] = cells[m];
    const int zx = std::min(zones_x - 1, cx * zones_x / d.x);
    const int zy = std::min(zones_y - 1, cy * zones_y / d.y);
    const int group =
        static_cast<int>((zy * zones_x + zx) % static_cast<int>(cfg.num_groups));
    for (std::size_t r = 0; r < cfg.routers_per_module; ++r) {
      PlacedRouter pr;
      const int z = static_cast<int>((r * static_cast<std::size_t>(d.z)) /
                                     cfg.routers_per_module);
      pr.node = torus.node_id(Coord{cx, cy, z});
      pr.module = static_cast<int>(m);
      pr.group = group;
      pr.ib_leaf = (static_cast<std::size_t>(group) * cfg.routers_per_module +
                    r) %
                   cfg.leaf_switches;
      routers.push_back(pr);
    }
  }
  return routers;
}

std::string render_xy_map(const Torus3D& torus,
                          std::span<const PlacedRouter> routers) {
  const auto& d = torus.dims();
  std::vector<std::vector<char>> grid(static_cast<std::size_t>(d.y),
                                      std::vector<char>(static_cast<std::size_t>(d.x), '.'));
  auto glyph = [](int group) {
    static const char* alphabet =
        "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789";
    return alphabet[static_cast<std::size_t>(group) % 62];
  };
  for (const auto& r : routers) {
    const Coord c = torus.coord_of(r.node);
    grid[static_cast<std::size_t>(c.y)][static_cast<std::size_t>(c.x)] = glyph(r.group);
  }
  std::ostringstream os;
  for (int y = d.y - 1; y >= 0; --y) {
    for (int x = 0; x < d.x; ++x) {
      os << grid[static_cast<std::size_t>(y)][static_cast<std::size_t>(x)] << ' ';
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace spider::net
