file(REMOVE_RECURSE
  "CMakeFiles/production_test.dir/production_test.cpp.o"
  "CMakeFiles/production_test.dir/production_test.cpp.o.d"
  "production_test"
  "production_test.pdb"
  "production_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/production_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
