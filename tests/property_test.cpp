// Cross-module property sweeps (TEST_P): invariants that must hold over
// whole parameter ranges, not just the defaults.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "block/disk.hpp"
#include "block/raid.hpp"
#include "common/rng.hpp"
#include "fs/changelog.hpp"
#include "fs/fs_namespace.hpp"
#include "fs/journal.hpp"
#include "fs/purge.hpp"
#include "tools/scheduler.hpp"
#include "tools/spiderfsck/fsck.hpp"
#include "workload/checkpoint.hpp"
#include "workload/ior.hpp"

namespace spider {
namespace {

// --- disk envelope -------------------------------------------------------------------

class DiskEnvelopeP : public ::testing::TestWithParam<double> {};

TEST_P(DiskEnvelopeP, RandomFractionCalibrationHoldsAcrossProducts) {
  // Whatever random_fraction_1mb a disk product is specified with, the
  // model must deliver exactly that ratio at the 1 MiB calibration point.
  block::DiskParams params;
  params.random_fraction_1mb = GetParam();
  const block::Disk d(params, 0, 1.0, 1e-4);
  const double ratio =
      d.effective_bw(block::IoMode::kRandom, block::IoDir::kRead, 1_MiB) /
      d.effective_bw(block::IoMode::kSequential, block::IoDir::kRead);
  EXPECT_NEAR(ratio, GetParam(), 1e-9);
}

TEST_P(DiskEnvelopeP, RandomEfficiencyMonotoneInRequestSize) {
  block::DiskParams params;
  params.random_fraction_1mb = GetParam();
  const block::Disk d(params, 0, 1.0, 1e-4);
  double prev = 0.0;
  for (Bytes size : {4_KiB, 64_KiB, 256_KiB, 1_MiB, 4_MiB, 16_MiB}) {
    const double bw =
        d.effective_bw(block::IoMode::kRandom, block::IoDir::kRead, size);
    EXPECT_GE(bw, prev);
    prev = bw;
  }
}

INSTANTIATE_TEST_SUITE_P(Fractions, DiskEnvelopeP,
                         ::testing::Values(0.15, 0.20, 0.22, 0.25, 0.35));

// --- RAID geometry --------------------------------------------------------------------

class RaidGeometryP
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(RaidGeometryP, CapacityAndLossThresholdFollowGeometry) {
  const auto [data, parity] = GetParam();
  block::RaidParams params;
  params.data_disks = data;
  params.parity_disks = parity;
  std::vector<block::Disk> members;
  for (std::size_t i = 0; i < data + parity; ++i) {
    members.emplace_back(block::DiskParams{}, static_cast<std::uint32_t>(i),
                         1.0, 1e-4);
  }
  block::Raid6Group g(params, std::move(members));
  EXPECT_EQ(g.capacity(), data * block::DiskParams{}.capacity);
  // Exactly `parity` failures survive; one more loses data.
  for (std::size_t f = 0; f < parity; ++f) g.fail_member(f);
  EXPECT_FALSE(g.data_lost());
  g.fail_member(parity);
  EXPECT_TRUE(g.data_lost());
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, RaidGeometryP,
    ::testing::Values(std::pair<std::size_t, std::size_t>{8, 2},
                      std::pair<std::size_t, std::size_t>{4, 2},
                      std::pair<std::size_t, std::size_t>{8, 3},
                      std::pair<std::size_t, std::size_t>{10, 2}));

// --- IOR transfer-size curve ------------------------------------------------------------

class IorCapP : public ::testing::TestWithParam<double> {};

TEST_P(IorCapP, CapMonotoneUpToRpcAndPeaksThere) {
  const Bandwidth stream = GetParam() * kMBps;
  double prev = 0.0;
  for (Bytes t : {4_KiB, 16_KiB, 64_KiB, 256_KiB, 1_MiB}) {
    const double cap = workload::transfer_size_rate_cap(t, stream);
    EXPECT_GT(cap, prev);
    EXPECT_LE(cap, stream);
    prev = cap;
  }
  const double at_rpc = workload::transfer_size_rate_cap(1_MiB, stream);
  for (Bytes t : {2_MiB, 8_MiB, 64_MiB}) {
    EXPECT_LE(workload::transfer_size_rate_cap(t, stream), at_rpc);
  }
}

INSTANTIATE_TEST_SUITE_P(Streams, IorCapP,
                         ::testing::Values(100.0, 350.0, 620.0, 1200.0));

// --- purge safety -------------------------------------------------------------------------

class PurgeSafetyP : public ::testing::TestWithParam<double> {};

TEST_P(PurgeSafetyP, NeverPurgesInsideTheWindow) {
  const double window_days = GetParam();
  std::vector<std::unique_ptr<block::Raid6Group>> groups;
  std::vector<std::unique_ptr<fs::Ost>> osts;
  std::vector<fs::Ost*> ptrs;
  for (int i = 0; i < 4; ++i) {
    std::vector<block::Disk> members;
    for (int m = 0; m < 10; ++m) {
      members.emplace_back(block::DiskParams{}, m, 1.0, 1e-4);
    }
    groups.push_back(std::make_unique<block::Raid6Group>(block::RaidParams{},
                                                         std::move(members)));
    osts.push_back(std::make_unique<fs::Ost>(i, groups.back().get()));
    ptrs.push_back(osts.back().get());
  }
  fs::FsNamespace ns("scratch", ptrs);
  Rng rng(1);
  const auto now = static_cast<sim::SimTime>(60) * sim::kDay;
  std::vector<fs::FileId> inside, outside;
  for (int age_days = 0; age_days < 40; ++age_days) {
    const auto created = now - static_cast<sim::SimTime>(age_days) * sim::kDay;
    const auto id = ns.create_file(1, 1_GiB, created, rng);
    // A file touched exactly at the window boundary is kept (the purge
    // condition is strictly-older-than); classify it as inside.
    (static_cast<double>(age_days) <= window_days ? inside : outside)
        .push_back(id);
  }
  fs::run_purge(ns, now, fs::PurgePolicy{window_days});
  for (auto id : inside) EXPECT_TRUE(ns.exists(id)) << "window " << window_days;
  for (auto id : outside) EXPECT_FALSE(ns.exists(id));
}

INSTANTIATE_TEST_SUITE_P(Windows, PurgeSafetyP,
                         ::testing::Values(7.0, 14.0, 21.0, 30.0));

// --- checkpoint sizing rule -----------------------------------------------------------------

class CheckpointSizingP : public ::testing::TestWithParam<double> {};

TEST_P(CheckpointSizingP, RequiredBandwidthScalesWithFraction) {
  workload::CheckpointParams params;
  params.checkpoint_fraction = GetParam();
  const workload::CheckpointWorkload w(params);
  // bytes/window must equal fraction x memory / window exactly.
  EXPECT_NEAR(w.required_bandwidth(360.0),
              GetParam() * static_cast<double>(params.memory_bytes) / 360.0,
              1.0);
}

INSTANTIATE_TEST_SUITE_P(Fractions, CheckpointSizingP,
                         ::testing::Values(0.25, 0.5, 0.75, 1.0));

// --- scheduler load conservation --------------------------------------------------------------

class SchedulerConservationP : public ::testing::TestWithParam<int> {};

TEST_P(SchedulerConservationP, SchedulingMovesLoadButConservesIt) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  std::vector<tools::IosiSignature> apps;
  const int n = 2 + GetParam() % 4;
  for (int i = 0; i < n; ++i) {
    tools::IosiSignature sig;
    sig.found = true;
    sig.period_s = 300.0 * (1 + rng.uniform_index(4));
    sig.burst_duration_s = rng.uniform(20.0, 90.0);
    sig.burst_bytes = rng.uniform(50.0, 500.0) * 1e9;
    sig.confidence = 1.0;
    apps.push_back(sig);
  }
  const auto schedule = tools::schedule_applications(apps);
  tools::SchedulerConfig cfg;
  const std::vector<double> zeros(apps.size(), 0.0);
  const auto naive = tools::aggregate_timeline(apps, zeros, cfg);
  const auto planned = tools::aggregate_timeline(apps, schedule.offsets, cfg);
  double naive_sum = 0.0, planned_sum = 0.0;
  for (double v : naive) naive_sum += v;
  for (double v : planned) planned_sum += v;
  // Offsets shift bursts within the horizon; total volume stays within the
  // edge-effect tolerance of one period per app.
  EXPECT_NEAR(planned_sum, naive_sum, 0.25 * naive_sum);
  // And the peak never gets worse.
  EXPECT_LE(schedule.scheduled_peak_bw, schedule.naive_peak_bw + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchedulerConservationP, ::testing::Range(0, 8));

// --- fsck soundness ---------------------------------------------------------

class FsckSoundnessP : public ::testing::TestWithParam<int> {};

TEST_P(FsckSoundnessP, TruncatedJournalOrUnjournaledChurnNeverChecksClean) {
  // However the namespace and its op log are driven apart — a crash that
  // loses a journal tail, unlinks that never hit the journal, or both —
  // spiderfsck must never report the tree clean, and one repairing pass
  // must reconcile it.
  const std::uint64_t seed = static_cast<std::uint64_t>(GetParam());
  Rng rng(0x5fc5u + seed * 0x9e3779b97f4a7c15ull);
  tools::SyntheticFsConfig cfg;
  cfg.seed = 100 + seed;
  cfg.churn = 0.10 + 0.05 * static_cast<double>(seed % 5);
  tools::SyntheticFs fs = tools::make_synthetic_fs(cfg);
  ASSERT_TRUE(tools::run_fsck(fs.target()).clean());

  const int mode = GetParam() % 3;  // 0: truncate, 1: churn, 2: both
  if (mode == 0 || mode == 2) {
    // Crash-truncate: keep a strict prefix, dropping at least one record.
    const std::uint64_t last = fs.journal->last_txid();
    ASSERT_GT(last, 0u);
    fs.journal->truncate_to(rng.uniform_index(last));
  }
  if (mode == 1 || mode == 2) {
    // Unlink live files behind the journal's back.
    const std::vector<fs::FileId> live = fs.ns->live_ids();
    ASSERT_FALSE(live.empty());
    const std::size_t victims = 1 + rng.uniform_index(3);
    for (std::size_t i = 0; i < victims && i < live.size(); ++i) {
      ASSERT_TRUE(fs.ns->unlink(live[i], 0));
    }
  }

  const tools::FsckReport dry = tools::run_fsck(fs.target());
  ASSERT_FALSE(dry.clean()) << "mode=" << mode << " seed=" << seed;

  tools::FsckOptions repair;
  repair.repair = true;
  repair.jobs = 1 + rng.uniform_index(4);
  tools::run_fsck(fs.target(), repair);
  EXPECT_TRUE(tools::run_fsck(fs.target()).clean())
      << "mode=" << mode << " seed=" << seed << "\n"
      << tools::fsck_report_json(tools::run_fsck(fs.target()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, FsckSoundnessP, ::testing::Range(0, 9));

// --- changelog crash consistency ------------------------------------------
//
// The ROADMAP item 2 property: a changelog consumer that detects the
// crash-rewind (cursor_ahead) and rebuilds is indistinguishable, at any
// shard fan-out, from a consumer built from scratch over the same log —
// even when the crash makes the log reuse txids for different operations.

namespace {

/// One random namespace mutation; the attached log records it.
void churn_once(fs::FsNamespace& ns, std::vector<fs::FileId>& pool,
                sim::SimTime now, Rng& rng) {
  const std::uint64_t roll = rng.uniform_index(10);
  if (roll < 3 || pool.empty()) {
    const fs::FileId id = ns.create_file(
        static_cast<std::uint32_t>(rng.uniform_index(6)),
        (1 + rng.uniform_index(16)) * 1_MiB, now, rng);
    if (id != fs::kNoFile) pool.push_back(id);
    return;
  }
  const std::size_t pick =
      static_cast<std::size_t>(rng.uniform_index(pool.size()));
  const fs::FileId victim = pool[pick];
  if (roll < 5) {
    if (ns.unlink(victim, now)) {
      pool[pick] = pool.back();
      pool.pop_back();
    }
  } else if (roll < 7) {
    ns.touch_file(victim, now);
  } else if (roll < 9) {
    ns.resize_file(victim, (1 + rng.uniform_index(16)) * 1_MiB, now);
  } else {
    ns.set_project(victim,
                   static_cast<std::uint32_t>(rng.uniform_index(6)), now);
  }
}

}  // namespace

class ChangelogCrashP : public ::testing::TestWithParam<int> {};

TEST_P(ChangelogCrashP, DetectAndRebuildConvergesWithFromScratchReplay) {
  const int seed = GetParam();
  Rng rng(4242 + static_cast<std::uint64_t>(seed));

  tools::SyntheticFsConfig cfg;
  cfg.files = 96;
  cfg.churn = 0.25;
  cfg.seed = 100 + static_cast<std::uint64_t>(seed);
  tools::SyntheticFs fs = tools::make_synthetic_fs(cfg);
  fs::FsNamespace& ns = *fs.ns;
  fs::OpLog& log = *fs.journal;
  ns.attach_oplog(&log, fs::kLogDefault);

  fs::ChangelogAccounting acct(
      static_cast<std::uint32_t>(1 + rng.uniform_index(4)));
  ASSERT_FALSE(acct.consume(log).cursor_ahead);
  std::vector<fs::FileId> pool = ns.live_ids();

  bool crashed = false;
  sim::SimTime now = 0;
  for (int round = 0; round < 6; ++round) {
    const std::size_t ops = 16 + rng.uniform_index(32);
    for (std::size_t op = 0; op < ops; ++op) {
      now += sim::kSecond;
      churn_once(ns, pool, now, rng);
    }
    log.commit(log.last_txid());

    if (round == 3) {
      // Crash: lose a committed suffix the consumer already applied. The
      // consumer MUST notice (txids will be reused) and rebuild; silently
      // continuing is the misaccounting this property forbids.
      log.truncate_to(rng.uniform_index(acct.cursor()));
      crashed = true;
      const fs::ConsumeResult res = acct.consume(log);
      ASSERT_TRUE(res.cursor_ahead) << "seed=" << seed;
      const fs::ConsumeResult rebuilt = acct.rebuild(log);
      ASSERT_FALSE(rebuilt.cursor_ahead) << "seed=" << seed;
      ASSERT_FALSE(rebuilt.gap) << "seed=" << seed;
      continue;
    }

    const fs::ConsumeResult res = acct.consume(log);
    ASSERT_FALSE(res.cursor_ahead) << "seed=" << seed << " round=" << round;
    ASSERT_FALSE(res.gap) << "seed=" << seed << " round=" << round;
    if (!crashed) {
      // Until the crash, the log and the namespace agree, so the derived
      // accounting must match ground truth exactly. (After the crash the
      // namespace keeps the lost mutations' effects — by design only the
      // committed prefix is authoritative for consumers.)
      EXPECT_EQ(acct.usage(), ns.usage_by_project())
          << "seed=" << seed << " round=" << round;
    }
  }

  // The surviving consumer is byte-identical to one built from scratch
  // over the same committed prefix, at a different shard fan-out.
  fs::ChangelogAccounting scratch(
      static_cast<std::uint32_t>(1 + rng.uniform_index(8)));
  const fs::ConsumeResult replay = scratch.rebuild(log);
  ASSERT_FALSE(replay.cursor_ahead);
  ASSERT_FALSE(replay.gap);
  EXPECT_EQ(acct.table_hash(), scratch.table_hash()) << "seed=" << seed;
  EXPECT_EQ(acct.usage(), scratch.usage()) << "seed=" << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChangelogCrashP, ::testing::Range(0, 8));

// --- changelog shard determinism ------------------------------------------

class ChangelogShardsP : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(ChangelogShardsP, AccountingIsShardCountInvariant) {
  const std::uint32_t shards = GetParam();
  Rng rng(77);

  tools::SyntheticFsConfig cfg;
  cfg.files = 128;
  cfg.churn = 0.25;
  tools::SyntheticFs fs = tools::make_synthetic_fs(cfg);
  fs::FsNamespace& ns = *fs.ns;
  fs::OpLog& log = *fs.journal;
  ns.attach_oplog(&log, fs::kLogDefault);

  std::vector<fs::FileId> pool = ns.live_ids();
  sim::SimTime now = 0;
  for (int op = 0; op < 256; ++op) {
    now += sim::kSecond;
    churn_once(ns, pool, now, rng);
  }
  log.commit(log.last_txid());

  // Every fan-out derives the identical table — and the table is the truth.
  fs::ChangelogAccounting flat(1);
  flat.rebuild(log);
  fs::ChangelogAccounting acct(shards);
  acct.rebuild(log);
  EXPECT_EQ(acct.table_hash(), flat.table_hash()) << shards;
  EXPECT_EQ(acct.usage(), flat.usage()) << shards;
  EXPECT_EQ(acct.usage(), ns.usage_by_project()) << shards;
}

INSTANTIATE_TEST_SUITE_P(FanOut, ChangelogShardsP,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 16u));

}  // namespace
}  // namespace spider
