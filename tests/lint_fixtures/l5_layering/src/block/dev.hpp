// L5 fixture: true positive — block (layer 2) reaching up into workload
// (layer 3) inverts the architecture.
#pragma once

#include "workload/gen.hpp"

namespace fixture {
struct Dev {
  Gen g;
};
}  // namespace fixture
