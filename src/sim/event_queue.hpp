// Cancellable discrete-event queue.
//
// A binary heap keyed on (time, sequence) gives deterministic FIFO ordering
// for simultaneous events. Cancellation is lazy for the heap entry but eager
// for the callback map: cancel() frees the callback immediately (so captured
// state is released right away) and stale heap entries are skipped at pop
// time. When stale entries outnumber live ones the heap is compacted in
// place, which bounds memory even under cancel-heavy flow rescheduling —
// the flow network cancels and reschedules its next-completion event on
// every arrival, so without compaction the heap grows with every reschedule
// whose cancelled time lies beyond the simulation clock.
//
// Each event additionally carries a `site` hash identifying the scheduling
// call site; the replay harness (sim/replay.hpp) folds it into the event
// stream hash so divergent runs are localized to the first mismatching
// (time, id, site) triple.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "sim/time.hpp"

namespace spider::sim {

using EventId = std::uint64_t;
using EventFn = std::function<void()>;

class EventQueue {
 public:
  /// An event popped for execution.
  struct Fired {
    SimTime when = 0;
    EventId id = 0;
    std::uint64_t site = 0;  ///< hash of the scheduling call site
    EventFn fn;
  };

  /// Schedule fn at absolute time `when`. Returns an id usable with cancel().
  /// `site` is an opaque call-site hash recorded for replay (0 if untracked).
  EventId schedule(SimTime when, EventFn fn, std::uint64_t site = 0);

  /// Cancel a pending event. The callback is destroyed immediately; the heap
  /// entry is dropped lazily (or at the next compaction). Cancelling an
  /// already-fired or unknown id is a harmless no-op (returns false).
  bool cancel(EventId id);

  bool empty() const { return live_ == 0; }
  std::size_t size() const { return live_; }
  /// Heap entries currently held, including cancelled-but-not-yet-dropped
  /// ones. Exposed so tests can bound memory under cancel-heavy load.
  std::size_t heap_size() const { return heap_.size(); }

  /// Earliest pending event time; only valid when !empty().
  SimTime next_time() const;

  /// Pop the earliest event. Only valid when !empty().
  Fired pop();

 private:
  struct Entry {
    SimTime when;
    EventId id;
  };
  struct Pending {
    EventFn fn;
    std::uint64_t site = 0;
  };

  static bool later(const Entry& a, const Entry& b) {
    if (a.when != b.when) return a.when > b.when;
    return a.id > b.id;
  }

  void drop_cancelled() const;
  /// Drop every stale heap entry and re-heapify. Called when stale entries
  /// outnumber live ones, so total work stays amortized O(log n) per event.
  void compact();

  mutable std::vector<Entry> heap_;  // min-heap via `later` comparator
  // Pure lookup table: only find/contains/erase by id, never iterated, and
  // pop order is fixed by `later`'s total order on (when, id) — so hash
  // layout cannot leak into simulation results.
  // spiderlint: ordered-ok
  std::unordered_map<EventId, Pending> callbacks_;
  EventId next_id_ = 1;
  std::size_t live_ = 0;
};

}  // namespace spider::sim
