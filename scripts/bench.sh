#!/usr/bin/env bash
# Engine perf trajectory: build the engine benches in Release and write the
# machine-readable throughput reports to the repo root, each gated against
# its checked-in pre-PR baseline:
#   bench_micro_engine -> BENCH_engine.json (ci/bench-baseline-engine.json)
#   bench_macro_scale  -> BENCH_scale.json  (ci/bench-baseline-scale.json)
#   bench_fsck         -> BENCH_fsck.json   (ci/bench-baseline-fsck.json)
#   bench_changelog    -> BENCH_changelog.json (ci/bench-baseline-changelog.json)
#   bench_lint         -> BENCH_lint.json   (ci/bench-baseline-lint.json)
#
# Usage: scripts/bench.sh [--smoke] [build-dir]
#   --smoke     seconds-long run sized for CI; full mode is the default and
#               is what PR before/after records should quote.
#   build-dir   defaults to build-bench/ (kept separate from build/ so a
#               sanitizer or Debug tree never pollutes perf numbers).
#
# Exit code is non-zero when any bench's shape check fails or a metric drops
# below the 0.60x regression floor of its baseline.
set -euo pipefail

cd "$(dirname "$0")/.."

SMOKE=""
BUILD_DIR="build-bench"
for arg in "$@"; do
  case "${arg}" in
    --smoke) SMOKE="--smoke" ;;
    --*) echo "usage: scripts/bench.sh [--smoke] [build-dir]" >&2; exit 2 ;;
    *) BUILD_DIR="${arg}" ;;
  esac
done

JOBS="$(nproc 2>/dev/null || echo 4)"
echo "=== [bench] configure + build (Release) ==="
cmake -B "${BUILD_DIR}" -S . -DCMAKE_BUILD_TYPE=Release
cmake --build "${BUILD_DIR}" -j "${JOBS}" \
    --target bench_micro_engine bench_macro_scale bench_fsck bench_changelog bench_lint

echo "=== [bench] engine throughput ==="
"${BUILD_DIR}/bench/bench_micro_engine" \
    --spider-json=BENCH_engine.json \
    --baseline=ci/bench-baseline-engine.json \
    ${SMOKE}

echo "=== [bench] macro-scale sharded engine ==="
"${BUILD_DIR}/bench/bench_macro_scale" \
    --spider-json=BENCH_scale.json \
    --baseline=ci/bench-baseline-scale.json \
    ${SMOKE}

echo "=== [bench] spiderfsck scan throughput ==="
"${BUILD_DIR}/bench/bench_fsck" \
    --spider-json=BENCH_fsck.json \
    --baseline=ci/bench-baseline-fsck.json \
    ${SMOKE}

echo "=== [bench] changelog incremental vs scan ==="
"${BUILD_DIR}/bench/bench_changelog" \
    --spider-json=BENCH_changelog.json \
    --baseline=ci/bench-baseline-changelog.json \
    ${SMOKE}

echo "=== [bench] spiderlint whole-tree wall time ==="
"${BUILD_DIR}/bench/bench_lint" \
    --spider-json=BENCH_lint.json \
    --baseline=ci/bench-baseline-lint.json \
    ${SMOKE}
