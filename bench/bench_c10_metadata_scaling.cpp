// C10 (Section IV-C): metadata scaling — why Spider is split into multiple
// namespaces, and why the paper recommends "using both DNE and multiple
// namespaces, concurrently".
//
// "Lustre supports a single metadata server per namespace. This limitation
// cannot sustain the necessary rate of concurrent file system metadata
// operations for the OLCF user workloads."
#include <iostream>

#include <vector>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "fs/dne.hpp"
#include "fs/mds.hpp"

int main() {
  using namespace spider;
  using namespace spider::fs;

  bench::banner("C10: metadata throughput and latency under a center-wide op storm");

  // The center's aggregate metadata demand, in weighted ops/sec: a large
  // job creating files plus interactive users stat'ing.
  const double offered = 55e3;

  struct Config {
    const char* name;
    std::size_t namespaces;
    std::size_t dne_shards;
  };
  const Config configs[] = {
      {"1 namespace, classic MDS", 1, 1},
      {"2 namespaces (Spider II)", 2, 1},
      {"4 namespaces (Spider I)", 4, 1},
      {"1 namespace + DNE x4", 1, 4},
      {"2 namespaces + DNE x4 (recommended)", 2, 4},
  };

  Table table;
  table.set_columns({"configuration", "capacity kops/s", "throughput kops/s",
                     "mean latency ms", "saturated"});
  double single_throughput = 0.0, recommended_throughput = 0.0;
  double single_latency = 0.0, recommended_latency = 0.0;
  for (const auto& cfg : configs) {
    MdsParams params;
    params.dne_shards = cfg.dne_shards;
    const Mds mds(params);
    const double capacity =
        mds.capacity_ops() * static_cast<double>(cfg.namespaces);
    const double per_ns_offered = offered / static_cast<double>(cfg.namespaces);
    const double throughput =
        mds.throughput(per_ns_offered) * static_cast<double>(cfg.namespaces);
    const double latency = mds.mean_latency_s(per_ns_offered);
    const bool saturated = per_ns_offered >= mds.capacity_ops();
    if (cfg.namespaces == 1 && cfg.dne_shards == 1) {
      single_throughput = throughput;
      single_latency = latency;
    }
    if (cfg.namespaces == 2 && cfg.dne_shards == 4) {
      recommended_throughput = throughput;
      recommended_latency = latency;
    }
    table.add_row({std::string(cfg.name), capacity / 1e3, throughput / 1e3,
                   latency * 1e3, std::string(saturated ? "yes" : "no")});
  }
  table.print(std::cout);

  // Why the paper recommends DNE *and* namespaces concurrently: DNE phase 1
  // shards by directory, so a single hot directory still lands on one MDT.
  {
    DneNamespace dne;  // 4 MDTs x 20 kops/s
    std::vector<double> spread(1000, offered / 1000.0);
    std::vector<double> hot(1000, 0.0);
    hot[0] = offered;
    std::cout << "\nDNE x4 under " << offered / 1e3
              << " kops/s: spread over 1000 dirs -> "
              << dne.max_throughput(spread) / 1e3
              << " kops/s; one hot directory -> "
              << dne.max_throughput(hot) / 1e3
              << " kops/s (one MDT's worth — hence namespaces too)\n";
  }

  // The stat-storm corollary: stripe-count-1 best practice.
  const Mds mds;
  std::cout << "\nstat cost by stripe count (getattr units): 1 -> "
            << mds.op_cost(MetaOp::kStat, 1) << ", 4 -> "
            << mds.op_cost(MetaOp::kStat, 4) << ", 16 -> "
            << mds.op_cost(MetaOp::kStat, 16)
            << "  (why small files should use stripe count 1)\n\n";

  bench::ShapeChecker checker;
  checker.check(single_throughput < offered,
                "a single MDS cannot sustain the center's metadata rate");
  checker.check(recommended_throughput >= offered * 0.999,
                "namespaces + DNE absorb the full op storm");
  checker.check(recommended_latency < 0.05 * single_latency,
                "latency collapses when the MDS leaves saturation");
  checker.check(mds.op_cost(MetaOp::kStat, 16) > 4.0 * mds.op_cost(MetaOp::kStat, 1),
                "wide striping multiplies stat cost (stripe-1 best practice)");
  return checker.exit_code();
}
