#include "tools/iosi.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/stats.hpp"

namespace spider::tools {

namespace {
double median_of(std::vector<double> v) {
  if (v.empty()) return 0.0;
  const std::size_t mid = v.size() / 2;
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid), v.end());
  return v[mid];
}
}  // namespace

std::vector<DetectedBurst> detect_bursts(std::span<const double> log,
                                         double bin_s, const IosiConfig& cfg) {
  std::vector<DetectedBurst> bursts;
  if (log.empty()) return bursts;
  // Robust threshold: median + k * MAD. Background noise stays below it;
  // application bursts cross it.
  std::vector<double> values(log.begin(), log.end());
  const double med = median_of(values);
  std::vector<double> dev(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    dev[i] = std::abs(values[i] - med);
  }
  const double mad = median_of(dev);
  const double peak = *std::max_element(values.begin(), values.end());
  const double threshold =
      std::max(med + cfg.mad_multiplier * std::max(mad, 1e-9 * med),
               cfg.min_fraction_of_peak * peak);

  bool in_burst = false;
  DetectedBurst cur;
  std::size_t bins_in_burst = 0;
  for (std::size_t i = 0; i <= log.size(); ++i) {
    const bool hot = i < log.size() && log[i] > threshold;
    if (hot && !in_burst) {
      in_burst = true;
      cur = DetectedBurst{static_cast<double>(i) * bin_s, 0.0, 0.0};
      bins_in_burst = 0;
    }
    if (hot) {
      cur.bytes += (log[i] - med) * bin_s;  // burst volume above background
      ++bins_in_burst;
    }
    if (!hot && in_burst) {
      in_burst = false;
      cur.duration_s = static_cast<double>(bins_in_burst) * bin_s;
      if (bins_in_burst >= cfg.min_burst_bins) bursts.push_back(cur);
    }
  }
  return bursts;
}

IosiSignature extract_signature(std::span<const std::vector<double>> run_logs,
                                double bin_s, const IosiConfig& cfg) {
  IosiSignature sig;
  std::vector<double> per_run_period;
  std::vector<double> per_run_duration;
  std::vector<double> per_run_bytes;
  for (const auto& log : run_logs) {
    const auto bursts = detect_bursts(log, bin_s, cfg);
    sig.bursts_seen += bursts.size();
    if (bursts.size() < 2) continue;
    // Median gap between consecutive burst starts is this run's period.
    std::vector<double> gaps;
    for (std::size_t i = 1; i < bursts.size(); ++i) {
      gaps.push_back(bursts[i].start_s - bursts[i - 1].start_s);
    }
    per_run_period.push_back(median_of(gaps));
    std::vector<double> durs;
    std::vector<double> vols;
    for (const auto& b : bursts) {
      durs.push_back(b.duration_s);
      vols.push_back(b.bytes);
    }
    per_run_duration.push_back(median_of(durs));
    per_run_bytes.push_back(median_of(vols));
  }
  if (per_run_period.empty()) return sig;

  const double consensus = median_of(per_run_period);
  std::size_t agree = 0;
  for (double p : per_run_period) {
    if (std::abs(p - consensus) <= 0.1 * consensus) ++agree;
  }
  sig.found = true;
  sig.period_s = consensus;
  sig.burst_duration_s = median_of(per_run_duration);
  sig.burst_bytes = median_of(per_run_bytes);
  sig.confidence =
      static_cast<double>(agree) / static_cast<double>(per_run_period.size());
  return sig;
}

}  // namespace spider::tools
