file(REMOVE_RECURSE
  "CMakeFiles/bench_c15_iosi.dir/bench_c15_iosi.cpp.o"
  "CMakeFiles/bench_c15_iosi.dir/bench_c15_iosi.cpp.o.d"
  "bench_c15_iosi"
  "bench_c15_iosi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_c15_iosi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
