// Deterministic-replay harness.
//
// The paper's operational lesson (Lesson 14 and the release-testing
// practice) is that a storage system is only trustworthy when its behavior
// is *checkable*: two runs of the same scenario must be provably identical
// before perf work stacks parallelism and caching on top. ReplayRecorder
// makes that property testable: attached to a Simulator it folds every
// executed event's (time, event-id, scheduling-site) triple into a running
// FNV-1a hash and keeps the raw stream, so
//
//   * two same-seed runs can be asserted bit-identical by comparing one
//     64-bit hash, and
//   * when they are NOT identical, first_divergence() names the exact event
//     index — and its time/id/site — where the runs forked, which localizes
//     the nondeterminism to a single scheduling call site.
//
// ResourceStats telemetry from a FlowNetwork can be folded in as a separate
// hash (bit-exact over the raw double representations), so rate-solver or
// telemetry nondeterminism is caught even when the event stream matches.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace spider::sim {

class Simulator;
class FlowNetwork;
using EventId = std::uint64_t;

class ReplayRecorder {
 public:
  /// One executed event as seen by the recorder.
  struct Record {
    SimTime when = 0;
    EventId id = 0;
    std::uint64_t site = 0;

    bool operator==(const Record&) const = default;
  };

  /// Install this recorder as `sim`'s observer. Replaces any previous
  /// observer; the recorder must outlive the simulator's run (the observer
  /// is a non-owning FunctionRef bound to this object).
  void attach(Simulator& sim);

  /// Fold one executed event into the stream (attach() wires this up).
  void on_event(SimTime when, EventId id, std::uint64_t site);

  /// Observer call operator so a FunctionRef can bind the recorder directly.
  void operator()(SimTime when, EventId id, std::uint64_t site) {
    on_event(when, id, site);
  }

  /// Fold a FlowNetwork's per-resource telemetry (served, busy_integral,
  /// current_load, flows_seen) into the stats hash. Call after the run, or
  /// at checkpoints — both runs must call it at the same points.
  void record_resource_stats(const FlowNetwork& net);

  /// Running hash of the executed-event stream.
  std::uint64_t event_hash() const { return event_hash_; }
  /// Running hash of recorded ResourceStats snapshots.
  std::uint64_t stats_hash() const { return stats_hash_; }
  /// Single value combining both streams; equal iff both match.
  std::uint64_t combined_hash() const;

  std::size_t events_recorded() const { return records_.size(); }
  const std::vector<Record>& records() const { return records_; }

  /// Index of the first event where two recordings disagree (differing
  /// record, or one stream ending early). Returns npos when the event
  /// streams are identical.
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
  static std::size_t first_divergence(const ReplayRecorder& a,
                                      const ReplayRecorder& b);

  /// Human-readable description of the divergence between two recordings
  /// ("identical" when there is none) for test failure messages.
  static std::string divergence_report(const ReplayRecorder& a,
                                       const ReplayRecorder& b);

 private:
  std::vector<Record> records_;
  std::uint64_t event_hash_ = 1469598103934665603ull;  // FNV-1a offset basis
  std::uint64_t stats_hash_ = 1469598103934665603ull;
};

}  // namespace spider::sim
