file(REMOVE_RECURSE
  "libspider_infra.a"
)
