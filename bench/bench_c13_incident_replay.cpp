// C13 (Section IV-E, Lesson 11): replay of the 2010 human-error incident.
//
// Paper: a disk rebuild + controller-enclosure failure + the array being
// taken offline 18 hours later, still rebuilding, lost journal data for
// more than a million files; recovery took over two weeks at a 95% success
// rate. "A design using 10 enclosures per storage controller pair would
// have tolerated this failure scenario."
#include <iostream>

#include "bench_util.hpp"
#include "block/failure.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"

int main() {
  using namespace spider;
  using namespace spider::block;

  bench::banner("C13: the 2010 enclosure-loss-during-rebuild incident");

  IncidentOutcome outcomes[2];
  const std::size_t designs[2] = {5, 10};
  for (int i = 0; i < 2; ++i) {
    Rng rng(2014);
    IncidentConfig cfg;
    cfg.enclosures = designs[i];
    outcomes[i] = replay_incident_2010(cfg, rng);
    std::cout << "\n--- " << designs[i]
              << " enclosures per controller pair ---\n";
    for (const auto& line : outcomes[i].timeline) std::cout << "  " << line << "\n";
  }

  Table table;
  table.set_columns({"design", "data lost", "groups lost", "journal files lost",
                     "recovered %", "recovery days"});
  for (int i = 0; i < 2; ++i) {
    table.add_row({std::to_string(designs[i]) + " enclosures",
                   std::string(outcomes[i].data_lost ? "YES" : "no"),
                   static_cast<std::int64_t>(outcomes[i].groups_lost),
                   static_cast<std::int64_t>(outcomes[i].journal_files_lost),
                   outcomes[i].recovered_fraction * 100.0,
                   outcomes[i].recovery_days});
  }
  std::cout << "\n";
  table.print(std::cout);
  std::cout << "\n";

  bench::ShapeChecker checker;
  checker.check(outcomes[0].data_lost,
                "5-enclosure design (Spider I) loses data in the replay");
  checker.check(outcomes[0].journal_files_lost > 1'000'000,
                "journal loss exceeds a million files (paper)");
  checker.check(outcomes[0].recovery_days > 14.0,
                "recovery takes more than two weeks (paper)");
  checker.check(!outcomes[1].data_lost,
                "10-enclosure design tolerates the same event (paper)");
  return checker.exit_code();
}
