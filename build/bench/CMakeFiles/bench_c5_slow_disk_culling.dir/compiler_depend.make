# Empty compiler generated dependencies file for bench_c5_slow_disk_culling.
# This may be replaced when dependencies are built.
