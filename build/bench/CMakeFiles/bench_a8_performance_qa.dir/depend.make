# Empty dependencies file for bench_a8_performance_qa.
# This may be replaced when dependencies are built.
