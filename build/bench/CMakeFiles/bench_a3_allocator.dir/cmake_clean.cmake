file(REMOVE_RECURSE
  "CMakeFiles/bench_a3_allocator.dir/bench_a3_allocator.cpp.o"
  "CMakeFiles/bench_a3_allocator.dir/bench_a3_allocator.cpp.o.d"
  "bench_a3_allocator"
  "bench_a3_allocator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a3_allocator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
