// Multi-namespace file system (Spider I: four namespaces; Spider II: two).
//
// Projects are statically distributed across namespaces by the capacity
// planner (Section IV-C / tools/capacity_planner); the file system routes
// per-project operations to the owning namespace.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "fs/fs_namespace.hpp"

namespace spider::fs {

class FileSystem {
 public:
  explicit FileSystem(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  std::size_t add_namespace(std::unique_ptr<FsNamespace> ns);
  std::size_t namespaces() const { return namespaces_.size(); }
  FsNamespace& ns(std::size_t i) { return *namespaces_.at(i); }
  const FsNamespace& ns(std::size_t i) const { return *namespaces_.at(i); }
  /// Lookup by name; nullptr when absent.
  FsNamespace* find(const std::string& name);

  /// Pin a project to a namespace (capacity-planner output).
  void assign_project(std::uint32_t project, std::size_t ns_index);
  /// Namespace that owns a project (unassigned projects hash round-robin).
  std::size_t namespace_of(std::uint32_t project) const;

  /// Create a file in the project's namespace.
  FileId create_file(std::uint32_t project, Bytes size, sim::SimTime now,
                     Rng& rng, std::optional<StripePolicy> policy = {});

  Bytes capacity() const;
  Bytes used() const;
  std::uint64_t live_files() const;

 private:
  std::string name_;
  std::vector<std::unique_ptr<FsNamespace>> namespaces_;
  std::map<std::uint32_t, std::size_t> project_ns_;
};

}  // namespace spider::fs
