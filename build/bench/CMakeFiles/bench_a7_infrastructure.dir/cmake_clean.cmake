file(REMOVE_RECURSE
  "CMakeFiles/bench_a7_infrastructure.dir/bench_a7_infrastructure.cpp.o"
  "CMakeFiles/bench_a7_infrastructure.dir/bench_a7_infrastructure.cpp.o.d"
  "bench_a7_infrastructure"
  "bench_a7_infrastructure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a7_infrastructure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
