// libPIO: the balanced data placement runtime library (Section VI-A).
//
// "Our placement library (libPIO) distributes the load on different storage
// components based on their utilization and reduces the load imbalance. In
// particular, it takes into account the load on clients, I/O routers,
// OSSes, and OSTs and encapsulates these low-level infrastructure details
// to provide I/O placement suggestions for user applications via a simple
// interface." The paper measured >70% per-job bandwidth gain with synthetic
// benchmarks at scale and 24% for S3D in production noise.
//
// The library is topology-aware but engine-agnostic: the caller feeds it a
// load snapshot (utilizations in [0,1]) and it returns per-writer
// placement suggestions. The simple interface mirrors the ~30-line
// application integration the paper reports.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.hpp"

namespace spider::tools {

/// Snapshot of component utilizations, indexed by component id.
struct LoadSnapshot {
  std::vector<double> ost_load;
  std::vector<double> oss_load;
  std::vector<double> router_load;
};

/// Static wiring libPIO needs: which OSS serves each OST, and which IB
/// leaf each OSS and router sit on.
struct StorageTopology {
  std::vector<std::uint32_t> ost_to_oss;
  std::vector<std::size_t> oss_to_leaf;
  std::vector<std::size_t> router_to_leaf;
};

struct PlacementSuggestion {
  std::uint32_t ost = 0;
  std::size_t router = 0;
};

struct LibPioWeights {
  double ost_weight = 1.0;
  double oss_weight = 0.8;
  double router_weight = 0.6;
};

class LibPio {
 public:
  LibPio(StorageTopology topology, LibPioWeights weights = {});

  const StorageTopology& topology() const { return topology_; }

  /// Load-aware placement for `writers` concurrent writers: picks the
  /// least-loaded (OST + its OSS) targets, spreads writers across OSS
  /// nodes, and pairs each with the least-loaded router on the destination
  /// leaf.
  std::vector<PlacementSuggestion> place_job(std::size_t writers,
                                             const LoadSnapshot& loads) const;

  /// Baseline: what an unaware application gets — OSTs assigned
  /// round-robin from a random start, routers round-robin over all.
  std::vector<PlacementSuggestion> place_default(std::size_t writers,
                                                 Rng& rng) const;

 private:
  double ost_score(std::uint32_t ost, const LoadSnapshot& loads) const;
  std::size_t best_router_for_leaf(std::size_t leaf,
                                   const LoadSnapshot& loads,
                                   std::span<const double> extra_router_load) const;

  StorageTopology topology_;
  LibPioWeights weights_;
};

}  // namespace spider::tools
