// Scalable System Unit: the procurement building block (Section III-A).
//
// The Spider II SOW defined the SSU as "the unit of configuration, pricing,
// benchmarking, and integration". One Spider II SSU is 56 RAID-6 8+2 groups
// (560 disks) behind one controller pair; 36 SSUs form the file system
// (20,160 disks, 2,016 OSTs).
#pragma once

#include <cstdint>
#include <vector>

#include "block/controller.hpp"
#include "block/disk.hpp"
#include "block/enclosure.hpp"
#include "block/raid.hpp"
#include "common/rng.hpp"

namespace spider::block {

struct SsuParams {
  std::size_t raid_groups = 56;
  RaidParams raid;
  DiskParams disk;
  PopulationModel population;
  /// Enclosures the members of each group are spread over. Spider I's
  /// incident design used 5 (two members per enclosure); 10 tolerates an
  /// enclosure loss during rebuild (Lesson 11).
  std::size_t enclosures = 10;
  ControllerParams controller;
};

class Ssu {
 public:
  Ssu(const SsuParams& params, std::uint32_t id, Rng& rng);

  std::uint32_t id() const { return id_; }
  const SsuParams& params() const { return params_; }
  std::size_t groups() const { return groups_.size(); }
  Raid6Group& group(std::size_t i) { return groups_.at(i); }
  const Raid6Group& group(std::size_t i) const { return groups_.at(i); }
  ControllerPair& controller() { return controller_; }
  const ControllerPair& controller() const { return controller_; }
  const EnclosureLayout& layout() const { return layout_; }

  std::size_t total_disks() const;
  Bytes capacity() const;

  /// Delivered bandwidth for a uniform workload over all groups:
  /// min(disk-side aggregate, controller cap).
  Bandwidth delivered_bw(IoMode mode, IoDir dir, Bytes request_size = 1_MiB) const;

  /// Per-group delivered bandwidths (culling tools bin these).
  std::vector<double> group_bandwidths(IoMode mode, IoDir dir,
                                       Bytes request_size = 1_MiB) const;

  /// Fail every group member housed in enclosure `e` (hardware loss).
  void enclosure_down(std::uint32_t e);
  /// Restore members from enclosure `e` in groups that did not lose data.
  void enclosure_up(std::uint32_t e);

  /// Replace a group member with a fresh unit drawn from the healthy part
  /// of the population (slow-disk culling, Lesson 13).
  void replace_disk(std::size_t group, std::size_t member, Rng& rng);

 private:
  SsuParams params_;
  std::uint32_t id_;
  std::vector<Raid6Group> groups_;
  ControllerPair controller_;
  EnclosureLayout layout_;
  std::uint32_t next_disk_id_;
};

/// A fresh unit from the healthy (non-slow) portion of the population.
Disk draw_healthy_disk(const DiskParams& disk, const PopulationModel& pop,
                       std::uint32_t id, Rng& rng);

}  // namespace spider::block
