#include "tools/lint/callgraph.hpp"

#include <algorithm>

namespace spider::lint {

namespace {

int depth_delta(const Tok& tok) {
  if (tok.kind != TokKind::kPunct || tok.text.size() != 1) return 0;
  const char c = tok.text[0];
  if (c == '(' || c == '<' || c == '[' || c == '{') return 1;
  if (c == ')' || c == '>' || c == ']' || c == '}') return -1;
  return 0;
}

}  // namespace

std::vector<ArgRange> split_args(const std::vector<Tok>& t, std::size_t open,
                                 std::size_t close) {
  std::vector<ArgRange> args;
  if (close <= open + 1 || close > t.size()) return args;
  std::size_t begin = open + 1;
  int depth = 0;
  for (std::size_t i = open + 1; i < close; ++i) {
    depth += depth_delta(t[i]);
    if (depth == 0 && is_punct(t[i], ",")) {
      args.push_back(ArgRange{begin, i});
      begin = i + 1;
    }
  }
  args.push_back(ArgRange{begin, close});
  return args;
}

std::string reduce_index(const std::vector<Tok>& t, std::size_t begin,
                         std::size_t end) {
  if (begin >= end || end > t.size()) return {};
  // shard_of(X) anywhere in the range: the domain index governs the shard.
  for (std::size_t i = begin; i + 1 < end; ++i) {
    if (is_ident(t[i], "shard_of") && is_punct(t[i + 1], "(")) {
      const std::size_t close = matching_close(t, i + 1);
      if (close < end) return reduce_index(t, i + 2, close);
    }
  }
  // static_cast<T>(X): the cast does not change the governing identifier.
  if (is_ident(t[begin], "static_cast") && begin + 1 < end &&
      is_punct(t[begin + 1], "<")) {
    const std::size_t angle = matching_close(t, begin + 1);
    if (angle + 1 < end && is_punct(t[angle + 1], "(")) {
      const std::size_t close = matching_close(t, angle + 1);
      if (close < end) return reduce_index(t, angle + 2, close);
    }
  }
  if (end - begin == 1 &&
      (t[begin].kind == TokKind::kIdent || t[begin].kind == TokKind::kNumber)) {
    return t[begin].text;
  }
  return {};
}

std::vector<std::string> param_names(const TokenStream& stream,
                                     const FunctionSym& fn) {
  const std::vector<Tok>& t = stream.tokens;
  std::vector<std::string> names;
  if (fn.params_begin >= fn.params_end) return names;
  std::size_t seg_begin = fn.params_begin;
  int depth = 0;
  auto close_segment = [&](std::size_t seg_end) {
    // The parameter name is the last depth-0 identifier before a depth-0
    // `=` (default argument) or the segment end.
    std::string name;
    int d = 0;
    for (std::size_t i = seg_begin; i < seg_end; ++i) {
      if (d == 0 && is_punct(t[i], "=")) break;
      if (d == 0 && t[i].kind == TokKind::kIdent) name = t[i].text;
      d += depth_delta(t[i]);
    }
    names.push_back(std::move(name));
    seg_begin = seg_end + 1;
  };
  for (std::size_t i = fn.params_begin; i < fn.params_end; ++i) {
    depth += depth_delta(t[i]);
    if (depth == 0 && is_punct(t[i], ",")) close_segment(i);
  }
  close_segment(fn.params_end);
  return names;
}

CallGraph::CallGraph(const TokenStream& stream, const FileSymbols& syms,
                     const std::vector<ShardOwnedMember>& shard_owned)
    : t_(stream.tokens) {
  for (const FunctionSym& fn : syms.functions) {
    if (!fn.is_definition) continue;
    defs_[fn.name].push_back(&fn);
    params_[&fn] = param_names(stream, fn);
  }

  // --- shard-handle returners (fixpoint over wrapper chains) ---------------
  handles_.insert("shard");
  for (bool changed = true; changed;) {
    changed = false;
    for (const auto& [name, defs] : defs_) {
      if (handles_.count(name) != 0) continue;
      for (const FunctionSym* fn : defs) {
        bool returns_handle = false;
        for (std::size_t i = fn->body_begin;
             i < fn->body_end && i < t_.size() && !returns_handle; ++i) {
          if (!is_ident(t_[i], "return")) continue;
          for (std::size_t j = i + 1; j < fn->body_end && j < t_.size(); ++j) {
            if (is_punct(t_[j], ";")) break;
            if (t_[j].kind == TokKind::kIdent &&
                handles_.count(t_[j].text) != 0 && j + 1 < t_.size() &&
                is_punct(t_[j + 1], "(")) {
              returns_handle = true;
              break;
            }
          }
        }
        if (returns_handle) {
          handles_.insert(name);
          changed = true;
          break;
        }
      }
    }
  }

  // --- parameters flowing into shard-handle schedule indices (fixpoint) ----
  auto note_sched_param = [&](const std::string& name, std::size_t idx,
                              bool& changed) {
    std::vector<std::size_t>& list = sched_params_[name];
    if (std::find(list.begin(), list.end(), idx) == list.end()) {
      list.push_back(idx);
      std::sort(list.begin(), list.end());
      changed = true;
    }
  };
  for (bool changed = true; changed;) {
    changed = false;
    for (const auto& [name, defs] : defs_) {
      for (const FunctionSym* fn : defs) {
        const std::vector<std::string>& names = params_[fn];
        if (names.empty()) continue;
        for (std::size_t i = fn->body_begin;
             i + 1 < fn->body_end && i + 1 < t_.size(); ++i) {
          if (t_[i].kind != TokKind::kIdent || !is_punct(t_[i + 1], "(")) {
            continue;
          }
          const std::size_t close = matching_close(t_, i + 1);
          if (close >= t_.size()) continue;
          // Direct: handle(IDX).schedule_at/..._in(...).
          if (handles_.count(t_[i].text) != 0 && close + 2 < t_.size() &&
              is_punct(t_[close + 1], ".") &&
              (is_ident(t_[close + 2], "schedule_at") ||
               is_ident(t_[close + 2], "schedule_in"))) {
            const std::string r = reduce_index(t_, i + 2, close);
            for (std::size_t p = 0; p < names.size(); ++p) {
              if (!r.empty() && names[p] == r) note_sched_param(name, p, changed);
            }
          }
          // Indirect: this function forwards a parameter into a callee's
          // sched-param position.
          const auto callee = sched_params_.find(t_[i].text);
          if (callee == sched_params_.end() || t_[i].text == name) continue;
          const std::vector<ArgRange> args = split_args(t_, i + 1, close);
          for (std::size_t j : callee->second) {
            if (j >= args.size()) continue;
            const std::string r = reduce_index(t_, args[j].begin, args[j].end);
            for (std::size_t p = 0; p < names.size(); ++p) {
              if (!r.empty() && names[p] == r) note_sched_param(name, p, changed);
            }
          }
        }
      }
    }
  }

  // --- transitive shard-owned touch (fixpoint) -----------------------------
  std::set<std::string> owned;
  for (const ShardOwnedMember& m : shard_owned) owned.insert(m.name);
  if (owned.empty()) return;
  for (const auto& [name, defs] : defs_) {
    for (const FunctionSym* fn : defs) {
      for (std::size_t i = fn->body_begin; i < fn->body_end && i < t_.size();
           ++i) {
        if (t_[i].kind == TokKind::kIdent && owned.count(t_[i].text) != 0) {
          touched_[name].insert(t_[i].text);
        }
      }
    }
  }
  for (bool changed = true; changed;) {
    changed = false;
    for (const auto& [name, defs] : defs_) {
      for (const FunctionSym* fn : defs) {
        for (std::size_t i = fn->body_begin;
             i + 1 < fn->body_end && i + 1 < t_.size(); ++i) {
          if (t_[i].kind != TokKind::kIdent || !is_punct(t_[i + 1], "(")) {
            continue;
          }
          const auto callee = touched_.find(t_[i].text);
          if (callee == touched_.end() || t_[i].text == name) continue;
          std::set<std::string>& mine = touched_[name];
          const std::size_t before = mine.size();
          mine.insert(callee->second.begin(), callee->second.end());
          if (mine.size() != before) changed = true;
        }
      }
    }
  }
}

const std::vector<const FunctionSym*>& CallGraph::definitions(
    const std::string& name) const {
  static const std::vector<const FunctionSym*> kEmpty;
  const auto it = defs_.find(name);
  return it == defs_.end() ? kEmpty : it->second;
}

const std::vector<std::string>& CallGraph::params_of(
    const FunctionSym& fn) const {
  static const std::vector<std::string> kEmpty;
  const auto it = params_.find(&fn);
  return it == params_.end() ? kEmpty : it->second;
}

bool CallGraph::is_handle_fn(const std::string& name) const {
  return handles_.count(name) != 0;
}

const std::vector<std::size_t>& CallGraph::sched_params(
    const std::string& name) const {
  static const std::vector<std::size_t> kEmpty;
  const auto it = sched_params_.find(name);
  return it == sched_params_.end() ? kEmpty : it->second;
}

const std::set<std::string>& CallGraph::touched_shard_owned(
    const std::string& name) const {
  static const std::set<std::string> kEmpty;
  const auto it = touched_.find(name);
  return it == touched_.end() ? kEmpty : it->second;
}

}  // namespace spider::lint
