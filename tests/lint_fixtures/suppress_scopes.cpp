// Suppression-scope fixture: the four scopes silence their target lines,
// and — the engineered true positive — `spiderlint-next-line` covers ONLY
// the immediately following line, so the declaration two lines below it
// still fires.
#include <unordered_map>

// spiderlint-file: site-ok — fixture-wide: scheduling here is test scaffolding

namespace fixture {

struct Queue {
  void schedule(long when, int payload) {
    (void)when;
    (void)payload;
  }
};

struct Scopes {
  std::unordered_map<int, int> a_;  // spiderlint: ordered-ok — same line
  // spiderlint: ordered-ok — comment-only line directly above
  std::unordered_map<int, int> b_;
  // spiderlint-next-line: ordered-ok — covers exactly one line
  std::unordered_map<int, int> c_;
  // spiderlint-next-line: ordered-ok — does NOT reach two lines down
  int spacer_ = 0;
  std::unordered_map<int, int> d_;  // must still fire

  void run(Queue& q) { q.schedule(5, 1); }  // silenced by spiderlint-file
};

}  // namespace fixture
