#include "net/lookahead.hpp"

#include <algorithm>

#include "net/fabric.hpp"
#include "net/torus.hpp"

namespace spider::net {

sim::SimTime min_torus_path_latency(const Torus3D& torus) {
  (void)torus;  // the hop floor is topology-independent; see header
  return kTorusHopLatency;
}

sim::SimTime cross_zone_path_latency(const IbFabric& fabric) {
  // router -> src leaf -> (core) -> dst leaf. Same-leaf zones skip the core
  // but still cross the leaf crossbar once.
  const std::size_t switch_hops = fabric.params().core_switches > 0 ? 3 : 2;
  return kLnetRouterTransit +
         static_cast<sim::SimTime>(switch_hops) * kIbSwitchHopLatency;
}

sim::SimTime serialization_time(const IbFabric& fabric, Bytes message) {
  const Bandwidth bw = fabric.params().port_bw;
  if (bw <= 0.0 || message == 0) return 0;
  return sim::from_seconds(static_cast<double>(message) / bw);
}

sim::SimTime cross_zone_lookahead(const IbFabric& fabric, Bytes min_message) {
  return cross_zone_path_latency(fabric) + serialization_time(fabric, min_message);
}

sim::SimTime min_lookahead(const Torus3D& torus, const IbFabric& fabric) {
  // Zero-byte floor: with mixed channels nothing guarantees a minimum
  // payload, so only the latency terms are safe.
  return std::min(min_torus_path_latency(torus),
                  cross_zone_lookahead(fabric, 0));
}

}  // namespace spider::net
