#include "workload/arrivals.hpp"

#include <algorithm>

namespace spider::workload {

ArrivalProcess::ArrivalProcess(const WorkloadMixParams& mix)
    : mix_(mix),
      arrival_(mix.arrival_alpha, mix.arrival_scale_s),
      idle_(mix.idle_alpha, mix.idle_scale_s) {}

double ArrivalProcess::next_gap_s(Rng& rng) {
  if (requests_left_in_burst_ <= 0.0) {
    // Start a new burst after an idle period.
    requests_left_in_burst_ =
        1.0 + rng.exponential(1.0 / mix_.burst_mean_requests);
    last_was_idle_ = true;
    return idle_.sample(rng);
  }
  requests_left_in_burst_ -= 1.0;
  last_was_idle_ = false;
  return arrival_.sample(rng);
}

std::vector<IoRequest> generate_trace(const WorkloadMixParams& mix,
                                      std::uint32_t clients, double duration_s,
                                      Rng& rng) {
  RequestSizeModel sizes(mix);
  std::vector<IoRequest> trace;
  for (std::uint32_t c = 0; c < clients; ++c) {
    Rng local = rng.fork(c);
    ArrivalProcess arrivals(mix);
    double t = 0.0;
    while (true) {
      t += arrivals.next_gap_s(local);
      if (t >= duration_s) break;
      IoRequest req;
      req.issue_time = sim::from_seconds(t);
      req.client = c;
      req.size = sizes.sample(local);
      req.dir = sample_dir(mix, local);
      // Bulk multi-MB requests stream sequentially; the small mode lands
      // scattered (metadata, headers, logs).
      req.mode = req.size >= 1_MB ? block::IoMode::kSequential
                                  : block::IoMode::kRandom;
      trace.push_back(req);
    }
  }
  std::sort(trace.begin(), trace.end(),
            [](const IoRequest& a, const IoRequest& b) {
              if (a.issue_time != b.issue_time) return a.issue_time < b.issue_time;
              return a.client < b.client;
            });
  return trace;
}

}  // namespace spider::workload
