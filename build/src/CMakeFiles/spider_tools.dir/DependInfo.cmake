
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tools/capacity_planner.cpp" "src/CMakeFiles/spider_tools.dir/tools/capacity_planner.cpp.o" "gcc" "src/CMakeFiles/spider_tools.dir/tools/capacity_planner.cpp.o.d"
  "/root/repo/src/tools/health.cpp" "src/CMakeFiles/spider_tools.dir/tools/health.cpp.o" "gcc" "src/CMakeFiles/spider_tools.dir/tools/health.cpp.o.d"
  "/root/repo/src/tools/iosi.cpp" "src/CMakeFiles/spider_tools.dir/tools/iosi.cpp.o" "gcc" "src/CMakeFiles/spider_tools.dir/tools/iosi.cpp.o.d"
  "/root/repo/src/tools/libpio.cpp" "src/CMakeFiles/spider_tools.dir/tools/libpio.cpp.o" "gcc" "src/CMakeFiles/spider_tools.dir/tools/libpio.cpp.o.d"
  "/root/repo/src/tools/lustredu.cpp" "src/CMakeFiles/spider_tools.dir/tools/lustredu.cpp.o" "gcc" "src/CMakeFiles/spider_tools.dir/tools/lustredu.cpp.o.d"
  "/root/repo/src/tools/ptools.cpp" "src/CMakeFiles/spider_tools.dir/tools/ptools.cpp.o" "gcc" "src/CMakeFiles/spider_tools.dir/tools/ptools.cpp.o.d"
  "/root/repo/src/tools/release_testing.cpp" "src/CMakeFiles/spider_tools.dir/tools/release_testing.cpp.o" "gcc" "src/CMakeFiles/spider_tools.dir/tools/release_testing.cpp.o.d"
  "/root/repo/src/tools/rfp.cpp" "src/CMakeFiles/spider_tools.dir/tools/rfp.cpp.o" "gcc" "src/CMakeFiles/spider_tools.dir/tools/rfp.cpp.o.d"
  "/root/repo/src/tools/scheduler.cpp" "src/CMakeFiles/spider_tools.dir/tools/scheduler.cpp.o" "gcc" "src/CMakeFiles/spider_tools.dir/tools/scheduler.cpp.o.d"
  "/root/repo/src/tools/slowdisk.cpp" "src/CMakeFiles/spider_tools.dir/tools/slowdisk.cpp.o" "gcc" "src/CMakeFiles/spider_tools.dir/tools/slowdisk.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/spider_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/spider_fs.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/spider_block.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/spider_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/spider_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/spider_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
