#include "core/scale_scenario.hpp"

#include <algorithm>
#include <stdexcept>

#include "net/lookahead.hpp"

namespace spider::core {

namespace {

/// Per-zone seed derivation (splitmix golden ratio, the same idiom the
/// spiderfault mutation fan-out uses) so zones draw independent streams.
constexpr std::uint64_t kSeedStride = 0x9e3779b97f4a7c15ull;

}  // namespace

ScaleScenario::ScaleScenario(const ScaleParams& params,
                             const net::IbFabric& fabric,
                             sim::ShardedSimulator& engine,
                             const sim::ShardMap& map)
    : params_(params), engine_(engine), map_(map) {
  if (params_.zones == 0) {
    throw std::invalid_argument("ScaleScenario: zones must be >= 1");
  }
  if (map_.domains() < params_.zones) {
    throw std::invalid_argument(
        "ScaleScenario: shard map covers fewer domains than zones");
  }
  if (map_.shards() > engine_.shards()) {
    throw std::invalid_argument(
        "ScaleScenario: shard map targets more shards than the engine has");
  }
  cross_latency_ = required_lookahead(fabric, params_);
  if (engine_.lookahead() > cross_latency_) {
    throw std::invalid_argument(
        "ScaleScenario: engine lookahead exceeds the cross-zone latency — "
        "cross notifies would breach the epoch contract");
  }
  zones_.reserve(params_.zones);
  for (std::size_t z = 0; z < params_.zones; ++z) {
    zones_.push_back(Zone{Rng(params_.seed ^ (kSeedStride * (z + 1))), {}});
  }
}

sim::SimTime ScaleScenario::required_lookahead(const net::IbFabric& fabric,
                                               const ScaleParams& params) {
  return net::cross_zone_lookahead(fabric, params.notify_bytes);
}

ScaleParams ScaleScenario::from_center(const CenterConfig& cfg, double scale) {
  ScaleParams params;
  params.zones = std::max<std::size_t>(1, cfg.ssus);
  params.clients_per_zone =
      std::max<std::size_t>(1, cfg.clients / params.zones);
  params.scale = scale;
  params.request_bytes = cfg.max_rpc;
  return params;
}

std::size_t ScaleScenario::clients_per_zone() const {
  const double scaled =
      static_cast<double>(params_.clients_per_zone) * params_.scale;
  return std::max<std::size_t>(1, static_cast<std::size_t>(scaled));
}

sim::Simulator& ScaleScenario::zone_sim(std::size_t z) {
  return engine_.shard(map_.shard_of(z));
}

sim::SimTime ScaleScenario::jittered(Rng& rng, sim::SimTime mean) {
  const auto span = static_cast<std::uint64_t>(std::max<sim::SimTime>(1, mean));
  return mean / 2 + static_cast<sim::SimTime>(rng.uniform_index(span));
}

void ScaleScenario::start() {
  const std::source_location loc = std::source_location::current();
  const std::size_t clients = clients_per_zone();
  for (std::size_t z = 0; z < params_.zones; ++z) {
    Zone& zone = zones_[z];
    for (std::size_t c = 0; c < clients; ++c) {
      // Stagger first issues across one think period so the center does not
      // start phase-locked.
      const sim::SimTime at = jittered(zone.rng, params_.think) / 2;
      zone_sim(z).schedule_at(at, [this, z, loc] { client_issue(z, loc); },
                              loc);
    }
  }
}

void ScaleScenario::client_issue(std::size_t z, std::source_location loc) {
  Zone& zone = zones_[z];
  ++zone.totals.issued;
  const sim::SimTime service_time = jittered(zone.rng, params_.service);
  zone_sim(z).schedule_in(service_time,
                          [this, z, loc] { client_complete(z, loc); }, loc);
}

void ScaleScenario::client_complete(std::size_t z, std::source_location loc) {
  Zone& zone = zones_[z];
  ++zone.totals.completed;
  zone.totals.bytes_moved += static_cast<double>(params_.request_bytes);
  if (params_.remote_every > 0 && params_.zones > 1 &&
      zone.totals.completed % params_.remote_every == 0) {
    // FGR cross-zone transfer: target and service draw come from the
    // *sender's* stream, so the receiver's own draws are untouched and the
    // merged stream stays assignment-only dependent.
    const std::size_t target =
        (z + 1 + zone.rng.uniform_index(params_.zones - 1)) % params_.zones;
    const sim::SimTime service_time = jittered(zone.rng, params_.service);
    ++zone.totals.remote_sent;
    const sim::SimTime when = zone_sim(z).now() + cross_latency_;
    engine_.schedule_cross(
        map_.shard_of(z), map_.shard_of(target), when,
        [this, target, service_time, loc] {
          remote_serve(target, service_time, loc);
        },
        loc);
  }
  const sim::SimTime think_time = jittered(zone.rng, params_.think);
  zone_sim(z).schedule_in(think_time, [this, z, loc] { client_issue(z, loc); },
                          loc);
}

void ScaleScenario::remote_serve(std::size_t z, sim::SimTime service_time,
                                 std::source_location loc) {
  Zone& zone = zones_[z];
  ++zone.totals.remote_served;
  zone_sim(z).schedule_in(service_time,
                          [this, z] {
                            zones_[z].totals.bytes_moved +=
                                static_cast<double>(params_.notify_bytes);
                          },
                          loc);
}

ScaleTotals ScaleScenario::totals() const {
  ScaleTotals sum;
  for (const Zone& zone : zones_) {
    sum.issued += zone.totals.issued;
    sum.completed += zone.totals.completed;
    sum.remote_sent += zone.totals.remote_sent;
    sum.remote_served += zone.totals.remote_served;
    sum.bytes_moved += zone.totals.bytes_moved;
  }
  return sum;
}

}  // namespace spider::core
