// Shared helpers for the reproduction benches.
//
// Every bench prints the paper's table/series through spider::Table and
// finishes with explicit shape checks ([PASS]/[FAIL]) against the paper's
// qualitative claims. A bench exits non-zero if any shape check fails.
//
// Benches that track a perf trajectory (bench_micro_engine --spider-json)
// additionally emit a machine-readable JSON report via JsonReport, and read
// checked-in baselines back with json_number(). The JSON dialect is the
// minimal flat-ish subset those reports need — objects of named metric
// objects with numeric fields — not a general parser.
#pragma once

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace spider::bench {

class ShapeChecker {
 public:
  void check(bool ok, const std::string& label) {
    std::cout << (ok ? "[PASS] " : "[FAIL] ") << label << "\n";
    if (!ok) ++failures_;
  }
  int exit_code() const { return failures_ == 0 ? 0 : 1; }

 private:
  int failures_ = 0;
};

inline void banner(const std::string& title) {
  std::cout << "\n=== " << title << " ===\n";
}

/// Accumulates named metric groups and renders them as one pretty-printed
/// JSON object:
///
///   { "bench": "...", "mode": "...",
///     "metrics": { "<group>": { "<field>": <number>, ... }, ... } }
///
/// Field order is insertion order, so reports diff cleanly across runs.
class JsonReport {
 public:
  JsonReport(std::string bench, std::string mode)
      : bench_(std::move(bench)), mode_(std::move(mode)) {}

  void add(const std::string& group, const std::string& field, double value) {
    Group* g = nullptr;
    for (auto& existing : groups_) {
      if (existing.name == group) g = &existing;
    }
    if (!g) {
      groups_.push_back(Group{group, {}});
      g = &groups_.back();
    }
    g->fields.push_back({field, value});
  }

  std::string render() const {
    std::ostringstream os;
    os << "{\n  \"bench\": \"" << bench_ << "\",\n  \"mode\": \"" << mode_
       << "\",\n  \"metrics\": {\n";
    for (std::size_t gi = 0; gi < groups_.size(); ++gi) {
      const Group& g = groups_[gi];
      os << "    \"" << g.name << "\": {";
      for (std::size_t fi = 0; fi < g.fields.size(); ++fi) {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.6g", g.fields[fi].second);
        os << (fi ? ", " : "") << "\"" << g.fields[fi].first << "\": " << buf;
      }
      os << "}" << (gi + 1 < groups_.size() ? "," : "") << "\n";
    }
    os << "  }\n}\n";
    return os.str();
  }

  /// Write the report to `path`; returns false (with a stderr note) on I/O
  /// failure so callers can fail the bench run.
  bool write_file(const std::string& path) const {
    std::ofstream out(path);
    if (!out) {
      std::cerr << "bench: cannot write '" << path << "'\n";
      return false;
    }
    out << render();
    return out.good();
  }

 private:
  struct Group {
    std::string name;
    std::vector<std::pair<std::string, double>> fields;
  };
  std::string bench_;
  std::string mode_;
  std::vector<Group> groups_;
};

/// Extract `"group": { ... "field": <number> ... }` from JSON text written by
/// JsonReport (or hand-maintained baselines in the same shape). Returns false
/// when the group or field is missing. Scans lexically — good enough for the
/// flat metric reports this repo emits, by design not a general JSON parser.
inline bool json_number(const std::string& text, const std::string& group,
                        const std::string& field, double& out) {
  const std::size_t gpos = text.find("\"" + group + "\"");
  if (gpos == std::string::npos) return false;
  const std::size_t open = text.find('{', gpos);
  if (open == std::string::npos) return false;
  const std::size_t close = text.find('}', open);
  if (close == std::string::npos) return false;
  const std::string body = text.substr(open, close - open);
  const std::size_t fpos = body.find("\"" + field + "\"");
  if (fpos == std::string::npos) return false;
  const std::size_t colon = body.find(':', fpos);
  if (colon == std::string::npos) return false;
  try {
    out = std::stod(body.substr(colon + 1));
  } catch (const std::exception&) {
    return false;
  }
  return true;
}

/// Read a whole file into a string; empty optional-style: returns false when
/// the file cannot be opened.
inline bool read_text_file(const std::string& path, std::string& out) {
  std::ifstream in(path);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  out = ss.str();
  return true;
}

}  // namespace spider::bench
