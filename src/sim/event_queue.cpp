#include "sim/event_queue.hpp"

#include <algorithm>
#include <cassert>

namespace spider::sim {

namespace {
// Below this heap size compaction is pointless; the lazy pop path handles
// small queues fine and the threshold keeps compact() out of microbenchmarks.
constexpr std::size_t kCompactMinHeap = 64;
// Only return heap storage to the allocator when capacity exceeds live size
// by this factor. Shrinking on every compaction caused realloc churn when
// cancel-heavy flow rescheduling oscillated around the compaction threshold:
// each compact gave the pages back only for the next burst to buy them
// again. With the factor, steady-state churn reuses one stable allocation
// and memory is still bounded at a small multiple of the live set.
constexpr std::size_t kShrinkFactor = 8;
}  // namespace

EventId EventQueue::schedule(SimTime when, EventFn fn, std::uint64_t site) {
  const EventId id = next_id_++;

  // Grab a slab slot from the free list (or grow the slab — amortized, and
  // only until the slab matches the high-water mark of live events).
  std::uint32_t s;
  if (free_head_ != kNullSlot) {
    s = free_head_;
    free_head_ = slots_[s].next_free;
  } else {
    s = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Slot& slot = slots_[s];
  slot.fn = std::move(fn);
  slot.id = id;
  slot.site = site;

  // Record id -> slot in the paged index. Ids are dense, so the new id lands
  // either in the newest page or in a fresh one (one 8 KiB allocation per
  // 1024 events, amortized).
  const std::uint64_t page_no = id >> kPageBits;
  assert(page_no >= base_page_);
  while (page_no - base_page_ >= pages_.size()) pages_.emplace_back(nullptr);
  std::unique_ptr<IdPage>& page = pages_[page_no - base_page_];
  if (page == nullptr) {
    page = std::make_unique<IdPage>();
    std::fill(std::begin(page->slot), std::end(page->slot), kNullSlot);
  }
  page->slot[id & kPageMask] = s;
  ++page->live;

  heap_.push_back(Entry{when, id, s});
  std::push_heap(heap_.begin(), heap_.end(), later);
  ++live_;
  return id;
}

std::uint32_t* EventQueue::index_cell(EventId id) {
  if (id == 0 || id >= next_id_) return nullptr;
  const std::uint64_t page_no = id >> kPageBits;
  if (page_no < base_page_ || page_no - base_page_ >= pages_.size()) {
    return nullptr;
  }
  IdPage* page = pages_[page_no - base_page_].get();
  if (page == nullptr) return nullptr;
  return &page->slot[id & kPageMask];
}

void EventQueue::release_id(EventId id) {
  const std::uint64_t page_no = id >> kPageBits;
  IdPage& page = *pages_[page_no - base_page_];
  page.slot[id & kPageMask] = kNullSlot;
  assert(page.live > 0);
  --page.live;
  // Release the page once every id it covers is both issued and dead; a
  // partially issued page must stay — the next schedule() still writes to
  // it. Then trim the window's dead prefix so the deque stays proportional
  // to the live id span.
  const EventId page_end = static_cast<EventId>(page_no + 1) << kPageBits;
  if (page.live == 0 && page_end <= next_id_) {
    pages_[page_no - base_page_].reset();
  }
  while (!pages_.empty() && pages_.front() == nullptr) {
    pages_.pop_front();
    ++base_page_;
  }
}

void EventQueue::release_slot(std::uint32_t s) {
  Slot& slot = slots_[s];
  slot.fn.reset();  // release captured state eagerly
  slot.id = 0;
  slot.site = 0;
  slot.next_free = free_head_;
  free_head_ = s;
}

bool EventQueue::cancel(EventId id) {
  std::uint32_t* cell = index_cell(id);
  if (cell == nullptr || *cell == kNullSlot) return false;
  const std::uint32_t s = *cell;
  assert(slots_[s].id == id);
  release_id(id);
  release_slot(s);
  --live_;
  // Cancelling the front entry (e.g. an event due *now*, during fault churn)
  // must not leave a stale head: next_time()/pop() assume the front is live
  // after their own sweep, and an eager drop keeps that sweep O(1) amortized.
  drop_cancelled();
  // Deeper stale entries stay behind; once they dominate, sweep them all so
  // memory stays proportional to live events.
  if (heap_.size() >= kCompactMinHeap && heap_.size() > 2 * live_) compact();
  return true;
}

void EventQueue::compact() {
  heap_.erase(std::remove_if(heap_.begin(), heap_.end(),
                             [this](const Entry& e) {
                               return !entry_live(e);
                             }),
              heap_.end());
  if (heap_.capacity() >
      kShrinkFactor * std::max(heap_.size(), kCompactMinHeap)) {
    heap_.shrink_to_fit();
  }
  std::make_heap(heap_.begin(), heap_.end(), later);
}

void EventQueue::drop_cancelled() const {
  while (!heap_.empty() && !entry_live(heap_.front())) {
    std::pop_heap(heap_.begin(), heap_.end(), later);
    heap_.pop_back();
  }
}

SimTime EventQueue::next_time() const {
  drop_cancelled();
  assert(!heap_.empty());
  return heap_.front().when;
}

EventQueue::Fired EventQueue::pop() {
  drop_cancelled();
  assert(!heap_.empty());
  const Entry e = heap_.front();
  std::pop_heap(heap_.begin(), heap_.end(), later);
  heap_.pop_back();
  Slot& slot = slots_[e.slot];
  assert(slot.id == e.id);
  Fired fired{e.when, e.id, slot.site, std::move(slot.fn)};
  release_id(e.id);
  release_slot(e.slot);
  --live_;
  return fired;
}

}  // namespace spider::sim
