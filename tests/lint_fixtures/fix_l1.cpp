// --fix fixture for L1 container swaps. After `spiderlint --fix` this file
// must use std::map/std::set (includes swapped too), recompile, and re-lint
// clean. The hashed_ member keeps a custom hasher, which makes the swap
// semantic — it must be left alone (and is suppressed as a lookup table).
#include <functional>
#include <unordered_map>
#include <unordered_set>

namespace fixture {

struct Registry {
  std::unordered_map<int, double> rows_;
  std::unordered_set<int> keys_;
  // spiderlint: ordered-ok — pure lookup table, custom hasher, order never leaks
  std::unordered_map<int, int, std::hash<int>> hashed_;
};

}  // namespace fixture
