#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "core/spider_config.hpp"
#include "sim/resource.hpp"
#include "tools/standard_checks.hpp"

namespace spider::tools {
namespace {

struct ChecksFixture : ::testing::Test {
  Rng rng{1};
  core::CenterModel center{core::scaled_config(core::spider2_config(), 0.08),
                           rng};
  IbErrorCounters ib{16};
  std::vector<double> mds_offered{5e3, 5e3};
};

TEST_F(ChecksFixture, HealthySystemAllGreen) {
  auto sched = make_standard_checks(center, ib, mds_offered);
  const auto report = sched.run_all();
  EXPECT_EQ(report.warning, 0u);
  EXPECT_EQ(report.critical, 0u);
  // 2 checks per SSU + 16 IB ports + 2 fullness + 2 MDS.
  EXPECT_EQ(sched.checks(),
            2 * center.num_ssus() + 16 + 2 * center.filesystem().namespaces());
}

TEST_F(ChecksFixture, DegradedRaidGroupWarns) {
  center.ssu(1).group(2).fail_member(0);
  auto sched = make_standard_checks(center, ib, mds_offered);
  const auto report = sched.run_all();
  ASSERT_EQ(report.failing.size(), 1u);
  EXPECT_EQ(report.failing[0].first, "raid-ssu1");
  EXPECT_EQ(report.failing[0].second.status, CheckStatus::kWarning);
  center.ssu(1).group(2).restore_member(0);
}

TEST_F(ChecksFixture, DataLossIsCritical) {
  auto& grp = center.ssu(0).group(0);
  grp.fail_member(0);
  grp.fail_member(1);
  grp.fail_member(2);
  auto sched = make_standard_checks(center, ib, mds_offered);
  const auto report = sched.run_all();
  EXPECT_EQ(report.critical, 1u);
}

TEST_F(ChecksFixture, CableDiagnosisEscalation) {
  ib.add_symbol_errors(5, 500);  // accumulating -> warning
  ib.add_symbol_errors(9, 20000);  // storm -> critical
  ib.add_link_down(11);            // flap -> critical
  auto sched = make_standard_checks(center, ib, mds_offered);
  const auto report = sched.run_all();
  EXPECT_EQ(report.warning, 1u);
  EXPECT_EQ(report.critical, 2u);
  ib.clear();
  EXPECT_EQ(make_standard_checks(center, ib, mds_offered).run_all().critical, 0u);
}

TEST_F(ChecksFixture, FullnessKneeChecks) {
  for (std::size_t o = 0; o < center.total_osts(); ++o) {
    auto& ost = center.ost_at(o);
    if (center.namespace_of_ost(o) == 0) {
      ost.set_used(static_cast<Bytes>(
          static_cast<double>(ost.capacity()) * 0.75));
    }
  }
  auto sched = make_standard_checks(center, ib, mds_offered);
  const auto report = sched.run_all();
  ASSERT_EQ(report.failing.size(), 1u);
  EXPECT_EQ(report.failing[0].first, "fullness-ns0");
  EXPECT_EQ(report.failing[0].second.status, CheckStatus::kWarning);
  center.set_fleet_fullness(0.0);
}

TEST_F(ChecksFixture, MdsSaturationCheck) {
  mds_offered[1] = 50e3;  // above a single MDS's 20 kops/s
  auto sched = make_standard_checks(center, ib, mds_offered);
  const auto report = sched.run_all();
  bool found = false;
  for (const auto& [name, result] : report.failing) {
    if (name == "mds-ns1") {
      found = true;
      EXPECT_EQ(result.status, CheckStatus::kCritical);
    }
  }
  EXPECT_TRUE(found);
}

// --- brute-force solver cross-check -------------------------------------------------

// Independent reference implementation of progressive filling: raise all
// rates together in tiny steps, freezing flows as constraints bind. Slow
// but obviously correct; the production solver must match it.
sim::SolveResult reference_solve(const std::vector<double>& cap,
                                 const std::vector<std::vector<sim::PathHop>>& paths,
                                 const std::vector<double>& caps) {
  const std::size_t nf = paths.size();
  sim::SolveResult out;
  out.rate.assign(nf, 0.0);
  std::vector<char> frozen(nf, 0);
  std::vector<double> used(cap.size(), 0.0);
  const double step = 1e-4;
  bool progress = true;
  while (progress) {
    progress = false;
    // Freeze flows that can no longer grow.
    for (std::size_t f = 0; f < nf; ++f) {
      if (frozen[f]) continue;
      bool blocked = out.rate[f] >= caps[f] - 1e-12;
      for (const auto& hop : paths[f]) {
        if (used[hop.resource] + hop.cost * step > cap[hop.resource]) {
          blocked = true;
        }
      }
      if (blocked) frozen[f] = 1;
    }
    for (std::size_t f = 0; f < nf; ++f) {
      if (frozen[f]) continue;
      out.rate[f] += step;
      for (const auto& hop : paths[f]) used[hop.resource] += hop.cost * step;
      progress = true;
    }
  }
  return out;
}

TEST(SolverCrossCheck, MatchesBruteForceReference) {
  Rng rng(3);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t nr = 2 + rng.uniform_index(4);
    const std::size_t nf = 1 + rng.uniform_index(6);
    std::vector<double> cap(nr);
    for (auto& c : cap) c = rng.uniform(1.0, 10.0);
    std::vector<std::vector<sim::PathHop>> paths(nf);
    std::vector<double> caps(nf);
    for (std::size_t f = 0; f < nf; ++f) {
      const std::size_t hops = 1 + rng.uniform_index(3);
      for (std::size_t h = 0; h < hops; ++h) {
        paths[f].push_back({static_cast<sim::ResourceId>(rng.uniform_index(nr)),
                            rng.uniform(0.5, 2.0)});
      }
      caps[f] = rng.chance(0.5) ? rng.uniform(0.5, 8.0) : 1e9;
    }
    std::vector<sim::SolverFlow> flows;
    for (std::size_t f = 0; f < nf; ++f) flows.push_back({paths[f], caps[f]});
    const auto fast = sim::solve_max_min(cap, flows);
    const auto slow = reference_solve(cap, paths, caps);
    for (std::size_t f = 0; f < nf; ++f) {
      EXPECT_NEAR(fast.rate[f], slow.rate[f], 0.02) << "trial " << trial
                                                    << " flow " << f;
    }
  }
}

}  // namespace
}  // namespace spider::tools
