#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <source_location>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "sim/event_queue.hpp"
#include "sim/resource.hpp"
#include "sim/simulator.hpp"
#include "sim/steady_state.hpp"
#include "sim/time.hpp"

namespace spider::sim {
namespace {

TEST(SimTime, Conversions) {
  EXPECT_EQ(from_seconds(1.5), 1500 * kMillisecond);
  EXPECT_DOUBLE_EQ(to_seconds(2 * kSecond), 2.0);
  EXPECT_DOUBLE_EQ(to_hours(kDay), 24.0);
  EXPECT_DOUBLE_EQ(to_days(36 * kHour), 1.5);
}

TEST(EventQueue, FiresInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(30, [&] { order.push_back(3); });
  q.schedule(10, [&] { order.push_back(1); });
  q.schedule(20, [&] { order.push_back(2); });
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, FifoForSimultaneousEvents) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(5, [&] { order.push_back(1); });
  q.schedule(5, [&] { order.push_back(2); });
  q.schedule(5, [&] { order.push_back(3); });
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, CancelSkipsEvent) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(1, [&] { order.push_back(1); });
  const EventId id = q.schedule(2, [&] { order.push_back(2); });
  q.schedule(3, [&] { order.push_back(3); });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));  // double-cancel is a no-op
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(EventQueue, SizeTracksLiveEvents) {
  EventQueue q;
  const EventId a = q.schedule(1, [] {});
  q.schedule(2, [] {});
  EXPECT_EQ(q.size(), 2u);
  q.cancel(a);
  EXPECT_EQ(q.size(), 1u);
  EXPECT_EQ(q.next_time(), 2);
}

TEST(EventQueue, CancelFreesCallbackStateEagerly) {
  // The callback (and anything it captures) must be destroyed at cancel
  // time, not when the stale heap entry finally pops.
  EventQueue q;
  auto token = std::make_shared<int>(42);
  std::weak_ptr<int> watch = token;
  const EventId id = q.schedule(1000, [token] { (void)*token; });
  token.reset();
  EXPECT_FALSE(watch.expired());
  q.cancel(id);
  EXPECT_TRUE(watch.expired());
}

TEST(EventQueue, CancelHeavyLoadBoundsMemory) {
  // Regression: the flow network cancels + reschedules its next-completion
  // event on every arrival. Stale heap entries whose times lie beyond the
  // clock used to accumulate without bound; compaction must keep both the
  // callback map and the heap proportional to *live* events.
  EventQueue q;
  q.schedule(1, [] {});  // one live event that never fires
  constexpr std::size_t kRounds = 1'000'000;
  for (std::size_t i = 0; i < kRounds; ++i) {
    // Far-future time: lazy top-of-heap dropping alone never reaches these.
    const EventId id = q.schedule(static_cast<SimTime>(1'000'000 + i), [] {});
    ASSERT_TRUE(q.cancel(id));
  }
  EXPECT_EQ(q.size(), 1u);        // callbacks_ holds only the live event
  EXPECT_LE(q.heap_size(), 64u);  // stale entries were compacted away
  EXPECT_EQ(q.next_time(), 1);
}

TEST(EventQueue, CompactionPreservesOrderingAndCallbacks) {
  EventQueue q;
  std::vector<int> order;
  std::vector<EventId> doomed;
  for (int round = 0; round < 10; ++round) {
    for (int i = 0; i < 100; ++i) {
      doomed.push_back(
          q.schedule(static_cast<SimTime>(10'000 + round * 100 + i), [] {}));
    }
    q.schedule(static_cast<SimTime>(10 * round + 5),
               [&order, round] { order.push_back(round); });
    for (const EventId id : doomed) q.cancel(id);
    doomed.clear();
  }
  EXPECT_EQ(q.size(), 10u);
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}));
}

TEST(EventQueue, CompactionKeepsCapacityForSteadyChurn) {
  // Regression for the shrink policy: compaction erases stale entries but
  // must not release heap capacity that steady-state churn is about to
  // reuse — shrink-to-fit on every compact would add an allocate+copy cycle
  // to the flow network's cancel/reschedule pattern.
  EventQueue q;
  q.schedule(1, [] {});  // permanent live anchor
  std::vector<EventId> ids;
  // Grow the heap with live events, then cancel most (stale > 2x live
  // triggers compaction). Capacity stays within the shrink threshold, so it
  // must be retained exactly.
  for (int i = 0; i < 400; ++i) {
    ids.push_back(q.schedule(static_cast<SimTime>(1000 + i), [] {}));
  }
  const std::size_t cap_before = q.heap_capacity();
  for (std::size_t i = 0; i < 300; ++i) q.cancel(ids[i]);
  EXPECT_LT(q.heap_size(), 401u);            // compaction ran
  EXPECT_EQ(q.heap_capacity(), cap_before);  // ...but kept the capacity

  // Steady churn at the same scale must never shrink or regrow: capacity is
  // stable across rounds.
  for (int round = 0; round < 20; ++round) {
    std::vector<EventId> churn;
    for (int i = 0; i < 300; ++i) {
      churn.push_back(q.schedule(static_cast<SimTime>(5000 + i), [] {}));
    }
    for (const EventId id : churn) q.cancel(id);
    EXPECT_EQ(q.heap_capacity(), cap_before) << "round " << round;
  }
}

TEST(EventQueue, CompactionReleasesCapacityAfterBurstCollapse) {
  // The other half of the shrink policy: when a one-off burst leaves the
  // heap holding far more capacity than live events justify (beyond the
  // shrink multiple), compact() must give the memory back.
  EventQueue q;
  q.schedule(1, [] {});
  std::vector<EventId> ids;
  for (int i = 0; i < 20'000; ++i) {
    ids.push_back(q.schedule(static_cast<SimTime>(1000 + i), [] {}));
  }
  EXPECT_GE(q.heap_capacity(), 20'000u);
  for (const EventId id : ids) q.cancel(id);
  EXPECT_EQ(q.size(), 1u);
  EXPECT_LT(q.heap_capacity(), 20'000u / 4);  // burst capacity released
}

TEST(EventQueue, CancelledIdStaysDeadAfterSlotReuse) {
  // Generation check: cancelling an id must stay a no-op forever, even after
  // the slot that backed it is recycled for a newer event. A stale cancel
  // that killed the new occupant would silently drop a live event.
  EventQueue q;
  bool fired = false;
  const EventId a = q.schedule(10, [] {});
  ASSERT_TRUE(q.cancel(a));
  const EventId b = q.schedule(20, [&fired] { fired = true; });
  EXPECT_GT(b, a);                // ids stay monotone, never recycled
  EXPECT_FALSE(q.cancel(a));      // stale id: dead then, dead now
  ASSERT_EQ(q.size(), 1u);
  while (!q.empty()) q.pop().fn();
  EXPECT_TRUE(fired);             // the reused slot's occupant survived
  EXPECT_FALSE(q.cancel(a));
  EXPECT_FALSE(q.cancel(b));      // already fired
}

TEST(EventQueue, IdsAreConsecutiveAcrossCancelChurn) {
  // Replay golden hashes fold raw EventIds, so the id sequence is part of
  // the on-disk format: 1, 2, 3, ... regardless of cancels in between.
  EventQueue q;
  EventId expected = 0;
  for (int i = 0; i < 100; ++i) {
    const EventId id = q.schedule(static_cast<SimTime>(50 + i), [] {});
    EXPECT_EQ(id, ++expected);
    if (i % 3 == 0) q.cancel(id);
  }
}

TEST(EventQueue, CancelAtFireTimeLeavesNoStaleHead) {
  // Regression: fault churn cancels events whose fire time equals the
  // current front of the heap (a revert cancelled at the instant it is due).
  // cancel() must drop the stale head eagerly so next_time()/pop() never see
  // a cancelled front entry.
  EventQueue q;
  std::vector<int> order;
  const EventId due_now = q.schedule(10, [&] { order.push_back(1); });
  q.schedule(10, [&] { order.push_back(2); });
  q.schedule(20, [&] { order.push_back(3); });
  ASSERT_EQ(q.next_time(), 10);  // cancelled event is at the heap front
  EXPECT_TRUE(q.cancel(due_now));
  // The stale head is gone immediately, not just at the next pop.
  EXPECT_EQ(q.heap_size(), q.size());
  EXPECT_EQ(q.next_time(), 10);
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{2, 3}));
}

TEST(EventQueue, CancelChurnIsDeterministic) {
  // Two queues driven through an identical schedule/cancel interleaving —
  // including cancels of events due at the current front time — must fire
  // the surviving events in an identical order.
  const auto drive = [] {
    EventQueue q;
    std::vector<int> order;
    std::vector<EventId> ids;
    for (int i = 0; i < 200; ++i) {
      ids.push_back(q.schedule(static_cast<SimTime>(5 * (i % 17)),
                               [&order, i] { order.push_back(i); }));
    }
    for (int i = 0; i < 200; i += 3) q.cancel(ids[static_cast<std::size_t>(i)]);
    while (!q.empty()) {
      auto fired = q.pop();
      // Cancel a still-pending event due at exactly the current fire time.
      for (int i = 0; i < 200; ++i) {
        if (5 * (i % 17) == fired.when && i % 7 == 0) {
          q.cancel(ids[static_cast<std::size_t>(i)]);
        }
      }
      fired.fn();
    }
    return order;
  };
  const std::vector<int> a = drive();
  const std::vector<int> b = drive();
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a.empty());
}

TEST(Simulator, RunAdvancesClockAndCounts) {
  Simulator sim;
  int fired = 0;
  sim.schedule_in(5 * kSecond, [&] { ++fired; });
  sim.schedule_in(10 * kSecond, [&] { ++fired; });
  const auto ran = sim.run();
  EXPECT_EQ(ran, 2u);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.now(), 10 * kSecond);
}

TEST(Simulator, RunUntilHorizonStopsEarly) {
  Simulator sim;
  int fired = 0;
  sim.schedule_in(5, [&] { ++fired; });
  sim.schedule_in(500, [&] { ++fired; });
  sim.run(100);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), 100);
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, EventsCanScheduleMoreEvents) {
  Simulator sim;
  int chain = 0;
  std::function<void()> next = [&] {
    if (++chain < 5) sim.schedule_in(10, next);
  };
  sim.schedule_in(10, next);
  sim.run();
  EXPECT_EQ(chain, 5);
  EXPECT_EQ(sim.now(), 50);
}

TEST(Simulator, ObserverSeesEveryDispatchedEvent) {
  Simulator sim;
  std::vector<std::pair<SimTime, EventId>> seen;
  // The observer is a non-owning FunctionRef: the callable must outlive the
  // run, so it lives in a local rather than being passed as a temporary.
  auto observe = [&](SimTime t, EventId id, std::uint64_t site) {
    EXPECT_NE(site, 0u);  // scheduling sites are always hashed
    seen.emplace_back(t, id);
  };
  sim.set_observer(EventObserver(observe));
  const EventId a = sim.schedule_in(10, [] {});
  const EventId b = sim.schedule_in(5, [] {});
  sim.run();
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], (std::pair<SimTime, EventId>{5, b}));
  EXPECT_EQ(seen[1], (std::pair<SimTime, EventId>{10, a}));
}

TEST(Simulator, SiteHashIsStablePerLineAndDistinctAcrossLines) {
  const auto here = std::source_location::current();
  const auto copy = here;
  const auto other_line = std::source_location::current();
  EXPECT_NE(site_hash(here), 0u);
  // Hashing is content-based (file name chars + line): identical locations
  // agree, different lines differ — that is what localizes a divergence.
  EXPECT_EQ(site_hash(here), site_hash(copy));
  EXPECT_NE(site_hash(here), site_hash(other_line));
}

TEST(Simulator, RejectsPastAndNegative) {
  Simulator sim;
  sim.schedule_in(10, [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(5, [] {}), std::invalid_argument);
  EXPECT_THROW(sim.schedule_in(-1, [] {}), std::invalid_argument);
}

TEST(Simulator, PastTimeErrorNamesTimesAndCallSite) {
  // The enriched diagnostic: when, now, the gap, and the scheduling call
  // site — enough to localize a lookahead/clock bug from the message alone.
  Simulator sim;
  sim.schedule_at(100, [] {});
  sim.run();
  try {
    sim.schedule_at(40, [] {});
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("when=40"), std::string::npos) << msg;
    EXPECT_NE(msg.find("now=100"), std::string::npos) << msg;
    EXPECT_NE(msg.find("behind by 60"), std::string::npos) << msg;
    EXPECT_NE(msg.find("sim_test.cpp"), std::string::npos) << msg;
  }
  try {
    sim.schedule_in(-7, [] {});
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("dt=-7"), std::string::npos) << msg;
    EXPECT_NE(msg.find("now=100"), std::string::npos) << msg;
    EXPECT_NE(msg.find("sim_test.cpp"), std::string::npos) << msg;
  }
}

// --- run(until) clock semantics ---------------------------------------------
// With a finite horizon, now() must land exactly on `until` no matter how the
// run ends. These pin the fix for the drained-queue early return that left
// now() at the last event time (or at 0) and broke the sharded engine's
// epoch barriers.

TEST(Simulator, RunOnEmptyQueueStillAdvancesToHorizon) {
  Simulator sim;
  EXPECT_EQ(sim.run(50), 0u);
  EXPECT_EQ(sim.now(), 50);
}

TEST(Simulator, RunDrainedMidRunAdvancesToHorizon) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(10, [&] { ++fired; });
  EXPECT_EQ(sim.run(100), 1u);  // queue drains at t=10, horizon is 100
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), 100);
}

TEST(Simulator, RunExecutesEventExactlyAtHorizon) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(100, [&] { ++fired; });
  EXPECT_EQ(sim.run(100), 1u);  // horizon is inclusive
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), 100);
}

TEST(Simulator, RunWithInfiniteHorizonStopsAtLastEvent) {
  // Only a *finite* horizon pulls the clock forward; the default run() still
  // ends at the last executed event.
  Simulator sim;
  sim.schedule_at(30, [] {});
  sim.run();
  EXPECT_EQ(sim.now(), 30);
}

TEST(Simulator, ScheduleSitedPreservesCallerSiteHash) {
  // schedule_sited is the mailbox-drain hook: the recorded site must be the
  // original sender's hash, not the drain loop's.
  Simulator sim;
  std::uint64_t seen_site = 0;
  auto observe = [&](SimTime, EventId, std::uint64_t site) {
    seen_site = site;
  };
  sim.set_observer(EventObserver(observe));
  sim.schedule_sited(5, [] {}, 0xabcdef12u);
  sim.run();
  EXPECT_EQ(seen_site, 0xabcdef12u);
  EXPECT_THROW(sim.schedule_sited(1, [] {}, 0x1u), std::invalid_argument);
}

// --- max-min solver ---------------------------------------------------------

TEST(Solver, SingleFlowTakesFullCapacity) {
  const std::vector<double> cap{100.0};
  const std::vector<PathHop> path{{0, 1.0}};
  const std::vector<SolverFlow> flows{{path, kUnbounded}};
  const auto res = solve_max_min(cap, flows);
  EXPECT_NEAR(res.rate[0], 100.0, 1e-6);
  EXPECT_NEAR(res.utilization[0], 1.0, 1e-6);
}

TEST(Solver, EqualShareOnOneResource) {
  const std::vector<double> cap{90.0};
  const std::vector<PathHop> path{{0, 1.0}};
  std::vector<SolverFlow> flows(3, SolverFlow{path, kUnbounded});
  const auto res = solve_max_min(cap, flows);
  for (double r : res.rate) EXPECT_NEAR(r, 30.0, 1e-6);
}

TEST(Solver, RateCapFreesCapacityForOthers) {
  const std::vector<double> cap{100.0};
  const std::vector<PathHop> path{{0, 1.0}};
  const std::vector<SolverFlow> flows{{path, 10.0}, {path, kUnbounded}};
  const auto res = solve_max_min(cap, flows);
  EXPECT_NEAR(res.rate[0], 10.0, 1e-6);
  EXPECT_NEAR(res.rate[1], 90.0, 1e-6);
}

TEST(Solver, ClassicMaxMinTwoBottlenecks) {
  // Flow A crosses r0 (cap 10) and r1 (cap 100); flow B crosses only r1.
  // A is pinned at 10 by r0; B takes the remaining 90 of r1.
  const std::vector<double> cap{10.0, 100.0};
  const std::vector<PathHop> path_a{{0, 1.0}, {1, 1.0}};
  const std::vector<PathHop> path_b{{1, 1.0}};
  const std::vector<SolverFlow> flows{{path_a, kUnbounded}, {path_b, kUnbounded}};
  const auto res = solve_max_min(cap, flows);
  EXPECT_NEAR(res.rate[0], 10.0, 1e-6);
  EXPECT_NEAR(res.rate[1], 90.0, 1e-6);
}

TEST(Solver, CostFactorScalesConsumption) {
  // Cost 4 random-I/O flow: consumes 4 units of disk capacity per byte.
  const std::vector<double> cap{100.0};
  const std::vector<PathHop> expensive{{0, 4.0}};
  const std::vector<SolverFlow> flows{{expensive, kUnbounded}};
  const auto res = solve_max_min(cap, flows);
  EXPECT_NEAR(res.rate[0], 25.0, 1e-6);
}

TEST(Solver, ZeroCapacityResourcePinsFlows) {
  const std::vector<double> cap{0.0, 50.0};
  const std::vector<PathHop> dead{{0, 1.0}, {1, 1.0}};
  const std::vector<PathHop> alive{{1, 1.0}};
  const std::vector<SolverFlow> flows{{dead, kUnbounded}, {alive, kUnbounded}};
  const auto res = solve_max_min(cap, flows);
  EXPECT_NEAR(res.rate[0], 0.0, 1e-9);
  EXPECT_NEAR(res.rate[1], 50.0, 1e-6);
}

TEST(Solver, PathlessFlowGetsItsCap) {
  const std::vector<double> cap{};
  const std::vector<SolverFlow> flows{{{}, 42.0}, {{}, kUnbounded}};
  const auto res = solve_max_min(cap, flows);
  EXPECT_DOUBLE_EQ(res.rate[0], 42.0);
  EXPECT_DOUBLE_EQ(res.rate[1], 0.0);
}

TEST(Solver, EmptyInputs) {
  const auto res = solve_max_min({}, {});
  EXPECT_TRUE(res.rate.empty());
}

// Property sweep: random networks must satisfy feasibility and max-min
// optimality conditions.
class SolverProperty : public ::testing::TestWithParam<int> {};

TEST_P(SolverProperty, FeasibleAndMaxMinOptimal) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const std::size_t nr = 3 + rng.uniform_index(10);
  const std::size_t nf = 1 + rng.uniform_index(30);
  std::vector<double> cap(nr);
  for (auto& c : cap) c = rng.uniform(10.0, 1000.0);
  std::vector<std::vector<PathHop>> paths(nf);
  std::vector<SolverFlow> flows;
  std::vector<double> caps(nf);
  for (std::size_t f = 0; f < nf; ++f) {
    const std::size_t hops = 1 + rng.uniform_index(4);
    for (std::size_t h = 0; h < hops; ++h) {
      paths[f].push_back({static_cast<ResourceId>(rng.uniform_index(nr)),
                          rng.uniform(0.5, 3.0)});
    }
    caps[f] = rng.chance(0.5) ? rng.uniform(1.0, 400.0) : kUnbounded;
  }
  for (std::size_t f = 0; f < nf; ++f) flows.push_back({paths[f], caps[f]});
  const auto res = solve_max_min(cap, flows);

  // Feasibility: rates non-negative, caps respected, resources within
  // capacity (small numeric slack).
  std::vector<double> used(nr, 0.0);
  for (std::size_t f = 0; f < nf; ++f) {
    EXPECT_GE(res.rate[f], -1e-9);
    if (!std::isinf(caps[f])) {
      EXPECT_LE(res.rate[f], caps[f] * (1 + 1e-9));
    }
    for (const auto& hop : paths[f]) used[hop.resource] += res.rate[f] * hop.cost;
  }
  for (std::size_t r = 0; r < nr; ++r) {
    EXPECT_LE(used[r], cap[r] * (1.0 + 1e-6));
  }
  // Max-min optimality: every flow is either at its own cap or crosses a
  // saturated resource.
  for (std::size_t f = 0; f < nf; ++f) {
    const bool at_cap =
        !std::isinf(caps[f]) && res.rate[f] >= caps[f] * (1 - 1e-6);
    bool at_bottleneck = false;
    for (const auto& hop : paths[f]) {
      if (used[hop.resource] >= cap[hop.resource] * (1 - 1e-5)) {
        at_bottleneck = true;
        break;
      }
    }
    EXPECT_TRUE(at_cap || at_bottleneck) << "flow " << f << " is not limited";
  }
}

INSTANTIATE_TEST_SUITE_P(RandomNetworks, SolverProperty,
                         ::testing::Range(0, 25));

TEST(SteadyStateSolver, AggregateAndBottleneckReporting) {
  SteadyStateSolver s;
  const auto a = s.add_resource("narrow", 50.0);
  const auto b = s.add_resource("wide", 500.0);
  s.add_flow({{a, 1.0}, {b, 1.0}});
  s.add_flow({{b, 1.0}});
  s.solve();
  EXPECT_NEAR(s.flow_rate(0), 50.0, 1e-6);
  EXPECT_NEAR(s.flow_rate(1), 450.0, 1e-6);
  EXPECT_NEAR(s.aggregate_rate(), 500.0, 1e-6);
  // Both saturate; the bottleneck is whichever hits 1.0 (max element).
  EXPECT_FALSE(s.bottleneck().empty());
  EXPECT_NEAR(s.utilization(a), 1.0, 1e-9);
}

TEST(SteadyStateSolver, ClearFlowsKeepsResources) {
  SteadyStateSolver s;
  const auto a = s.add_resource("r", 10.0);
  s.add_flow({{a, 1.0}});
  s.solve();
  s.clear_flows();
  EXPECT_EQ(s.flows(), 0u);
  EXPECT_EQ(s.resources(), 1u);
  s.add_flow({{a, 1.0}}, 4.0);
  s.solve();
  EXPECT_NEAR(s.flow_rate(0), 4.0, 1e-9);
}

TEST(SteadyStateSolver, RejectsBadFlow) {
  SteadyStateSolver s;
  s.add_resource("r", 10.0);
  EXPECT_THROW(s.add_flow({{5, 1.0}}), std::out_of_range);
  EXPECT_THROW(s.add_resource("bad", -1.0), std::invalid_argument);
}

}  // namespace
}  // namespace spider::sim
