#include "fs/ost.hpp"

#include <algorithm>
#include <stdexcept>

namespace spider::fs {

Ost::Ost(std::uint32_t id, block::Raid6Group* group, const OstParams& params)
    : id_(id), group_(group), params_(params) {
  if (group_ == nullptr) throw std::invalid_argument("Ost: null RAID group");
}

double Ost::fullness() const {
  const Bytes cap = capacity();
  return cap == 0 ? 1.0 : static_cast<double>(used_) / static_cast<double>(cap);
}

bool Ost::allocate(Bytes size) {
  if (used_ + size > capacity()) return false;
  used_ += size;
  ++objects_;
  return true;
}

void Ost::release(Bytes size) {
  used_ -= std::min(used_, size);
  if (objects_ > 0) --objects_;
}

double Ost::fullness_factor() const {
  const double f = fullness();
  const double k1 = params_.fullness_knee1;
  const double k2 = params_.fullness_knee2;
  if (f <= k1) return 1.0;
  if (f <= k2) {
    // Gentle decline from 1.0 at knee1 to factor_at_knee2 at knee2.
    const double t = (f - k1) / (k2 - k1);
    return 1.0 + t * (params_.factor_at_knee2 - 1.0);
  }
  // Severe decline beyond knee2, approaching the floor at 100% full.
  const double t = std::min(1.0, (f - k2) / (1.0 - k2));
  return params_.factor_at_knee2 + t * (params_.factor_floor - params_.factor_at_knee2);
}

Bandwidth Ost::bandwidth(block::IoMode mode, block::IoDir dir,
                         Bytes request_size) const {
  double eff = dir == block::IoDir::kRead ? params_.obdfilter_read_eff
                                          : params_.obdfilter_write_eff;
  if (dir == block::IoDir::kWrite) eff *= params_.journal.write_efficiency();
  return group_->bandwidth(mode, dir, request_size) * eff * fullness_factor();
}

}  // namespace spider::fs
