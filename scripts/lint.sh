#!/usr/bin/env bash
# Static-analysis driver: spiderlint (always) + clang-tidy (when installed).
#
# spiderlint is the in-tree determinism, unit-safety, architecture,
# shard-concurrency, and crash-consistency pass (rules L1-L16, see
# docs/static-analysis.md); clang-tidy adds the generic bugprone /
# concurrency / performance checks configured in .clang-tidy.
#
# Usage: scripts/lint.sh [options] [path...]
#   --fix-hints       print spiderlint fix-it hints and the per-rule digest
#   --json            shorthand for --format=json
#   --format=FMT      spiderlint output format: text (default), json, sarif
#   --baseline=FILE   baseline file (default: ci/spiderlint-baseline.txt
#                     when it exists; --baseline= with no file disables)
#   --fix             apply the mechanically safe fixes (L1 swaps, L3 unit
#                     aliases) in place, then report what remains
#   --changed         report only findings in files touched vs HEAD (staged
#                     + unstaged + untracked) plus every file that includes
#                     them, found by a fixpoint over the in-tree include
#                     spellings — the pre-commit hook's fast path. The
#                     whole-program index is still built from the full tree
#                     (cross-TU rules L13-L16 are unsound on a partial
#                     index); only the *report* narrows, via --only.
#                     Ignores path args. Skips the baseline-staleness gate:
#                     a narrowed report cannot tell fixed from not-reported.
#   --jobs=N          spiderlint worker threads (passed through; output is
#                     byte-identical at any N)
#   --prune           rewrite the baseline dropping stale entries (full-tree
#                     runs only: pruning against a partial run deletes
#                     entries for files that simply were not linted)
#   --stale=MODE      warn (default) or error on stale baseline entries
#   --stats           print the spiderlint-stats line (files/findings/ms)
#   path...           files or directories (default: src tests bench)
#
# Exit codes: 0 clean, 1 findings (either tool), 2 environment/usage error.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${BUILD_DIR:-build}"
JOBS="$(nproc 2>/dev/null || echo 4)"

SPIDERLINT_ARGS=()
PATHS=()
BASELINE="__default__"
CHANGED=0
PRUNE=0
STALE_MODE=""
for arg in "$@"; do
  case "$arg" in
    --fix-hints)   SPIDERLINT_ARGS+=(--fix-hints) ;;
    --json)        SPIDERLINT_ARGS+=(--format=json) ;;
    --format=*)    SPIDERLINT_ARGS+=("$arg") ;;
    --fix)         SPIDERLINT_ARGS+=(--fix) ;;
    --stats)       SPIDERLINT_ARGS+=(--stats) ;;
    --jobs=*)      SPIDERLINT_ARGS+=("$arg") ;;
    --changed)     CHANGED=1 ;;
    --prune)       PRUNE=1 ;;
    --stale=*)     STALE_MODE="${arg#--stale=}" ;;
    --baseline=*)  BASELINE="${arg#--baseline=}" ;;
    --*)           echo "unknown option: $arg" >&2; exit 2 ;;
    *)             PATHS+=("$arg") ;;
  esac
done
if [ "${#PATHS[@]}" -eq 0 ]; then PATHS=(src tests bench); fi
if [ "$BASELINE" = "__default__" ] && [ -f ci/spiderlint-baseline.txt ]; then
  BASELINE=ci/spiderlint-baseline.txt
fi
if [ -n "$BASELINE" ] && [ "$BASELINE" != "__default__" ]; then
  SPIDERLINT_ARGS+=("--baseline=${BASELINE}")
fi
if [ "$PRUNE" -eq 1 ]; then SPIDERLINT_ARGS+=(--prune-baseline); fi
if [ -n "$STALE_MODE" ] && [ "$CHANGED" -eq 0 ]; then
  SPIDERLINT_ARGS+=("--stale=${STALE_MODE}")
fi

# --changed: collect files touched vs HEAD, then close over their includers
# so a header edit re-reports every translation unit it can break. Include
# edges are matched by include spelling (the same key spiderlint's L5 include
# graph uses), iterated to a fixpoint. The closure decides what is
# *reported* (--only); spiderlint still indexes the full default path set so
# the cross-TU rules (L13-L16 reachability, census, taint) see every
# definition — a partial index silently under-links and misses breaches.
if [ "$CHANGED" -eq 1 ]; then
  declare -A SELECTED=()
  while IFS= read -r f; do
    case "$f" in
      src/*|tests/*|bench/*) ;;
      *) continue ;;
    esac
    case "$f" in
      */lint_fixtures/*) continue ;;
      *.cpp|*.hpp|*.h|*.hh|*.cc) [ -f "$f" ] && SELECTED["$f"]=1 ;;
    esac
  done < <({ git diff --name-only HEAD; git ls-files --others --exclude-standard; } | sort -u)

  grown=1
  while [ "$grown" -eq 1 ]; do
    grown=0
    # Include spellings are repo paths minus the src/ prefix ("sim/time.hpp").
    spellings=()
    for f in "${!SELECTED[@]}"; do
      case "$f" in
        src/*.hpp|src/*.h|src/*.hh) spellings+=("${f#src/}") ;;
      esac
    done
    [ "${#spellings[@]}" -eq 0 ] && break
    pattern="$(printf '#include "%s"\n' "${spellings[@]}")"
    while IFS= read -r f; do
      case "$f" in */lint_fixtures/*) continue ;; esac
      if [ -z "${SELECTED[$f]:-}" ]; then
        SELECTED["$f"]=1
        grown=1
      fi
    done < <(grep -rlF "$pattern" src tests bench \
               --include='*.cpp' --include='*.hpp' --include='*.h' \
               --include='*.hh' --include='*.cc' 2>/dev/null || true)
  done

  if [ "${#SELECTED[@]}" -eq 0 ]; then
    echo "OK: no lintable changes vs HEAD"
    exit 0
  fi
  # Full-tree index, narrowed report: one --only per selected file. The
  # changed set is kept separately so clang-tidy (which has no cross-TU
  # pass) still runs on just the touched TUs.
  CHANGED_FILES=()
  while IFS= read -r f; do
    SPIDERLINT_ARGS+=("--only=$f")
    CHANGED_FILES+=("$f")
  done < <(printf '%s\n' "${!SELECTED[@]}" | sort)
  PATHS=(src tests bench)
  echo "=== lint --changed: reporting on ${#CHANGED_FILES[@]} file(s), full-tree index ==="
fi

# Build (or refresh) the spiderlint binary; export compile commands so a
# clang-tidy pass can piggyback on the same build tree.
if [ ! -f "${BUILD_DIR}/CMakeCache.txt" ]; then
  cmake -B "${BUILD_DIR}" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON > /dev/null
fi
cmake --build "${BUILD_DIR}" -j "${JOBS}" --target spiderlint > /dev/null

if [ ! -x "${BUILD_DIR}/tools/spiderlint" ]; then
  echo "FATAL: spiderlint binary missing at ${BUILD_DIR}/tools/spiderlint" >&2
  echo "       (the build above should have produced it — check the cmake output)" >&2
  exit 2
fi

echo "=== spiderlint ==="
status=0
"${BUILD_DIR}/tools/spiderlint" "${SPIDERLINT_ARGS[@]+"${SPIDERLINT_ARGS[@]}"}" \
    "${PATHS[@]}" || status=$?
if [ "$status" -ge 2 ]; then exit "$status"; fi

# clang-tidy is optional tooling (not in every container image): run it when
# present, note the skip when not — never fail for a missing binary.
if command -v clang-tidy > /dev/null 2>&1; then
  if [ ! -f "${BUILD_DIR}/compile_commands.json" ]; then
    cmake -B "${BUILD_DIR}" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON > /dev/null
  fi
  echo "=== clang-tidy ==="
  if [ "$CHANGED" -eq 1 ]; then
    mapfile -t tidy_sources < <(printf '%s\n' "${CHANGED_FILES[@]}" | grep '\.cpp$' || true)
  else
    mapfile -t tidy_sources < <(find "${PATHS[@]}" -name '*.cpp' ! -path '*/lint_fixtures/*' | sort)
  fi
  if [ "${#tidy_sources[@]}" -gt 0 ]; then
    clang-tidy -p "${BUILD_DIR}" --quiet "${tidy_sources[@]}" || status=1
  fi
else
  echo "=== clang-tidy: not installed, skipping (spiderlint still ran) ==="
fi

if [ "$status" -eq 0 ]; then
  echo "OK: lint clean"
else
  echo "FAIL: lint findings above" >&2
fi
exit "$status"
