// spiderlint tokenizer: the scanned lines (scan.hpp) re-joined into a flat
// C++ token stream.
//
// scan_source() already blanks comments and literal contents with columns
// preserved, so tokenization is a single pass over `Line::code`: identifiers,
// pp-numbers (digit separators, exponents, hex), string/char delimiters, and
// punctuation (with `::` and `->` kept as single tokens — rules that balance
// template angle brackets rely on `<`/`>` staying single characters).
//
// Preprocessor lines produce no tokens, and lines inside `#if 0` /
// `#if false` regions are skipped entirely — dead code cannot trip a rule.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "tools/lint/scan.hpp"

namespace spider::lint {

enum class TokKind {
  kIdent,   ///< identifier or keyword
  kNumber,  ///< pp-number (integer, float, hex, digit-separated)
  kString,  ///< string literal (contents blanked by the scanner)
  kChar,    ///< character literal (contents blanked by the scanner)
  kPunct,   ///< punctuation; "::" and "->" are single tokens
};

struct Tok {
  TokKind kind = TokKind::kPunct;
  std::string text;
  std::size_t line = 0;  ///< 0-based line index into SourceFile::lines
  std::size_t col = 0;   ///< 0-based column of the first character
};

struct TokenStream {
  std::vector<Tok> tokens;
};

/// Tokenize the scanned file. Never fails.
TokenStream tokenize(const SourceFile& file);

/// The directive word of a preprocessor line ("include", "if", "endif", ...);
/// empty when the line is not a preprocessor line.
std::string_view pp_directive(const Line& line);

/// Per-line map of `#if 0`/`#if false` regions: `true` means the line is
/// preprocessed away (the controlling directives themselves stay active).
std::vector<bool> inactive_pp_lines(const SourceFile& file);

/// True when `t` is the punctuation `p`.
inline bool is_punct(const Tok& t, std::string_view p) {
  return t.kind == TokKind::kPunct && t.text == p;
}

/// True when `t` is the identifier `name`.
inline bool is_ident(const Tok& t, std::string_view name) {
  return t.kind == TokKind::kIdent && t.text == name;
}

/// Index of the punctuation matching the opener at `open` (e.g. '(' -> ')',
/// '{' -> '}', '<' -> '>'), or `tokens.size()` when unbalanced. `open` must
/// point at the opening token.
std::size_t matching_close(const std::vector<Tok>& tokens, std::size_t open);

/// True when the `[` at `pos` introduces a lambda capture list, judged from
/// the preceding token: after an identifier, number, string, `)` or `]` a
/// `[` is a subscript (or an array declarator); after `return`-like
/// keywords, punctuation that starts an expression, or at stream start it
/// is a lambda. `[[` (an attribute) is never a lambda introducer. False
/// negatives are acceptable — capture-based rules miss a finding — but a
/// subscript must never be parsed as a capture list.
bool lambda_intro_at(const std::vector<Tok>& tokens, std::size_t pos);

}  // namespace spider::lint
