#include "workload/checkpoint.hpp"

#include <algorithm>

namespace spider::workload {

CheckpointWorkload::CheckpointWorkload(const CheckpointParams& params)
    : params_(params) {}

Bytes CheckpointWorkload::bytes_per_checkpoint() const {
  return static_cast<Bytes>(static_cast<double>(params_.memory_bytes) *
                            params_.checkpoint_fraction);
}

Bytes CheckpointWorkload::bytes_per_client() const {
  return bytes_per_checkpoint() / std::max<std::uint32_t>(1, params_.clients);
}

Bandwidth CheckpointWorkload::required_bandwidth(double window_s) const {
  return static_cast<double>(bytes_per_checkpoint()) / window_s;
}

std::vector<IoBurst> CheckpointWorkload::generate(double duration_s,
                                                  Rng& rng) const {
  std::vector<IoBurst> bursts;
  double t = params_.period_s * rng.uniform(0.0, 1.0);  // random phase
  while (t < duration_s) {
    IoBurst b;
    b.start = sim::from_seconds(t);
    b.clients = params_.clients;
    b.bytes_per_client = bytes_per_client();
    b.request_size = params_.request_size;
    b.dir = block::IoDir::kWrite;
    b.files_per_client = params_.files_per_client;
    bursts.push_back(b);
    const double jitter =
        1.0 + params_.period_jitter * (2.0 * rng.uniform() - 1.0);
    t += params_.period_s * jitter;
  }
  return bursts;
}

}  // namespace spider::workload
