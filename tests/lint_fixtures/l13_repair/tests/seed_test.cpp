// Fixture for spiderlint rule L13: tests/ is a repair context (seeded
// corruption is how fsck gets exercised). Must NOT be flagged.
#include "fs/repairable.hpp"

namespace fixture {

void seed_corruption(Table& t) {
  t.fsck_set_count(999);
}

}  // namespace fixture
