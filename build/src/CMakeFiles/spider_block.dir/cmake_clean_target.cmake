file(REMOVE_RECURSE
  "libspider_block.a"
)
