
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fs/client.cpp" "src/CMakeFiles/spider_fs.dir/fs/client.cpp.o" "gcc" "src/CMakeFiles/spider_fs.dir/fs/client.cpp.o.d"
  "/root/repo/src/fs/dne.cpp" "src/CMakeFiles/spider_fs.dir/fs/dne.cpp.o" "gcc" "src/CMakeFiles/spider_fs.dir/fs/dne.cpp.o.d"
  "/root/repo/src/fs/filesystem.cpp" "src/CMakeFiles/spider_fs.dir/fs/filesystem.cpp.o" "gcc" "src/CMakeFiles/spider_fs.dir/fs/filesystem.cpp.o.d"
  "/root/repo/src/fs/fs_namespace.cpp" "src/CMakeFiles/spider_fs.dir/fs/fs_namespace.cpp.o" "gcc" "src/CMakeFiles/spider_fs.dir/fs/fs_namespace.cpp.o.d"
  "/root/repo/src/fs/journal.cpp" "src/CMakeFiles/spider_fs.dir/fs/journal.cpp.o" "gcc" "src/CMakeFiles/spider_fs.dir/fs/journal.cpp.o.d"
  "/root/repo/src/fs/mds.cpp" "src/CMakeFiles/spider_fs.dir/fs/mds.cpp.o" "gcc" "src/CMakeFiles/spider_fs.dir/fs/mds.cpp.o.d"
  "/root/repo/src/fs/obdsurvey.cpp" "src/CMakeFiles/spider_fs.dir/fs/obdsurvey.cpp.o" "gcc" "src/CMakeFiles/spider_fs.dir/fs/obdsurvey.cpp.o.d"
  "/root/repo/src/fs/oss.cpp" "src/CMakeFiles/spider_fs.dir/fs/oss.cpp.o" "gcc" "src/CMakeFiles/spider_fs.dir/fs/oss.cpp.o.d"
  "/root/repo/src/fs/ost.cpp" "src/CMakeFiles/spider_fs.dir/fs/ost.cpp.o" "gcc" "src/CMakeFiles/spider_fs.dir/fs/ost.cpp.o.d"
  "/root/repo/src/fs/purge.cpp" "src/CMakeFiles/spider_fs.dir/fs/purge.cpp.o" "gcc" "src/CMakeFiles/spider_fs.dir/fs/purge.cpp.o.d"
  "/root/repo/src/fs/recovery.cpp" "src/CMakeFiles/spider_fs.dir/fs/recovery.cpp.o" "gcc" "src/CMakeFiles/spider_fs.dir/fs/recovery.cpp.o.d"
  "/root/repo/src/fs/striping.cpp" "src/CMakeFiles/spider_fs.dir/fs/striping.cpp.o" "gcc" "src/CMakeFiles/spider_fs.dir/fs/striping.cpp.o.d"
  "/root/repo/src/fs/thinfs.cpp" "src/CMakeFiles/spider_fs.dir/fs/thinfs.cpp.o" "gcc" "src/CMakeFiles/spider_fs.dir/fs/thinfs.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/spider_block.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/spider_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/spider_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/spider_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
