// CenterModel: the whole OLCF I/O stack wired together (Figure 1).
//
// Builds, from a CenterConfig: the Titan-like torus and its client
// population, placed LNET routers with FGR, the SION InfiniBand fabric,
// the SSU fleet (disks, RAID groups, controller pairs), OSTs/OSS, and the
// multi-namespace Lustre-like file system — then registers every layer as
// capacitated solver resources so end-to-end experiments (Lessons 12, 14,
// 15) run against the full path:
//
//   client NIC -> torus links -> LNET router -> IB leaf [-> core -> leaf]
//     -> OSS -> controller pair -> OST (RAID group)
//
// CenterModel implements workload::IoPathProvider for steady-state IOR
// sweeps, and can register its resources into a dynamic FlowNetwork for
// DES scenarios (bursts, interference, rebuild windows).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "core/spider_config.hpp"
#include "fs/filesystem.hpp"
#include "net/fgr.hpp"
#include "sim/flow_network.hpp"
#include "sim/steady_state.hpp"
#include "tools/libpio.hpp"
#include "workload/ior.hpp"

namespace spider::core {

enum class RoutingPolicy { kFgr, kNearest, kRoundRobin };
enum class ClientPlacement { kRandom, kOptimal };

/// Resource ids of every layer inside one solver/network instance.
struct ResourceMap {
  std::vector<sim::ResourceId> node_nic;    ///< per torus node
  std::vector<sim::ResourceId> torus_link;  ///< per directed link (may be empty)
  std::vector<sim::ResourceId> router;
  std::vector<sim::ResourceId> ib_leaf;
  std::vector<sim::ResourceId> ib_core;
  std::vector<sim::ResourceId> oss;
  std::vector<sim::ResourceId> controller;  ///< per SSU (pair)
  std::vector<sim::ResourceId> ost;
  bool has_torus_links = false;
};

class CenterModel final : public workload::IoPathProvider {
 public:
  CenterModel(const CenterConfig& config, Rng& rng);

  const CenterConfig& config() const { return config_; }

  // --- topology accessors -------------------------------------------------
  const net::Torus3D& torus() const { return torus_; }
  const net::FgrPolicy& fgr() const { return *fgr_; }
  const net::IbFabric& fabric() const { return fabric_; }
  std::size_t num_ssus() const { return ssus_.size(); }
  block::Ssu& ssu(std::size_t i) { return ssus_.at(i); }
  std::size_t total_osts() const { return osts_.size(); }
  fs::Ost& ost_at(std::size_t global) { return osts_.at(global); }
  std::size_t num_oss() const { return oss_.size(); }
  fs::Oss& oss_at(std::size_t i) { return oss_.at(i); }
  fs::FileSystem& filesystem() { return filesystem_; }

  std::size_t oss_of_ost(std::size_t global_ost) const;
  std::size_t ssu_of_ost(std::size_t global_ost) const;
  std::size_t namespace_of_ost(std::size_t global_ost) const;
  std::size_t leaf_of_ost(std::size_t global_ost) const;
  int node_of_client(std::size_t client) const;

  // --- knobs ---------------------------------------------------------------
  /// Which namespace IOR-style runs target; SIZE_MAX = all OSTs.
  void set_target_namespace(std::size_t ns);
  std::size_t target_namespace() const { return target_ns_; }
  void set_routing_policy(RoutingPolicy policy) { routing_ = policy; }
  /// Re-deal clients to torus nodes. kRandom models scheduler placement
  /// (optimized for nearest-neighbor compute, not I/O); kOptimal co-locates
  /// clients with their routers (the paper's hand-placed 1,008-client run).
  void set_client_placement(ClientPlacement placement, Rng& rng);
  ClientPlacement client_placement() const { return placement_mode_; }
  /// Swap controller generation fleet-wide and refresh solver capacities.
  void upgrade_controllers(const block::ControllerParams& params);
  /// Set every OST's used-space fraction (fill-state experiments) and
  /// refresh solver capacities.
  void set_fleet_fullness(double fraction);
  /// Re-read every component's current bandwidth into the solver (after
  /// culling, failures, rebuilds, fullness changes...).
  void refresh_capacities();

  // --- IoPathProvider ------------------------------------------------------
  std::size_t max_clients() const override { return config_.clients; }
  std::size_t num_osts() const override;
  void reset_flows() override { solver_.clear_flows(); }
  sim::SteadyStateSolver& solver() override { return solver_; }
  workload::DataFlow data_flow(std::size_t client, std::size_t ost,
                               block::IoDir dir, block::IoMode mode,
                               Bytes request_size) override;

  /// Same flow construction against an arbitrary resource map (DES use).
  workload::DataFlow make_flow(const ResourceMap& map, std::size_t client,
                               std::size_t global_ost, block::IoDir dir,
                               block::IoMode mode, Bytes request_size);

  /// Register all layers into a dynamic network. `include_torus_links`
  /// adds per-link resources (full fidelity; larger solves).
  ResourceMap register_into(sim::FlowNetwork& net,
                            bool include_torus_links = false) const;
  const ResourceMap& steady_map() const { return steady_map_; }

  // --- telemetry ------------------------------------------------------------
  /// Utilization snapshot from the last steady-state solve (libPIO input).
  tools::LoadSnapshot loads_from_solver() const;
  /// Utilization snapshot from a dynamic network's current state.
  tools::LoadSnapshot loads_from_network(const sim::FlowNetwork& net,
                                         const ResourceMap& map) const;
  /// Static wiring for libPIO.
  tools::StorageTopology storage_topology() const;

  /// Theoretical ceilings per layer for a uniform workload — the Lesson 12
  /// bottom-up profile.
  struct LayerProfile {
    double disks = 0.0;        ///< raw media aggregate
    double raid = 0.0;         ///< after RAID geometry/parity
    double controllers = 0.0;  ///< controller-pair ceiling
    double obdfilter = 0.0;    ///< after FS overheads (OST level)
    double oss = 0.0;          ///< OSS node ceilings
    double routers = 0.0;      ///< LNET router fleet
    double ib_leaves = 0.0;
    double clients = 0.0;      ///< aggregate client pipeline (optimal)
    double end_to_end = 0.0;   ///< min of the stacked layers
  };
  LayerProfile layer_profile(block::IoMode mode, block::IoDir dir,
                             Bytes request_size = 1_MiB) const;

 private:
  std::size_t ns_base_ost(std::size_t ns) const;
  std::size_t select_router(int client_node, std::size_t dest_leaf);
  std::vector<double> current_ost_refs() const;
  void build_fleet(Rng& rng);
  void build_filesystem();
  void build_solver();
  double ost_capacity_ref(std::size_t global_ost) const;
  double controller_capacity(std::size_t ssu) const;

  CenterConfig config_;
  net::Torus3D torus_;
  net::IbFabric fabric_;
  std::vector<net::PlacedRouter> routers_;
  std::unique_ptr<net::FgrPolicy> fgr_;
  std::vector<block::Ssu> ssus_;
  std::vector<fs::Ost> osts_;
  std::vector<fs::Oss> oss_;
  fs::FileSystem filesystem_;
  std::vector<int> node_of_client_;
  ClientPlacement placement_mode_ = ClientPlacement::kRandom;
  RoutingPolicy routing_ = RoutingPolicy::kFgr;
  std::uint64_t rr_counter_ = 0;
  std::size_t target_ns_ = 0;
  sim::SteadyStateSolver solver_;
  ResourceMap steady_map_;
  std::vector<double> ost_ref_bw_;
};

}  // namespace spider::core
