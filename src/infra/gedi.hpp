// GeDI: Generic Diskless Installer — cluster provisioning (Lesson 7).
//
// "The OLCF has deployed cluster resources (both file system and compute)
// using the open-source Generic Diskless Installer (GeDI) since 2007. This
// mechanism allows the nodes to boot over the control network, tftp, an
// initial initrd, and then mount the root file system in a read-only
// fashion." OLCF extended GeDI for Spider II so configuration files are
// generated *as the node boots*, before the service needing them starts:
// "Scripts in /etc/gedi.d are run in integer order to build configuration
// files for network configuration, the InfiniBand srp_daemon
// configuration, and the InfiniBand Subnet Manager."
//
// The model covers what the paper argues with it: diskless servers need no
// RAID controllers/backplanes/cabling/carriers/drives (cost), the image
// build is repeatable (every boot converges to the image + generated
// config), and image swaps make MTTR a reboot rather than a reinstall.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/units.hpp"

namespace spider::infra {

/// A versioned, read-only root image served over the control network.
struct NodeImage {
  std::string name = "oss-image";
  std::uint32_t version = 1;
  Bytes size = 2_GiB;
};

/// One /etc/gedi.d script: runs at `order` during boot and emits
/// `generated_files` into the RAM-disk overlays (/etc, /var, /opt).
struct BootScript {
  int order = 0;
  std::string name;
  std::vector<std::string> generated_files;
  /// Seconds the script takes on a healthy boot.
  double runtime_s = 0.5;
};

/// Result of booting one node.
struct BootRecord {
  std::uint32_t node = 0;
  std::uint32_t image_version = 0;
  double boot_time_s = 0.0;
  /// Script names in execution order (must be integer-order sorted).
  std::vector<std::string> script_order;
  /// Host-specific files generated before services started.
  std::vector<std::string> generated_files;
};

struct GediParams {
  /// tftp + kernel + initrd transfer rate from the boot server.
  Bandwidth control_net_bw = 100.0 * kMBps;
  /// Fixed firmware/POST time per node.
  double post_s = 45.0;
  /// Kernel + initrd + read-only root mount once the image arrives.
  double kernel_init_s = 20.0;
  /// Concurrent image streams the boot infrastructure sustains.
  std::size_t parallel_streams = 64;
};

class GediProvisioner {
 public:
  explicit GediProvisioner(GediParams params = {});

  void set_image(NodeImage image) { image_ = image; }
  const NodeImage& image() const { return image_; }
  /// Register a gedi.d script; scripts run in ascending `order` (ties by
  /// name, as the shell glob would).
  void add_boot_script(BootScript script);
  std::size_t scripts() const { return scripts_.size(); }

  /// Boot one node: POST, image transfer, kernel, then gedi.d scripts in
  /// integer order. Deterministic except for small jitter from `rng`.
  BootRecord boot_node(std::uint32_t node, Rng& rng) const;

  /// Wall-clock to (re)boot a fleet of `nodes`, given the configured
  /// parallel stream limit — the MTTR lever Lesson 7 cares about.
  double fleet_boot_time_s(std::size_t nodes) const;

 private:
  GediParams params_;
  NodeImage image_;
  std::vector<BootScript> scripts_;
};

// --- the diskless cost argument ---------------------------------------------

/// Per-node hardware a diskful server needs that a diskless one does not
/// ("these nodes do not require RAID controllers, disk backplanes, cabling,
/// disk carriers, or the physical hard drives").
struct DiskfulHardwareCost {
  double raid_controller = 450.0;
  double backplane = 220.0;
  double cabling = 60.0;
  double carriers = 90.0;
  double boot_drives = 2.0 * 180.0;  // mirrored pair
  /// Annualized replacement/maintenance cost of the above.
  double annual_maintenance_fraction = 0.08;
};

struct DisklessSavings {
  double per_node_acquisition = 0.0;
  double fleet_acquisition = 0.0;
  double fleet_annual_maintenance = 0.0;
};

/// Acquisition + maintenance savings across a server fleet (Spider II: 288
/// OSS + 440 routers + MDS nodes all boot diskless).
DisklessSavings diskless_savings(std::size_t nodes,
                                 const DiskfulHardwareCost& cost = {});

/// MTTR comparison for "replace a broken server's system state": diskless
/// = swap hardware + one boot; diskful = swap + reinstall + configure.
struct MttrComparison {
  double diskless_s = 0.0;
  double diskful_s = 0.0;
};
MttrComparison repair_mttr(const GediProvisioner& gedi,
                           double reinstall_s = 3600.0,
                           double manual_config_s = 1800.0);

}  // namespace spider::infra
