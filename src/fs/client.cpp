#include "fs/client.hpp"

#include <algorithm>

namespace spider::fs {

Bandwidth client_stream_ceiling(const LustreClientParams& params) {
  const double window_bw =
      static_cast<double>(params.max_rpcs_in_flight) *
      static_cast<double>(params.rpc_bytes()) / params.rpc_rtt_s;
  const double dirty_bw =
      static_cast<double>(params.max_dirty_bytes) / params.rpc_rtt_s;
  return std::min({window_bw, dirty_bw, params.link_bw});
}

Bandwidth client_transfer_ceiling(const LustreClientParams& params,
                                  Bytes transfer_size) {
  if (transfer_size == 0) return 0.0;
  const Bytes rpc = params.rpc_bytes();
  if (transfer_size >= rpc) return client_stream_ceiling(params);
  // Sub-RPC transfers: each syscall produces one undersized RPC; the
  // pipeline depth still applies but each slot carries fewer bytes.
  const double window_bw = static_cast<double>(params.max_rpcs_in_flight) *
                           static_cast<double>(transfer_size) /
                           params.rpc_rtt_s;
  return std::min({window_bw,
                   static_cast<double>(params.max_dirty_bytes) / params.rpc_rtt_s,
                   params.link_bw});
}

Bandwidth client_striped_ceiling(const LustreClientParams& params,
                                 unsigned stripe_count) {
  if (stripe_count == 0) return 0.0;
  return std::min(static_cast<double>(stripe_count) *
                      client_stream_ceiling(params),
                  params.link_bw);
}

}  // namespace spider::fs
