// Capacity planning: project classification, namespace balancing, and the
// acquisition sizing rules (Sections IV-C and VII).
//
// "OLCF developed a model that classifies projects based on their capacity
// and bandwidth requirements. The projects were then distributed among the
// namespaces" — a 2-D balancing problem solved greedily here. Plus the two
// sizing rules the paper states:
//  - capacity >= 30x the aggregate memory of all connected systems
//    (used in the DOE/NNSA CORAL acquisition);
//  - acquisition should hold usable capacity ~30% above workload estimates
//    so fullness stays below the degradation point (Lesson 10).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/units.hpp"

namespace spider::tools {

struct ProjectRequirement {
  std::uint32_t id = 0;
  Bytes capacity = 0;
  Bandwidth bandwidth = 0.0;
};

struct NamespacePlan {
  /// assignment[i] = namespace index of project i (parallel to input span).
  std::vector<std::size_t> assignment;
  std::vector<Bytes> capacity_per_ns;
  std::vector<Bandwidth> bandwidth_per_ns;
  /// max/mean - 1 over namespaces, for each dimension.
  double capacity_imbalance = 0.0;
  double bandwidth_imbalance = 0.0;
};

/// Greedy 2-D balance: sort projects by their dominant normalized demand,
/// assign each to the namespace with the lowest combined load.
NamespacePlan plan_namespaces(std::span<const ProjectRequirement> projects,
                              std::size_t namespaces);

/// The 30x-memory capacity target.
Bytes capacity_target_from_memory(Bytes aggregate_memory, double multiple = 30.0);

/// Headroom rule: provision capacity so expected usage sits below the
/// degradation knee (Lesson 10: "capacity targets 30% or more above
/// aggregate user workload estimates").
Bytes capacity_target_from_usage(Bytes expected_usage, double headroom = 0.30);

// --- acquisition cost model (Section II / VII tradeoff discussion) ---------

struct CostModel {
  /// PFS cost as a fraction of a compute platform's acquisition cost under
  /// the machine-exclusive model ("can easily exceed 10%").
  double exclusive_pfs_fraction = 0.10;
  /// One-time center-wide PFS cost, as a fraction of the flagship machine.
  double datacentric_pfs_fraction = 0.12;
  /// Extra data-movement infrastructure needed to link exclusive file
  /// systems (fraction of flagship cost).
  double movement_infra_fraction = 0.02;
  /// Integration cost per attached platform under the data-centric model.
  double attach_fraction = 0.005;
};

struct CostComparison {
  double exclusive_total = 0.0;    ///< in flagship-machine cost units
  double datacentric_total = 0.0;
  double savings_fraction = 0.0;   ///< (excl - dc) / excl
};

/// Total storage cost across `platforms` compute systems of relative costs
/// `platform_costs` (flagship = 1.0) under both models.
CostComparison compare_acquisition_cost(std::span<const double> platform_costs,
                                        const CostModel& model = {});

}  // namespace spider::tools
