// Fixture for spiderlint rule L9 (shard-escape).
//
// A closure handed to a schedule call runs as an event on one shard's lane;
// letting it alias a SPIDER_SHARD_OWNED member by reference — directly,
// through `this`, or through a helper reached via the per-TU call graph —
// hands that shard's private state to a foreign lane. The value-copy
// capture, the plain member, and the barrier-code access are engineered
// false positives.
#include <vector>

#include "common/annotations.hpp"

namespace fixture {

class Engine {
 public:
  // Init-capture aliasing a shard-owned member by reference. Flagged.
  void bad_alias() {
    sim_.schedule_at(10, [&box = outbox_] { box.clear(); });  // L9
  }

  // `[&]` captures this; the body touches shard-owned state. Flagged.
  void bad_default_ref() {
    sim_.schedule_at(10, [&] { outbox_.clear(); });  // L9
  }

  // `[this]` plus a helper call that reaches shard-owned state through the
  // call graph. Flagged at the call.
  void bad_via_helper() {
    sim_.schedule_at(10, [this] { drain(); });  // L9
  }

  // Value init-capture copies the mailbox: the event owns its snapshot.
  // Must NOT be flagged.
  void good_value_copy() {
    sim_.schedule_at(10, [box = outbox_] { (void)box.size(); });
  }

  // Members without the annotation are L6/L12's business, not L9's. Must
  // NOT be flagged.
  void good_plain_member() {
    sim_.schedule_at(10, [&] { ticks_ += 1; });
  }

  // Barrier code (no closure) may touch owned state directly. Must NOT be
  // flagged.
  void drain() { outbox_.clear(); }

 private:
  struct FakeSim {
    template <typename Fn>
    void schedule_at(long when, Fn fn) {
      (void)when;
      fn();
    }
  };
  FakeSim sim_;
  std::vector<int> outbox_ SPIDER_SHARD_OWNED(barrier);
  long ticks_ = 0;
};

}  // namespace fixture
