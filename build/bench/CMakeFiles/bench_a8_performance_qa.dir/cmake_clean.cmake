file(REMOVE_RECURSE
  "CMakeFiles/bench_a8_performance_qa.dir/bench_a8_performance_qa.cpp.o"
  "CMakeFiles/bench_a8_performance_qa.dir/bench_a8_performance_qa.cpp.o.d"
  "bench_a8_performance_qa"
  "bench_a8_performance_qa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a8_performance_qa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
