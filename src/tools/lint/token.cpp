#include "tools/lint/token.hpp"

#include <cctype>

namespace spider::lint {

namespace {

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

/// Trimmed view of the expression following a directive word, e.g. the "0"
/// of `#if 0  // why`.
std::string_view pp_expression(const Line& line) {
  std::string_view code = line.code;
  std::size_t i = code.find('#');
  if (i == std::string_view::npos) return {};
  ++i;
  while (i < code.size() && (code[i] == ' ' || code[i] == '\t')) ++i;
  while (i < code.size() && ident_char(code[i])) ++i;  // directive word
  while (i < code.size() && (code[i] == ' ' || code[i] == '\t')) ++i;
  std::size_t j = code.size();
  while (j > i && (code[j - 1] == ' ' || code[j - 1] == '\t')) --j;
  return code.substr(i, j - i);
}

}  // namespace

std::string_view pp_directive(const Line& line) {
  if (!is_preprocessor(line)) return {};
  std::string_view code = line.code;
  std::size_t i = code.find('#');
  ++i;
  while (i < code.size() && (code[i] == ' ' || code[i] == '\t')) ++i;
  std::size_t j = i;
  while (j < code.size() && ident_char(code[j])) ++j;
  return code.substr(i, j - i);
}

std::vector<bool> inactive_pp_lines(const SourceFile& file) {
  std::vector<bool> inactive(file.lines.size(), false);
  bool dead = false;       // inside an `#if 0` region
  int dead_nesting = 0;    // conditionals opened inside the dead region
  for (std::size_t l = 0; l < file.lines.size(); ++l) {
    const Line& line = file.lines[l];
    const std::string_view d = pp_directive(line);
    if (dead) {
      if (d == "if" || d == "ifdef" || d == "ifndef") {
        ++dead_nesting;
      } else if (d == "endif") {
        if (dead_nesting > 0) {
          --dead_nesting;
        } else {
          dead = false;
          continue;  // the #endif itself is live
        }
      } else if (d == "else" && dead_nesting == 0) {
        dead = false;
        continue;
      }
      inactive[l] = true;
      continue;
    }
    if (d == "if") {
      const std::string_view expr = pp_expression(line);
      if (expr == "0" || expr == "false") {
        dead = true;
        dead_nesting = 0;
      }
    }
    // `#else` after a taken branch would also be dead; tracking only the
    // `#if 0` idiom keeps the scanner honest about what it understands.
  }
  return inactive;
}

std::size_t matching_close(const std::vector<Tok>& tokens, std::size_t open) {
  if (open >= tokens.size() || tokens[open].kind != TokKind::kPunct ||
      tokens[open].text.size() != 1) {
    return tokens.size();
  }
  const char o = tokens[open].text[0];
  const char c = o == '(' ? ')' : o == '{' ? '}' : o == '[' ? ']'
                                                : o == '<' ? '>' : '\0';
  if (c == '\0') return tokens.size();
  int depth = 0;
  for (std::size_t i = open; i < tokens.size(); ++i) {
    const Tok& t = tokens[i];
    if (t.kind != TokKind::kPunct || t.text.size() != 1) continue;
    if (t.text[0] == o) ++depth;
    if (t.text[0] == c && --depth == 0) return i;
  }
  return tokens.size();
}

bool lambda_intro_at(const std::vector<Tok>& tokens, std::size_t pos) {
  if (pos >= tokens.size() || !is_punct(tokens[pos], "[")) return false;
  // `[[` opens an attribute, and a lone `[` directly inside one (the inner
  // bracket) is not an introducer either.
  if (pos + 1 < tokens.size() && is_punct(tokens[pos + 1], "[")) return false;
  if (pos == 0) return true;
  const Tok& prev = tokens[pos - 1];
  if (is_punct(prev, "[")) return false;  // inner bracket of `[[`
  if (prev.kind == TokKind::kIdent) {
    // After most identifiers `[` subscripts (arr[i]) or declares an array
    // (int a[4]); after expression-starting keywords it is a lambda.
    return prev.text == "return" || prev.text == "co_return" ||
           prev.text == "co_yield" || prev.text == "case" ||
           prev.text == "throw";
  }
  if (prev.kind == TokKind::kNumber || prev.kind == TokKind::kString ||
      prev.kind == TokKind::kChar) {
    return false;
  }
  // Punctuation: closers end a postfix expression, so `[` subscripts.
  if (is_punct(prev, ")") || is_punct(prev, "]") || is_punct(prev, "}")) {
    return false;
  }
  // `delete[]` / `new T[n]` reach here only via the ident branch above.
  return true;
}

TokenStream tokenize(const SourceFile& file) {
  TokenStream out;
  const std::vector<bool> inactive = inactive_pp_lines(file);
  for (std::size_t l = 0; l < file.lines.size(); ++l) {
    const Line& line = file.lines[l];
    if (inactive[l] || is_preprocessor(line)) continue;
    const std::string& code = line.code;
    std::size_t i = 0;
    while (i < code.size()) {
      const char c = code[i];
      if (c == ' ' || c == '\t') {
        ++i;
        continue;
      }
      Tok tok;
      tok.line = l;
      tok.col = i;
      if (ident_start(c)) {
        std::size_t j = i;
        while (j < code.size() && ident_char(code[j])) ++j;
        tok.kind = TokKind::kIdent;
        tok.text = code.substr(i, j - i);
        i = j;
      } else if (std::isdigit(static_cast<unsigned char>(c))) {
        // pp-number, mirroring the scanner's lexing: identifier characters,
        // '.', digit separators, signed exponents.
        std::size_t j = i;
        while (j < code.size()) {
          const char d = code[j];
          if (ident_char(d) || d == '.') {
            ++j;
          } else if (d == '\'' && j + 1 < code.size() &&
                     std::isalnum(static_cast<unsigned char>(code[j + 1]))) {
            ++j;
          } else if ((d == '+' || d == '-') && j > i &&
                     (code[j - 1] == 'e' || code[j - 1] == 'E' ||
                      code[j - 1] == 'p' || code[j - 1] == 'P')) {
            ++j;
          } else {
            break;
          }
        }
        tok.kind = TokKind::kNumber;
        tok.text = code.substr(i, j - i);
        i = j;
      } else if (c == '"' || c == '\'') {
        // Contents are blanked; skip to the closing delimiter when present
        // on this line (multi-line raw strings leave lone delimiters).
        tok.kind = c == '"' ? TokKind::kString : TokKind::kChar;
        tok.text = std::string(1, c);
        const std::size_t close = code.find(c, i + 1);
        i = close == std::string::npos ? code.size() : close + 1;
      } else {
        tok.kind = TokKind::kPunct;
        if (i + 1 < code.size() &&
            ((c == ':' && code[i + 1] == ':') ||
             (c == '-' && code[i + 1] == '>'))) {
          tok.text = code.substr(i, 2);
          i += 2;
        } else {
          tok.text = std::string(1, c);
          ++i;
        }
      }
      out.tokens.push_back(std::move(tok));
    }
  }
  return out;
}

}  // namespace spider::lint
