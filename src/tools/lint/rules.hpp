// spiderlint rules: project-specific determinism & unit-safety checks.
//
// The simulator's claims (fair-share splits, congestion envelopes, slow-disk
// culling distributions) are only meaningful if runs are reproducible.
// PR 1 made divergence observable (sim/replay.hpp); these rules make the
// usual sources of divergence unmergeable:
//
//   L1 unordered-iteration  (error)   no unordered_map/unordered_set in
//       sim-critical directories (src/sim, src/block, src/fs, src/net) or in
//       tests/bench: iteration order — and therefore float-sum order —
//       depends on hash/rehash history. Suppress: // spiderlint: ordered-ok
//   L2 nondet-source        (error)   no wall-clock or ambient randomness
//       anywhere in src/ (std::random_device, rand, time(), system_clock,
//       mt19937 outside common/rng). Suppress: // spiderlint: nondet-ok
//   L3 raw-unit-double      (warning) a raw `double` in a public header
//       whose name carries a unit (*_bytes, *_seconds, *_bw, latency*)
//       must use the units.hpp vocabulary types instead.
//       Suppress: // spiderlint: units-ok
//   L4 replay-site          (error)   bare schedule()/reschedule() entry
//       points must carry the scheduling site (std::source_location or a
//       site hash) so replay divergence stays localizable.
//       Suppress: // spiderlint: site-ok
//   L5 layer-violation      (error)   the include graph must respect the
//       architectural layering common -> sim -> {block,fs,net} -> workload
//       -> core -> {tools,infra}: no upward includes, no cycles.
//       Suppress: // spiderlint: layer-ok
//   L6 lock-discipline      (error)   a member annotated SPIDER_GUARDED_BY(m)
//       may only be touched in functions that lock m (lock_guard/unique_lock/
//       scoped_lock/m.lock()) or are annotated SPIDER_REQUIRES(m).
//       Suppress: // spiderlint: lock-ok
//   L7 schedule-site-flow   (error)   Simulator::schedule_at/schedule_in
//       default their std::source_location argument to the immediate caller;
//       calling them from a private/protected helper (or an anonymous-
//       namespace function) without forwarding an explicit site collapses
//       every event from that helper to one site. Thread the location from
//       the public entry point. Suppress: // spiderlint: flow-ok
//   L8 calibration-constant (warning) a bare numeric literal >= 1000 inside
//       a function body in src/{block,fs,net} is a bandwidth/latency/size
//       calibration constant; hoist it into a named constant in a config
//       header (or units.hpp) so provenance is greppable.
//       Suppress: // spiderlint: calib-ok
//   L9 shard-escape         (error)   a closure handed to a schedule call
//       (schedule_at/schedule_in/schedule_cross/schedule_sited/sim::Task)
//       must not capture by reference — or reach through `this`/helper
//       calls — a member annotated SPIDER_SHARD_OWNED: the event runs on a
//       shard lane, and only the owning shard's events may touch the state.
//       Suppress: // spiderlint: shard-ok
//   L10 cross-shard-schedule (error)  inside an event running on shard X
//       (a closure scheduled onto handle(X), traced through helpers via the
//       call graph), a direct schedule_at/schedule_in on a Simulator&
//       obtained for a different shard index races that shard's queue —
//       cross-shard events must go through schedule_cross.
//       Suppress: // spiderlint: cross-ok
//   L11 lookahead-provenance (error)  the `when` argument of schedule_cross
//       must mention a lookahead/latency symbol (net/lookahead.hpp,
//       epoch_end, ...); bare numeric delays have no provable relation to
//       the conservative lookahead contract, and constants below the torus
//       hop floor (105 ns) are flagged as certain breaches.
//       Suppress: // spiderlint: lookahead-ok
//   L12 pool-capture-discipline (error) closures handed to parallel_for/
//       ThreadPool::submit/submit_to must not capture by reference members
//       lacking SPIDER_GUARDED_BY/std::atomic/SPIDER_SHARD_OWNED; locals
//       are exempt under a visible join (parallel_for always joins;
//       submit needs wait_idle()/a condition-variable wait in the same
//       function). Suppress: // spiderlint: pool-ok
//
// Rules L13-L16 are whole-program: they run on the cross-TU global index
// (global.hpp), not per file.
//
//   L13 repair-confinement  (error)   fsck_set_*/records_mutable/
//       truncate_to/SPIDER_REPAIR_ONLY functions may only be reached —
//       through the global call graph — from tools/spiderfsck/,
//       tools/faultcli/, tests/, or bench/.
//       Suppress: // spiderlint: repair-ok
//   L14 journal-before-mutation (error) a member function of a class that
//       exposes repair mutators, defined under src/fs/, must append to an
//       OpLog before mutating member state, or carry SPIDER_JOURNALED(why).
//       Suppress: // spiderlint: journal-ok
//   L15 census-exhaustiveness (error) every FindingKind enumerator needs an
//       inject_corruption case, a repair case, and a test mention; every
//       FaultKind enumerator needs an injector binding and a test mention;
//       every declared make_*_oracle factory must be registered via add().
//       Suppress: // spiderlint: census-ok
//   L16 determinism-taint   (error)   values derived from nondeterminism
//       sources (wall clocks, rand, thread ids, pointer identity) must not
//       flow — including through calls, interprocedurally — into scheduled
//       delays, hash inputs, or journal records.
//       Suppress: // spiderlint: taint-ok
//
// A suppression is a trailing comment on the flagged line, a comment-only
// line directly above, `// spiderlint-next-line: <token>` on the previous
// line, or `// spiderlint-file: <token>` anywhere in the file:
// `// spiderlint: <token> — <reason>`. Reasons are required by policy
// (docs/static-analysis.md), not by the tool.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "tools/lint/scan.hpp"

namespace spider::lint {

enum class Severity { kWarning, kError };

std::string_view to_string(Severity s);

/// One rule violation.
struct Finding {
  std::string rule;        ///< "L1".."L12"
  Severity severity = Severity::kError;
  std::string file;
  std::size_t line = 0;    ///< 1-based
  std::size_t column = 0;  ///< 1-based
  std::string message;
  std::string hint;        ///< fix-it hint
};

/// Static metadata for one rule.
struct RuleInfo {
  std::string_view id;
  std::string_view name;
  Severity severity;
  std::string_view summary;
  std::string_view suppression;  ///< suppression token, e.g. "ordered-ok"
  std::string_view hint;
};

/// All rules, in id order.
const std::vector<RuleInfo>& rules();
/// Lookup by id ("L1"); nullptr when unknown.
const RuleInfo* rule(std::string_view id);

/// Which rules run.
struct RuleSet {
  bool l1 = true;
  bool l2 = true;
  bool l3 = true;
  bool l4 = true;
  bool l5 = true;
  bool l6 = true;
  bool l7 = true;
  bool l8 = true;
  bool l9 = true;
  bool l10 = true;
  bool l11 = true;
  bool l12 = true;
  bool l13 = true;
  bool l14 = true;
  bool l15 = true;
  bool l16 = true;
  bool enabled(std::string_view id) const;
  /// A RuleSet with every rule off (for --rules=... accumulation).
  static RuleSet none();
};

/// How a file is scoped for rule applicability.
struct FileClass {
  bool in_src = false;  ///< under src/: L2, L4, L6, L7, L9-L12 apply
  bool sim_critical = false;  ///< under src/{sim,block,fs,net}: L1 applies
  bool is_header = false;     ///< *.hpp/*.h: L3 applies
  bool rng_home = false;      ///< src/common/rng.*: mt19937 exempt from L2
  bool calib_scope = false;   ///< under src/{block,fs,net}: L8 applies
  bool fs_scope = false;      ///< under src/fs/: L14 applies (global.hpp)
  bool in_tests = false;      ///< under tests/: L1+L2 only
  bool in_bench = false;      ///< under bench/: L1+L2 only
};

/// Classify a path by its directory components and extension. The LAST
/// src/tests/bench component wins, so fixture trees like
/// tests/lint_fixtures/l5_layering/src/... classify as src.
FileClass classify_path(std::string_view path);

/// Run the enabled per-file rules over one scanned file. `paired_header`,
/// when given, seeds L1's identifier tracking and L6/L7's symbol index
/// (guarded members, declaration access levels) with the file's own header.
std::vector<Finding> lint_file(const SourceFile& file, const FileClass& cls,
                               const SourceFile* paired_header = nullptr,
                               const RuleSet& enabled = {});

/// Run the project-wide rules (L5 layering: upward includes and cycles)
/// over a set of scanned files. Only files under a src/ component take part
/// (the include graph is keyed by include spelling).
std::vector<Finding> lint_project(const std::vector<SourceFile>& files,
                                  const RuleSet& enabled = {});

}  // namespace spider::lint
