#include "sim/steady_state.hpp"

#include <algorithm>
#include <stdexcept>

namespace spider::sim {

ResourceId SteadyStateSolver::add_resource(std::string name, double capacity) {
  if (capacity < 0.0) throw std::invalid_argument("resource capacity must be >= 0");
  names_.push_back(std::move(name));
  capacity_.push_back(capacity);
  return static_cast<ResourceId>(capacity_.size() - 1);
}

void SteadyStateSolver::set_capacity(ResourceId id, double capacity) {
  capacity_.at(id) = capacity;
}

std::size_t SteadyStateSolver::add_flow(std::vector<PathHop> path, double rate_cap) {
  for (const auto& hop : path) {
    if (hop.resource >= capacity_.size()) {
      throw std::out_of_range("flow path references unknown resource");
    }
  }
  paths_.push_back(std::move(path));
  caps_.push_back(rate_cap);
  return paths_.size() - 1;
}

void SteadyStateSolver::clear_flows() {
  paths_.clear();
  caps_.clear();
  result_ = {};
}

const SolveResult& SteadyStateSolver::solve() {
  std::vector<SolverFlow> flows;
  flows.reserve(paths_.size());
  for (std::size_t f = 0; f < paths_.size(); ++f) {
    flows.push_back(SolverFlow{paths_[f], caps_[f]});
  }
  result_ = solve_max_min(capacity_, flows);
  return result_;
}

double SteadyStateSolver::aggregate_rate() const {
  double acc = 0.0;
  for (double r : result_.rate) acc += r;
  return acc;
}

std::string SteadyStateSolver::bottleneck() const {
  if (result_.utilization.empty()) return {};
  const auto it =
      std::max_element(result_.utilization.begin(), result_.utilization.end());
  return names_[static_cast<std::size_t>(it - result_.utilization.begin())];
}

}  // namespace spider::sim
