# Empty compiler generated dependencies file for bench_c8_fullness_degradation.
# This may be replaced when dependencies are built.
