// LNET router placement on the torus (Figure 2, Lesson 14).
//
// Titan integrates 440 Lustre I/O routers as 110 I/O modules of 4 routers.
// "Considerable effort was directed towards calculating the router
// placement on Titan's 3D torus": modules are spread so every compute node
// has a topologically close router, and router *groups* (roughly SSU
// indices) are each wired to four InfiniBand leaf switches, one per router
// in the module. This module reproduces the placement, its Figure 2 XY
// rendering, and quality metrics comparing strategies.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "net/torus.hpp"

namespace spider::net {

enum class PlacementStrategy {
  /// Fill cabinets column-by-column from x=0 (what a naive install does).
  kClustered,
  /// Even stride over the XY cabinet grid.
  kUniformSpread,
  /// Even stride, with group ids assigned by XY zone so each zone's modules
  /// serve the same InfiniBand switch quad (the deployed design).
  kFgrZoned,
};

struct PlacementConfig {
  std::size_t modules = 110;
  std::size_t routers_per_module = 4;
  /// Router groups; each group is wired to `routers_per_module` leaf
  /// switches. Spider II: groups roughly correspond to SSU indices.
  std::size_t num_groups = 36;
  std::size_t leaf_switches = 36;
};

struct PlacedRouter {
  int node = 0;          ///< torus node hosting this router
  int module = 0;        ///< I/O module index
  int group = 0;         ///< router group (≈ SSU index)
  std::size_t ib_leaf = 0;  ///< InfiniBand leaf switch this router uplinks to
};

/// Place routers per the strategy. Modules land on distinct cabinets
/// (distinct XY columns of the torus); the four routers of a module sit at
/// spread Z positions within the cabinet.
std::vector<PlacedRouter> place_routers(const Torus3D& torus,
                                        const PlacementConfig& cfg,
                                        PlacementStrategy strategy);

struct PlacementQuality {
  double mean_hops_to_router = 0.0;  ///< avg over nodes, nearest router
  double max_hops_to_router = 0.0;
  double hops_stddev = 0.0;
  /// Clients-per-nearest-router imbalance: max/mean - 1.
  double router_load_imbalance = 0.0;
};

PlacementQuality evaluate_placement(const Torus3D& torus,
                                    std::span<const PlacedRouter> routers);

/// ASCII rendering in the style of Figure 2: one cell per XY cabinet,
/// letter = router group of the module there ('.' = no I/O module).
std::string render_xy_map(const Torus3D& torus,
                          std::span<const PlacedRouter> routers);

/// The "considerable effort" version: local-search optimization of module
/// cabinet positions, minimizing the mean XY distance from every cabinet
/// to its nearest I/O module (with a max-distance tiebreaker). Starts from
/// the uniform stride and hill-climbs with `iterations` randomized move
/// proposals. Group/leaf assignment follows the FGR zoning.
std::vector<PlacedRouter> place_routers_optimized(const Torus3D& torus,
                                                  const PlacementConfig& cfg,
                                                  Rng& rng,
                                                  std::size_t iterations = 400);

}  // namespace spider::net
