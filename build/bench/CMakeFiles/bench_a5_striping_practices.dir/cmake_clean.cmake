file(REMOVE_RECURSE
  "CMakeFiles/bench_a5_striping_practices.dir/bench_a5_striping_practices.cpp.o"
  "CMakeFiles/bench_a5_striping_practices.dir/bench_a5_striping_practices.cpp.o.d"
  "bench_a5_striping_practices"
  "bench_a5_striping_practices.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a5_striping_practices.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
