// Ablation A4 (Section IV-D): the OLCF-funded Lustre recovery features.
//
// "OLCF direct-funded development efforts through multiple providers to
// produce features including asymmetric router notification,
// high-performance Lustre journaling, and imperative recovery, all
// benefiting the Lustre community at large." This bench quantifies the
// failover outage each recovery feature removes at Titan scale.
#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "fs/recovery.hpp"

int main() {
  using namespace spider;
  using namespace spider::fs;

  bench::banner("A4: OSS failover outage, 18,688 clients");

  struct Config {
    const char* name;
    bool imperative;
    bool router_notification;
  };
  const Config configs[] = {
      {"classic recovery", false, false},
      {"+ imperative recovery", true, false},
      {"+ asymmetric router notification", true, true},
  };

  Table table;
  table.set_columns({"feature set", "detection s", "reconnect s",
                     "straggler wait s", "total outage s"});
  double outage[3];
  int row = 0;
  for (const auto& cfg : configs) {
    RecoveryParams params;
    params.imperative_recovery = cfg.imperative;
    params.asymmetric_router_notification = cfg.router_notification;
    const auto out = simulate_oss_failover(params);
    outage[row++] = out.total_outage_s;
    table.add_row({std::string(cfg.name), out.detection_s, out.reconnect_s,
                   out.straggler_wait_s, out.total_outage_s});
  }
  table.print(std::cout);
  std::cout << "\n";

  bench::ShapeChecker checker;
  checker.check(outage[0] > 400.0,
                "classic recovery costs minutes of outage at Titan scale");
  checker.check(outage[1] < 0.3 * outage[0],
                "imperative recovery removes the straggler-gated window");
  checker.check(outage[2] < outage[1],
                "router notification removes the RPC-timeout detection");
  checker.check(outage[2] < 60.0,
                "full feature set brings failover under a minute");
  return checker.exit_code();
}
