file(REMOVE_RECURSE
  "CMakeFiles/rfp_release_test.dir/rfp_release_test.cpp.o"
  "CMakeFiles/rfp_release_test.dir/rfp_release_test.cpp.o.d"
  "rfp_release_test"
  "rfp_release_test.pdb"
  "rfp_release_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rfp_release_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
