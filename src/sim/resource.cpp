#include "sim/resource.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace spider::sim {

SolveResult solve_max_min(std::span<const double> capacity,
                          std::span<const SolverFlow> flows) {
  const std::size_t nr = capacity.size();
  const std::size_t nf = flows.size();
  SolveResult out;
  out.rate.assign(nf, 0.0);
  out.utilization.assign(nr, 0.0);
  if (nf == 0) return out;

  std::vector<double> residual(capacity.begin(), capacity.end());
  std::vector<double> active_cost(nr, 0.0);
  std::vector<char> frozen(nf, 0);
  std::vector<char> saturated(nr, 0);

  // A resource counts as saturated when its residual falls below this
  // fraction of original capacity (or an absolute floor for zero-capacity
  // resources).
  auto sat_eps = [&](std::size_t r) {
    return std::max(1e-12, 1e-9 * capacity[r]);
  };

  std::size_t unfrozen = 0;
  for (std::size_t f = 0; f < nf; ++f) {
    if (flows[f].path.empty()) {
      // Pathless flow: rate is just its cap (0 if unbounded, to stay finite).
      out.rate[f] = std::isinf(flows[f].rate_cap) ? 0.0 : flows[f].rate_cap;
      frozen[f] = 1;
      continue;
    }
    ++unfrozen;
    for (const auto& hop : flows[f].path) {
      assert(hop.resource < nr);
      active_cost[hop.resource] += hop.cost;
    }
  }

  // Immediately saturated resources (zero capacity) pin their flows.
  for (std::size_t r = 0; r < nr; ++r) {
    if (capacity[r] <= sat_eps(r) && active_cost[r] > 0.0) saturated[r] = 1;
  }

  double level = 0.0;  // common rate of all unfrozen flows
  while (unfrozen > 0) {
    // Freeze flows crossing a saturated resource at the current level.
    bool froze_any = false;
    for (std::size_t f = 0; f < nf; ++f) {
      if (frozen[f]) continue;
      bool hit = false;
      for (const auto& hop : flows[f].path) {
        if (saturated[hop.resource] && hop.cost > 0.0) {
          hit = true;
          break;
        }
      }
      if (hit) {
        out.rate[f] = std::min(level, flows[f].rate_cap);
        frozen[f] = 1;
        --unfrozen;
        froze_any = true;
        for (const auto& hop : flows[f].path) active_cost[hop.resource] -= hop.cost;
      }
    }
    if (unfrozen == 0) break;

    // Largest uniform rate increment before a resource saturates or a flow
    // hits its cap.
    double delta = kUnbounded;
    for (std::size_t r = 0; r < nr; ++r) {
      if (saturated[r] || active_cost[r] <= 1e-15) continue;
      delta = std::min(delta, residual[r] / active_cost[r]);
    }
    double min_cap = kUnbounded;
    for (std::size_t f = 0; f < nf; ++f) {
      if (!frozen[f]) min_cap = std::min(min_cap, flows[f].rate_cap);
    }
    const double cap_delta = min_cap - level;
    const bool cap_binds = cap_delta <= delta;
    delta = std::min(delta, cap_delta);

    if (std::isinf(delta)) {
      // Remaining flows consume nothing and have no cap; pin at level.
      for (std::size_t f = 0; f < nf; ++f) {
        if (!frozen[f]) {
          out.rate[f] = level;
          frozen[f] = 1;
          --unfrozen;
        }
      }
      break;
    }

    if (delta > 0.0) {
      level += delta;
      for (std::size_t r = 0; r < nr; ++r) {
        if (active_cost[r] > 0.0) residual[r] -= active_cost[r] * delta;
      }
    }

    // Mark newly saturated resources.
    for (std::size_t r = 0; r < nr; ++r) {
      if (!saturated[r] && active_cost[r] > 0.0 && residual[r] <= sat_eps(r)) {
        saturated[r] = 1;
        froze_any = true;  // the next loop pass will freeze its flows
      }
    }

    // Freeze cap-limited flows.
    if (cap_binds) {
      for (std::size_t f = 0; f < nf; ++f) {
        if (frozen[f] || flows[f].rate_cap > level + 1e-12 * (1.0 + level)) continue;
        out.rate[f] = flows[f].rate_cap;
        frozen[f] = 1;
        --unfrozen;
        froze_any = true;
        for (const auto& hop : flows[f].path) active_cost[hop.resource] -= hop.cost;
      }
    }

    if (!froze_any && delta <= 0.0) {
      // Defensive: no progress possible (degenerate numerics); pin the rest.
      for (std::size_t f = 0; f < nf; ++f) {
        if (!frozen[f]) {
          out.rate[f] = std::min(level, flows[f].rate_cap);
          frozen[f] = 1;
          --unfrozen;
        }
      }
      break;
    }
  }

  // Utilization report: one pass over all flow hops.
  std::vector<double> used(nr, 0.0);
  for (std::size_t f = 0; f < nf; ++f) {
    for (const auto& hop : flows[f].path) {
      used[hop.resource] += out.rate[f] * hop.cost;
    }
  }
  for (std::size_t r = 0; r < nr; ++r) {
    out.utilization[r] = capacity[r] > 0.0 ? std::min(1.0, used[r] / capacity[r]) : 0.0;
  }
  return out;
}

}  // namespace spider::sim
