#include "core/production.hpp"

namespace spider::core {

ProductionMix& ProductionMix::add_checkpoint_app(
    const workload::S3dParams& params, std::size_t ost_base) {
  checkpoint_.push_back({params, ost_base});
  return *this;
}

ProductionMix& ProductionMix::add_analytics(
    const workload::AnalyticsParams& params, std::size_t ost_base,
    std::size_t ost_span) {
  analytics_.push_back({params, ost_base, ost_span});
  return *this;
}

ProductionMix& ProductionMix::add_noise(std::uint32_t clients,
                                        Bytes bytes_per_client,
                                        double mean_gap_s) {
  noise_.push_back({clients, bytes_per_client, mean_gap_s});
  return *this;
}

std::shared_ptr<MixOutcome> ProductionMix::deploy(ScenarioRunner& runner,
                                                  Rng& rng) const {
  auto outcome = std::make_shared<MixOutcome>();
  auto& center = runner.center();
  const std::size_t total_osts = center.total_osts();
  std::size_t client_base = 10000;

  for (const auto& spec : checkpoint_) {
    const workload::S3dWorkload app(spec.params);
    Rng app_rng = rng.fork(client_base);
    for (const auto& burst : app.generate(duration_s_, app_rng)) {
      runner.submit_burst(burst,
                          [base = spec.ost_base, total_osts](std::size_t f) {
                            return (base + f) % total_osts;
                          },
                          [outcome](BurstOutcome o) {
                            ++outcome->bursts_completed;
                            outcome->checkpoint_bytes += o.bytes;
                            outcome->burst_bandwidths.push_back(o.achieved_bw);
                          },
                          /*client_grouping=*/32, client_base);
    }
    client_base += 10000;
  }

  for (const auto& spec : analytics_) {
    const workload::AnalyticsWorkload stream(spec.params);
    Rng stream_rng = rng.fork(client_base);
    runner.submit_requests(
        stream.generate(duration_s_, stream_rng),
        [spec, total_osts](std::size_t w) {
          return (spec.ost_base + w % spec.ost_span) % total_osts;
        },
        &outcome->analytics_latencies_s, client_base);
    client_base += 10000;
  }

  for (const auto& spec : noise_) {
    Rng noise_rng = rng.fork(client_base);
    double t = noise_rng.uniform(0.0, spec.mean_gap_s);
    while (t < duration_s_) {
      workload::IoBurst burst;
      burst.start = sim::from_seconds(t);
      burst.clients = spec.clients;
      burst.bytes_per_client = spec.bytes_per_client;
      const std::size_t base = noise_rng.uniform_index(total_osts);
      runner.submit_burst(burst,
                          [base, total_osts](std::size_t f) {
                            return (base + f) % total_osts;
                          },
                          nullptr, 16, client_base);
      t += noise_rng.exponential(1.0 / spec.mean_gap_s);
    }
    client_base += 10000;
  }
  return outcome;
}

}  // namespace spider::core
