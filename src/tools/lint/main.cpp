// spiderlint CLI — determinism & unit-safety static analysis for spiderpfs.
//
// Usage: spiderlint [options] <path>...
//   --format=text|json   output format (default text)
//   --fix-hints          include fix-it hints and a per-rule digest (text)
//   --rules=L1,L3        run only the listed rules (default: all)
//   --treat-as=CLASS     force file classification: sim-critical, src,
//                        header (repeatable; for linting fixtures that live
//                        outside src/)
//   --list-rules         print the rule table and exit
//
// Exit codes: 0 clean, 1 findings, 2 usage or I/O error.
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "tools/lint/lint.hpp"

namespace {

void print_rule_table() {
  for (const spider::lint::RuleInfo& r : spider::lint::rules()) {
    std::printf("%s %-20s %-7s %s\n    suppress: // spiderlint: %s\n",
                std::string(r.id).c_str(), std::string(r.name).c_str(),
                std::string(to_string(r.severity)).c_str(),
                std::string(r.summary).c_str(),
                std::string(r.suppression).c_str());
  }
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--format=text|json] [--fix-hints] [--rules=L1,..]\n"
               "       [--treat-as=sim-critical|src|header]... [--list-rules]"
               " <path>...\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace spider::lint;

  LintOptions opts;
  bool json = false;
  bool fix_hints = false;
  std::vector<std::string> paths;
  FileClass forced;
  bool have_forced = false;

  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--list-rules") {
      print_rule_table();
      return 0;
    } else if (arg == "--fix-hints") {
      fix_hints = true;
    } else if (arg.starts_with("--format=")) {
      const std::string_view fmt = arg.substr(9);
      if (fmt == "json") {
        json = true;
      } else if (fmt != "text") {
        std::fprintf(stderr, "spiderlint: unknown format '%.*s'\n",
                     static_cast<int>(fmt.size()), fmt.data());
        return usage(argv[0]);
      }
    } else if (arg.starts_with("--rules=")) {
      opts.rules = RuleSet{false, false, false, false};
      std::string_view list = arg.substr(8);
      while (!list.empty()) {
        const std::size_t comma = list.find(',');
        const std::string_view id = list.substr(0, comma);
        if (id == "L1") {
          opts.rules.l1 = true;
        } else if (id == "L2") {
          opts.rules.l2 = true;
        } else if (id == "L3") {
          opts.rules.l3 = true;
        } else if (id == "L4") {
          opts.rules.l4 = true;
        } else {
          std::fprintf(stderr, "spiderlint: unknown rule '%.*s'\n",
                       static_cast<int>(id.size()), id.data());
          return usage(argv[0]);
        }
        if (comma == std::string_view::npos) break;
        list.remove_prefix(comma + 1);
      }
    } else if (arg.starts_with("--treat-as=")) {
      const std::string_view cls = arg.substr(11);
      if (cls == "sim-critical") {
        forced.sim_critical = true;
        forced.in_src = true;
      } else if (cls == "src") {
        forced.in_src = true;
      } else if (cls == "header") {
        forced.is_header = true;
      } else {
        std::fprintf(stderr, "spiderlint: unknown class '%.*s'\n",
                     static_cast<int>(cls.size()), cls.data());
        return usage(argv[0]);
      }
      have_forced = true;
    } else if (arg.starts_with("--")) {
      std::fprintf(stderr, "spiderlint: unknown option '%s'\n", argv[i]);
      return usage(argv[0]);
    } else {
      paths.emplace_back(arg);
    }
  }
  if (paths.empty()) return usage(argv[0]);
  if (have_forced) opts.forced_class = forced;

  std::vector<std::string> errors;
  const LintReport report = lint_paths(paths, opts, errors);
  for (const std::string& err : errors) {
    std::fprintf(stderr, "spiderlint: %s\n", err.c_str());
  }

  const std::string rendered =
      json ? render_json(report) : render_text(report, fix_hints);
  std::fputs(rendered.c_str(), stdout);

  if (!errors.empty()) return 2;
  return report.clean() ? 0 : 1;
}
