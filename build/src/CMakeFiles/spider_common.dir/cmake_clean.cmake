file(REMOVE_RECURSE
  "CMakeFiles/spider_common.dir/common/distributions.cpp.o"
  "CMakeFiles/spider_common.dir/common/distributions.cpp.o.d"
  "CMakeFiles/spider_common.dir/common/histogram.cpp.o"
  "CMakeFiles/spider_common.dir/common/histogram.cpp.o.d"
  "CMakeFiles/spider_common.dir/common/parallel.cpp.o"
  "CMakeFiles/spider_common.dir/common/parallel.cpp.o.d"
  "CMakeFiles/spider_common.dir/common/rng.cpp.o"
  "CMakeFiles/spider_common.dir/common/rng.cpp.o.d"
  "CMakeFiles/spider_common.dir/common/stats.cpp.o"
  "CMakeFiles/spider_common.dir/common/stats.cpp.o.d"
  "CMakeFiles/spider_common.dir/common/table.cpp.o"
  "CMakeFiles/spider_common.dir/common/table.cpp.o.d"
  "libspider_common.a"
  "libspider_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spider_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
