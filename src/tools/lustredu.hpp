// LustreDU and the cost of client-side `du` (Section VI-C, Lesson 19).
//
// "du imposes a heavy load on the Lustre MDS when run at this scale.
// Therefore we developed the LustreDU tool, which gathers disk usage
// metadata from the Lustre servers once per day." Client `du` stats every
// file through the MDS; LustreDU answers from a daily server-side snapshot
// at near-zero marginal cost.
//
// The daily scan itself is still an O(N) namespace walk, which stops
// working around 1e9 entries (the Robinhood lesson, ROADMAP item 2). The
// changelog era replaces it: follow() attaches the tool to one or more
// namespace changelogs and poll() folds newly committed records into
// fs::ChangelogAccounting tables, so answers stay fresh at O(Δ records)
// per epoch with zero namespace walks.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "common/units.hpp"
#include "fs/changelog.hpp"
#include "fs/fs_namespace.hpp"
#include "sim/time.hpp"

namespace spider::tools {

struct DuCost {
  /// Weighted MDS ops the query itself consumed.
  double mds_ops = 0.0;
  /// Wall time as seen by the admin, assuming the MDS is otherwise at the
  /// given background utilization.
  double wall_s = 0.0;
  Bytes bytes_reported = 0;
  /// Cold query: the tool has no basis to answer (no daily_scan yet in
  /// snapshot mode, no poll yet in changelog mode). bytes_reported is 0
  /// but means "don't know", NOT "empty project" — callers must check.
  bool stale = false;
};

/// Client-side `du` over one project: lookup + stat per file through the
/// MDS. `background_util` in [0,1) is competing MDS load.
DuCost client_du(fs::FsNamespace& ns, std::uint32_t project,
                 double background_util = 0.0);

/// Server-side usage tool: daily-snapshot mode and changelog mode.
class LustreDu {
 public:
  /// Scan the namespace from the server side (once per day in production);
  /// cost is independent of query volume and does not touch the MDS.
  void daily_scan(const fs::FsNamespace& ns, sim::SimTime now);

  /// Changelog mode: follow a namespace's op log; answers come from the
  /// accounting tables as of the last poll() instead of the snapshot. May
  /// be called once per DNE namespace — usage() sums across feeds.
  void follow(const fs::OpLog& log, std::uint32_t shards = 1);

  /// Consume newly committed records from every followed log. Diagnostics
  /// are merged: applied sums; cursor_ahead/gap OR across feeds (any feed
  /// needing a rebuild makes the whole tool suspect).
  fs::ConsumeResult poll();

  /// Recover a crash-rewound feed: drop and re-consume every feed's
  /// committed prefix.
  void rebuild_feeds();

  /// Last-resort resync of one feed from namespace ground truth — the
  /// daily-scan escape hatch for a log whose committed prefix no longer
  /// describes the namespace (an MDS crash rewound the log under live
  /// state). One namespace walk; the feed is incremental again afterwards.
  void resync_feed(std::size_t i, const fs::FsNamespace& ns);

  sim::SimTime last_scan_time() const { return last_scan_; }
  /// A daily scan has actually run (an empty map alone proves nothing —
  /// an empty namespace scans to an empty map).
  bool has_snapshot() const { return scanned_; }
  bool following() const { return !feeds_.empty(); }
  std::size_t feed_count() const { return feeds_.size(); }
  const fs::ChangelogAccounting& feed(std::size_t i) const {
    return feeds_.at(i).accounting;
  }

  /// Query: O(1), zero MDS ops, zero namespace walks. Changelog mode wins
  /// when active; otherwise the daily snapshot answers. Cold tools return
  /// stale = true (see DuCost).
  DuCost usage(std::uint32_t project) const;

 private:
  struct Feed {
    const fs::OpLog* log = nullptr;
    fs::ChangelogAccounting accounting;
  };

  /// Ordered by project id: the daily snapshot enumerates deterministically.
  std::map<std::uint32_t, Bytes> usage_;
  sim::SimTime last_scan_ = 0;
  bool scanned_ = false;
  std::vector<Feed> feeds_;
  bool polled_ = false;
};

}  // namespace spider::tools
