#include "tools/ptools.hpp"

#include <algorithm>

namespace spider::tools {

namespace {

std::uint64_t items_of(const TreeSpec& tree) {
  return tree.files + tree.directories;
}

/// Serial metadata walk: one outstanding op at a time -> RTT-bound.
double serial_walk_s(const TreeSpec& tree, const ToolEnvironment& env) {
  return static_cast<double>(items_of(tree)) * env.ops_per_item *
         env.metadata_rtt_s;
}

/// Parallel walk with `ranks` workers: each rank is RTT-bound, the fleet is
/// capped by MDS throughput.
double parallel_walk_s(const TreeSpec& tree, const ToolEnvironment& env,
                       unsigned ranks) {
  const double total_ops = static_cast<double>(items_of(tree)) * env.ops_per_item;
  const double rank_rate = 1.0 / env.metadata_rtt_s;  // weighted ops/s/rank
  const double fleet_rate =
      std::min(static_cast<double>(ranks) * rank_rate, env.mds_ops_per_sec);
  return total_ops / fleet_rate;
}

double parallel_walk_mds_util(const TreeSpec& tree, const ToolEnvironment& env,
                              unsigned ranks, double wall_s) {
  if (wall_s <= 0.0) return 0.0;
  (void)ranks;
  const double total_ops = static_cast<double>(items_of(tree)) * env.ops_per_item;
  return std::min(1.0, total_ops / wall_s / env.mds_ops_per_sec);
}

}  // namespace

ToolRunResult run_serial_find(const TreeSpec& tree, const ToolEnvironment& env) {
  ToolRunResult r;
  r.items = items_of(tree);
  r.wall_s = serial_walk_s(tree, env);
  r.mds_utilization = parallel_walk_mds_util(tree, env, 1, r.wall_s);
  return r;
}

ToolRunResult run_dfind(const TreeSpec& tree, const ToolEnvironment& env,
                        unsigned ranks) {
  ToolRunResult r;
  r.items = items_of(tree);
  r.wall_s = parallel_walk_s(tree, env, ranks);
  r.mds_utilization = parallel_walk_mds_util(tree, env, ranks, r.wall_s);
  return r;
}

ToolRunResult run_serial_cp(const TreeSpec& tree, const ToolEnvironment& env) {
  ToolRunResult r;
  r.items = items_of(tree);
  r.bytes_moved = tree.total_bytes();
  // Walk and data movement interleave on one client; the copy reads and
  // writes every byte through that client.
  const double data_s =
      2.0 * static_cast<double>(r.bytes_moved) / env.client_bw;
  r.wall_s = serial_walk_s(tree, env) + data_s;
  r.mds_utilization = parallel_walk_mds_util(tree, env, 1, r.wall_s);
  return r;
}

ToolRunResult run_dcp(const TreeSpec& tree, const ToolEnvironment& env,
                      unsigned ranks) {
  ToolRunResult r;
  r.items = items_of(tree);
  r.bytes_moved = tree.total_bytes();
  const double fleet_bw = std::min(
      static_cast<double>(ranks) * env.client_bw, env.fs_bw / 2.0);
  const double data_s = 2.0 * static_cast<double>(r.bytes_moved) / (2.0 * fleet_bw);
  // Walk and copy phases overlap (work is distributed as found).
  r.wall_s = std::max(parallel_walk_s(tree, env, ranks), data_s);
  r.mds_utilization = parallel_walk_mds_util(tree, env, ranks, r.wall_s);
  return r;
}

ToolRunResult run_serial_tar(const TreeSpec& tree, const ToolEnvironment& env) {
  ToolRunResult r;
  r.items = items_of(tree);
  r.bytes_moved = tree.total_bytes();
  // Read every byte and write the archive stream through one client.
  const double data_s =
      2.0 * static_cast<double>(r.bytes_moved) / env.client_bw;
  r.wall_s = serial_walk_s(tree, env) + data_s;
  r.mds_utilization = parallel_walk_mds_util(tree, env, 1, r.wall_s);
  return r;
}

ToolRunResult run_dtar(const TreeSpec& tree, const ToolEnvironment& env,
                       unsigned ranks) {
  ToolRunResult r;
  r.items = items_of(tree);
  r.bytes_moved = tree.total_bytes();
  const double fleet_bw = std::min(
      static_cast<double>(ranks) * env.client_bw, env.fs_bw / 2.0);
  // Parallel readers feed striped archive segments; reads dominate.
  const double data_s = 2.0 * static_cast<double>(r.bytes_moved) / (2.0 * fleet_bw);
  r.wall_s = std::max(parallel_walk_s(tree, env, ranks), data_s);
  r.mds_utilization = parallel_walk_mds_util(tree, env, ranks, r.wall_s);
  return r;
}

}  // namespace spider::tools
