#include "core/scenario.hpp"

#include <memory>

namespace spider::core {

ScenarioRunner::ScenarioRunner(CenterModel& center, sim::Simulator& sim,
                               bool include_torus_links)
    : center_(center),
      sim_(sim),
      net_(sim),
      map_(center.register_into(net_, include_torus_links)) {}

void ScenarioRunner::submit_burst(const workload::IoBurst& burst,
                                  OstChooser ost_of,
                                  std::function<void(BurstOutcome)> done,
                                  std::size_t client_grouping,
                                  std::size_t client_base) {
  if (client_grouping == 0) client_grouping = 1;
  const std::size_t flows =
      (burst.clients + client_grouping - 1) / client_grouping;
  struct BurstState {
    std::size_t outstanding = 0;
    sim::SimTime start = 0;
    Bytes bytes = 0;
    std::function<void(BurstOutcome)> done;
  };
  auto state = std::make_shared<BurstState>();
  state->outstanding = flows;
  state->bytes = static_cast<Bytes>(burst.clients) * burst.bytes_per_client;
  state->done = std::move(done);

  sim_.schedule_at(burst.start, [this, burst, ost_of = std::move(ost_of),
                                 client_grouping, client_base, flows, state] {
    state->start = sim_.now();
    for (std::size_t f = 0; f < flows; ++f) {
      const std::size_t writer = f * client_grouping;
      const std::size_t group_size =
          std::min<std::size_t>(client_grouping, burst.clients - writer);
      auto df = center_.make_flow(map_, client_base + writer, ost_of(f),
                                  burst.dir, block::IoMode::kSequential,
                                  burst.request_size);
      sim::FlowDesc desc;
      desc.path = std::move(df.path);
      desc.size = static_cast<double>(burst.bytes_per_client) *
                  static_cast<double>(group_size);
      // Grouped clients share the flow: their individual caps add up.
      desc.rate_cap = df.rate_cap * static_cast<double>(group_size);
      desc.on_complete = [state](sim::FlowId, sim::SimTime now) {
        if (--state->outstanding == 0 && state->done) {
          BurstOutcome out;
          out.start = state->start;
          out.end = now;
          out.bytes = state->bytes;
          const double dt = sim::to_seconds(now - state->start);
          out.achieved_bw =
              dt > 0.0 ? static_cast<double>(state->bytes) / dt : 0.0;
          state->done(out);
        }
      };
      net_.start_flow(std::move(desc));
    }
  });
}

void ScenarioRunner::submit_requests(std::vector<workload::IoRequest> requests,
                                     OstChooser ost_of,
                                     std::vector<double>* latencies_s,
                                     std::size_t client_base) {
  for (auto& req : requests) {
    sim_.schedule_at(req.issue_time, [this, req, ost_of, latencies_s,
                                      client_base] {
      auto df = center_.make_flow(map_, client_base + req.client,
                                  ost_of(req.client), req.dir, req.mode,
                                  req.size);
      sim::FlowDesc desc;
      desc.path = std::move(df.path);
      desc.size = static_cast<double>(req.size);
      desc.rate_cap = df.rate_cap;
      const sim::SimTime issued = req.issue_time;
      desc.on_complete = [latencies_s, issued](sim::FlowId, sim::SimTime now) {
        if (latencies_s) {
          latencies_s->push_back(sim::to_seconds(now - issued));
        }
      };
      net_.start_flow(std::move(desc));
    });
  }
}

void ScenarioRunner::record_throughput(double bin_s, double duration_s,
                                       std::vector<double>* out) {
  // Real server-side logs report per-interval averages; approximate the
  // bin integral with several subsamples so short bursts are neither
  // missed nor overweighted.
  constexpr int kSubsamples = 8;
  const auto bins = static_cast<std::size_t>(duration_s / bin_s);
  auto acc = std::make_shared<std::vector<double>>();
  for (std::size_t b = 0; b < bins; ++b) {
    for (int s = 0; s < kSubsamples; ++s) {
      const double t =
          (static_cast<double>(b) + (s + 0.5) / kSubsamples) * bin_s;
      sim_.schedule_at(sim::from_seconds(t), [this, out, acc] {
        acc->push_back(net_.aggregate_rate());
        if (acc->size() == kSubsamples) {
          double mean = 0.0;
          for (double v : *acc) mean += v;
          out->push_back(mean / kSubsamples);
          acc->clear();
        }
      });
    }
  }
}

}  // namespace spider::core
