// Hand-rolled engine microbenchmark loops shared by bench_micro_engine's
// --spider-json mode and by before/after comparisons against older builds.
//
// Everything here uses only the stable public engine API (schedule_in / run /
// cancel / ReplayRecorder::attach / parallel_for), so the exact same loops
// can be compiled against two library revisions and the resulting
// events-per-second numbers compared apples to apples. Wall-clock timing is
// inherent to benchmarking; the nondet-ok suppressions below mark the one
// place the repo legitimately reads a real clock.
#pragma once

#include <chrono>  // spiderlint: nondet-ok — benchmark timing only
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/parallel.hpp"
#include "sim/event_queue.hpp"
#include "sim/replay.hpp"
#include "sim/simulator.hpp"

namespace spider::bench {

/// One measured metric: operations per wall-clock second plus the raw count.
struct Measurement {
  double ops_per_sec = 0.0;
  std::uint64_t ops = 0;
  double elapsed_s = 0.0;
};

namespace detail {

using Clock = std::chrono::steady_clock;  // spiderlint: nondet-ok

inline double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace detail

/// schedule_in -> run dispatch throughput. Each event carries a 24-byte
/// capture — representative of the flow-network and campaign callbacks that
/// capture an object pointer plus a couple of ids — which is beyond the
/// 16-byte inline buffer of libstdc++'s std::function, so the pre-Task
/// engine pays one heap allocation per event here.
inline Measurement measure_schedule_dispatch(std::size_t events_per_round,
                                             std::size_t rounds) {
  sim::Simulator sim;
  std::uint64_t sink = 0;
  const auto start = detail::Clock::now();
  std::uint64_t dispatched = 0;
  for (std::size_t r = 0; r < rounds; ++r) {
    for (std::size_t i = 0; i < events_per_round; ++i) {
      const std::uint64_t a = i;
      const std::uint64_t b = i ^ 0x9e3779b97f4a7c15ull;
      sim.schedule_in(static_cast<sim::SimTime>(i % 997) + 1,
                      [&sink, a, b] { sink += a ^ b; });
    }
    dispatched += sim.run();
  }
  Measurement m;
  m.ops = dispatched + (sink & 1);  // keep `sink` observable
  m.elapsed_s = detail::seconds_since(start);
  m.ops_per_sec = static_cast<double>(m.ops) / m.elapsed_s;
  return m;
}

/// schedule -> cancel churn on the raw queue: the flow network's
/// reschedule-on-every-arrival pattern. One op = one schedule + one cancel.
inline Measurement measure_schedule_cancel(std::size_t pairs_per_round,
                                           std::size_t rounds) {
  sim::EventQueue q;
  // One live far-future anchor so the queue is never empty.
  q.schedule(1, [] {});
  std::vector<sim::EventId> ids(pairs_per_round);
  const auto start = detail::Clock::now();
  for (std::size_t r = 0; r < rounds; ++r) {
    for (std::size_t i = 0; i < pairs_per_round; ++i) {
      ids[i] = q.schedule(static_cast<sim::SimTime>(1'000'000 + i), [] {});
    }
    for (std::size_t i = 0; i < pairs_per_round; ++i) q.cancel(ids[i]);
  }
  Measurement m;
  m.ops = static_cast<std::uint64_t>(pairs_per_round) * rounds;
  m.elapsed_s = detail::seconds_since(start);
  m.ops_per_sec = static_cast<double>(m.ops) / m.elapsed_s;
  return m;
}

/// Dispatch throughput with a ReplayRecorder observing every event — what a
/// replay-verified campaign run actually pays per event.
inline Measurement measure_observed_dispatch(std::size_t events_per_round,
                                             std::size_t rounds) {
  std::uint64_t dispatched = 0;
  std::uint64_t sink = 0;
  const auto start = detail::Clock::now();
  for (std::size_t r = 0; r < rounds; ++r) {
    sim::Simulator sim;
    sim::ReplayRecorder recorder;
    recorder.attach(sim);
    for (std::size_t i = 0; i < events_per_round; ++i) {
      const std::uint64_t a = i;
      sim.schedule_in(static_cast<sim::SimTime>(i % 997) + 1,
                      [&sink, a] { sink += a; });
    }
    dispatched += sim.run();
  }
  Measurement m;
  m.ops = dispatched + (sink & 1);
  m.elapsed_s = detail::seconds_since(start);
  m.ops_per_sec = static_cast<double>(m.ops) / m.elapsed_s;
  return m;
}

/// parallel_for fan-out latency: many small batches, the sweep-bench shape.
/// One op = one batch of `tasks_per_batch` trivial iterations; pre-pool this
/// paid `threads` thread spawns per batch.
inline Measurement measure_parallel_batches(std::size_t batches,
                                            std::size_t tasks_per_batch,
                                            std::size_t threads) {
  std::vector<std::uint64_t> out(tasks_per_batch, 0);
  const auto start = detail::Clock::now();
  for (std::size_t b = 0; b < batches; ++b) {
    parallel_for(
        tasks_per_batch,
        [&out, b](std::size_t i) { out[i] += b ^ i; },
        threads);
  }
  Measurement m;
  m.ops = batches;
  m.elapsed_s = detail::seconds_since(start);
  m.ops_per_sec = static_cast<double>(m.ops) / m.elapsed_s;
  return m;
}

}  // namespace spider::bench
