// Disk-enclosure layout: the failure-domain geometry of Lesson 11.
//
// Spider I distributed each 10-disk RAID-6 set evenly over *five* disk
// enclosures (two members per enclosure), so losing one enclosure removed
// two members — combined with one rebuilding member, three losses exceeded
// RAID-6 parity and the 2010 incident lost data. A ten-enclosure layout
// (one member per enclosure) would have tolerated the same event. The
// layout class makes that geometry explicit and queryable.
#pragma once

#include <cstdint>
#include <vector>

namespace spider::block {

class EnclosureLayout {
 public:
  /// Distribute `members_per_group` members of each of `groups` RAID groups
  /// round-robin over `enclosures` enclosures. members_per_group must be a
  /// multiple of enclosures or vice versa for an even layout.
  EnclosureLayout(std::size_t groups, std::size_t members_per_group,
                  std::size_t enclosures);

  std::size_t groups() const { return groups_; }
  std::size_t members_per_group() const { return members_per_group_; }
  std::size_t enclosures() const { return enclosures_; }

  /// Enclosure housing member `m` of group `g`.
  std::uint32_t enclosure_of(std::size_t g, std::size_t m) const;

  /// Member indices of group `g` housed in enclosure `e`.
  std::vector<std::size_t> members_in(std::size_t g, std::uint32_t e) const;

  /// Worst-case members any single enclosure failure removes from one group.
  std::size_t max_members_per_enclosure() const;

 private:
  std::size_t groups_;
  std::size_t members_per_group_;
  std::size_t enclosures_;
};

}  // namespace spider::block
