// LustreDU and the cost of client-side `du` (Section VI-C, Lesson 19).
//
// "du imposes a heavy load on the Lustre MDS when run at this scale.
// Therefore we developed the LustreDU tool, which gathers disk usage
// metadata from the Lustre servers once per day." Client `du` stats every
// file through the MDS; LustreDU answers from a daily server-side snapshot
// at near-zero marginal cost.
#pragma once

#include <cstdint>
#include <map>

#include "common/units.hpp"
#include "fs/fs_namespace.hpp"
#include "sim/time.hpp"

namespace spider::tools {

struct DuCost {
  /// Weighted MDS ops the query itself consumed.
  double mds_ops = 0.0;
  /// Wall time as seen by the admin, assuming the MDS is otherwise at the
  /// given background utilization.
  double wall_s = 0.0;
  Bytes bytes_reported = 0;
};

/// Client-side `du` over one project: lookup + stat per file through the
/// MDS. `background_util` in [0,1) is competing MDS load.
DuCost client_du(fs::FsNamespace& ns, std::uint32_t project,
                 double background_util = 0.0);

/// Server-side daily-snapshot usage tool.
class LustreDu {
 public:
  /// Scan the namespace from the server side (once per day in production);
  /// cost is independent of query volume and does not touch the MDS.
  void daily_scan(const fs::FsNamespace& ns, sim::SimTime now);

  sim::SimTime last_scan_time() const { return last_scan_; }
  bool has_snapshot() const { return !usage_.empty() || scanned_; }

  /// Query from the snapshot: O(1), zero MDS ops.
  DuCost usage(std::uint32_t project) const;

 private:
  /// Ordered by project id: the daily snapshot enumerates deterministically.
  std::map<std::uint32_t, Bytes> usage_;
  sim::SimTime last_scan_ = 0;
  bool scanned_ = false;
};

}  // namespace spider::tools
