// Lustre failover recovery, including the OLCF-funded features
// (Section IV-D): imperative recovery and asymmetric router notification.
//
// Classic Lustre recovery after an OSS failover: clients discover the
// failure only when their RPCs time out, then reconnect to the failover
// partner; the server holds a recovery window open until every known
// client reconnects (or the window expires) before serving new I/O.
// At Titan scale (18,688 clients behind 440 routers) timeouts and the
// straggler-gated window dominate. Imperative recovery has the server
// *tell* clients to reconnect immediately; asymmetric router notification
// lets LNET routers broadcast a dead-path notice so clients skip the RPC
// timeout entirely.
#pragma once

#include <cstddef>

namespace spider::fs {

struct RecoveryParams {
  std::size_t clients = 18688;
  /// Classic RPC timeout before a client notices the OSS is gone.
  double rpc_timeout_s = 100.0;
  /// Spread of client timeout detection (in-flight RPC phase), seconds.
  double detection_spread_s = 60.0;
  /// Recovery window the failover server holds for stragglers.
  double recovery_window_s = 300.0;
  /// Reconnect RPCs/sec the failover server can absorb.
  double reconnect_rate = 2000.0;
  /// Fraction of clients that are slow/absent stragglers under classic
  /// recovery (they gate the window).
  double straggler_fraction = 0.002;
  // --- OLCF-funded features ---
  /// Server-initiated reconnect notification.
  bool imperative_recovery = false;
  /// Routers broadcast dead-path notices (skips the RPC timeout).
  bool asymmetric_router_notification = false;
  /// Notification fan-out latency through the router fleet.
  double notification_s = 2.0;
};

struct FailoverOutcome {
  /// Time from OSS death until clients know to reconnect.
  double detection_s = 0.0;
  /// Time spent streaming reconnects into the failover server.
  double reconnect_s = 0.0;
  /// Extra time the recovery window stayed open for stragglers.
  double straggler_wait_s = 0.0;
  /// Total I/O outage for the affected OSTs.
  double total_outage_s = 0.0;
};

/// Model one OSS failover under the given feature set.
FailoverOutcome simulate_oss_failover(const RecoveryParams& params);

}  // namespace spider::fs
