file(REMOVE_RECURSE
  "CMakeFiles/sweep_congestion_dne_test.dir/sweep_congestion_dne_test.cpp.o"
  "CMakeFiles/sweep_congestion_dne_test.dir/sweep_congestion_dne_test.cpp.o.d"
  "sweep_congestion_dne_test"
  "sweep_congestion_dne_test.pdb"
  "sweep_congestion_dne_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sweep_congestion_dne_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
