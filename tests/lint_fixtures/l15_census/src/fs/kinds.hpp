// Fixture for spiderlint rule L15 (finding/fault exhaustiveness): the two
// censused enums. kGood / kBound are fully wired by the sibling files;
// kHalfWired / kUnbound are the seeded census gaps; kWaived shows the
// reviewed escape hatch.
#pragma once

namespace fixture {

enum class FindingKind {
  kGood,
  kHalfWired,
  kWaived,  // spiderlint: census-ok — diagnostics-only kind, never repaired
};

enum class FaultKind {
  kBound,
  kUnbound,
};

struct Oracle {};

// Registered below (wire.cpp). Must NOT be flagged.
Oracle make_good_oracle();
// Declared but never handed to a suite. Flagged.
Oracle make_lost_oracle();

}  // namespace fixture
