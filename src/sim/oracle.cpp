#include "sim/oracle.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "sim/flow_network.hpp"

namespace spider::sim {

namespace {

class LambdaOracle final : public Oracle {
 public:
  LambdaOracle(std::string name, OracleCheckFn check)
      : name_(std::move(name)), check_(std::move(check)) {}
  std::string_view name() const override { return name_; }
  void check(SimTime now, std::vector<OracleViolation>& out) override {
    check_(now, out);
  }

 private:
  std::string name_;
  OracleCheckFn check_;
};

class FlowConservationOracle final : public Oracle {
 public:
  explicit FlowConservationOracle(const FlowNetwork& net) : net_(net) {}

  std::string_view name() const override { return "flow-conservation"; }

  void check(SimTime now, std::vector<OracleViolation>& out) override {
    const std::size_t n = net_.resources();
    prev_served_.resize(n, 0.0);
    prev_capacity_.resize(n, 0.0);
    const double dt = to_seconds(now - prev_time_);
    // Relative slack: the solver works in doubles and the completion event
    // quantizes to whole nanoseconds.
    constexpr double kSlack = 1e-6;

    double capacity_sum = 0.0;
    for (std::size_t r = 0; r < n; ++r) {
      const ResourceStats& stats = net_.stats(r);
      const double cap = net_.capacity(r);
      capacity_sum += cap;
      if (!(stats.current_load >= 0.0) || !(stats.current_load <= 1.0 + kSlack) ||
          !std::isfinite(stats.current_load)) {
        fire(out, now, net_.name(r),
             "utilization out of [0,1]: " + std::to_string(stats.current_load));
      }
      const double delta = stats.served - prev_served_[r];
      if (delta < -kSlack * (1.0 + prev_served_[r])) {
        fire(out, now, net_.name(r),
             "served work went backwards by " + std::to_string(-delta));
      }
      if (r < checked_) {
        // Resource existed at the previous sweep: accrue the capacity budget
        // using the larger window-edge capacity (sweeps align with capacity
        // edges; see header). The check is cumulative rather than per-window
        // because FlowNetwork integrates progress lazily — several windows'
        // worth of served work can land in one sweep interval.
        budget_[r] += std::max(prev_capacity_[r], cap) * std::max(dt, 0.0);
        if (stats.served > budget_[r] * (1.0 + kSlack) + kSlack) {
          std::ostringstream os;
          os << "served " << stats.served
             << " units against a cumulative capacity budget of " << budget_[r];
          fire(out, now, net_.name(r), os.str());
        }
      } else {
        // First sighting: grant capacity for the resource's whole lifetime so
        // far (it existed at most since t=0, and served work accrues lazily —
        // possibly after this sweep). Detection starts from here on.
        budget_.resize(n, 0.0);
        budget_[r] = std::max(stats.served, cap * to_seconds(now));
      }
      prev_served_[r] = stats.served;
      prev_capacity_[r] = cap;
    }
    if (net_.total_delivered() < prev_delivered_ - kSlack) {
      fire(out, now, "total",
           "total delivered volume went backwards: " +
               std::to_string(net_.total_delivered()) + " < " +
               std::to_string(prev_delivered_));
    }
    if (net_.aggregate_rate() > capacity_sum * (1.0 + kSlack) + kSlack) {
      std::ostringstream os;
      os << "aggregate rate " << net_.aggregate_rate()
         << " exceeds total capacity " << capacity_sum;
      fire(out, now, "total", os.str());
    }
    prev_delivered_ = net_.total_delivered();
    prev_time_ = now;
    checked_ = n;
  }

 private:
  void fire(std::vector<OracleViolation>& out, SimTime now,
            const std::string& resource, std::string detail) const {
    out.push_back(OracleViolation{std::string(name()), now,
                                  "resource '" + resource + "': " +
                                      std::move(detail)});
  }

  const FlowNetwork& net_;
  std::vector<double> prev_served_;
  std::vector<double> prev_capacity_;
  std::vector<double> budget_;  ///< cumulative ∫capacity·dt per resource
  double prev_delivered_ = 0.0;
  SimTime prev_time_ = 0;
  std::size_t checked_ = 0;  ///< resources seen at the previous sweep
};

void json_escape(std::ostringstream& os, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default: os << c;
    }
  }
}

}  // namespace

std::unique_ptr<Oracle> make_oracle(std::string name, OracleCheckFn check) {
  return std::make_unique<LambdaOracle>(std::move(name), std::move(check));
}

Oracle& OracleSuite::add(std::unique_ptr<Oracle> oracle) {
  oracles_.push_back(std::move(oracle));
  return *oracles_.back();
}

void OracleSuite::check_now() {
  const SimTime now = sim_.now();
  for (const auto& oracle : oracles_) oracle->check(now, violations_);
}

std::vector<OracleViolation> OracleSuite::recheck_now() {
  const SimTime now = sim_.now();
  std::vector<OracleViolation> found;
  for (const auto& oracle : oracles_) oracle->check(now, found);
  return found;
}

void OracleSuite::schedule_checks(SimTime interval, SimTime until,
                                  std::source_location loc) {
  if (interval <= 0) throw std::invalid_argument("oracle interval must be > 0");
  const SimTime first = std::min(sim_.now() + interval, until);
  sim_.schedule_at(
      first, [this, interval, until, loc] { tick(interval, until, loc); },
      loc);
}

void OracleSuite::tick(SimTime interval, SimTime until,
                       std::source_location loc) {
  check_now();
  const SimTime next = sim_.now() + interval;
  if (sim_.now() >= until) return;
  sim_.schedule_at(
      std::min(next, until),
      [this, interval, until, loc] { tick(interval, until, loc); }, loc);
}

std::vector<std::string> OracleSuite::fired_oracles() const {
  std::vector<std::string> names;
  for (const OracleViolation& v : violations_) {
    bool seen = false;
    for (const std::string& n : names) {
      if (n == v.oracle) {
        seen = true;
        break;
      }
    }
    if (!seen) names.push_back(v.oracle);
  }
  return names;
}

std::string violations_json(const std::vector<OracleViolation>& violations) {
  std::ostringstream os;
  os << "[";
  for (std::size_t i = 0; i < violations.size(); ++i) {
    if (i > 0) os << ", ";
    os << "{\"oracle\": \"";
    json_escape(os, violations[i].oracle);
    os << "\", \"at_s\": " << to_seconds(violations[i].at) << ", \"detail\": \"";
    json_escape(os, violations[i].detail);
    os << "\"}";
  }
  os << "]";
  return os.str();
}

std::unique_ptr<Oracle> make_flow_conservation_oracle(const FlowNetwork& net) {
  return std::make_unique<FlowConservationOracle>(net);
}

}  // namespace spider::sim
