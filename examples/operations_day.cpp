// A day in the life of the Spider operations team (Sections IV and VI).
//
// The example walks the operational toolchain end to end on a simulated
// day: the DDN poller sampling controllers, a disk failure and rebuild
// window, a controller failover, health-event coalescing that separates
// the hardware fault from the Lustre noise it caused, Nagios-style checks,
// the nightly LustreDU scan, and the scratch purge sweep.
#include <iomanip>
#include <iostream>
#include <memory>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "core/center.hpp"
#include "core/scenario.hpp"
#include "core/spider_config.hpp"
#include "fs/purge.hpp"
#include "tools/health.hpp"
#include "tools/lustredu.hpp"

using namespace spider;

int main() {
  Rng rng(7);
  core::CenterModel center(core::scaled_config(core::spider2_config(), 0.25),
                           rng);
  center.set_client_placement(core::ClientPlacement::kRandom, rng);

  sim::Simulator sim;
  core::ScenarioRunner runner(center, sim);
  tools::HealthMonitor monitor;
  tools::DdnPoller poller;

  // --- production load all day: users checkpointing on a cadence ---------
  for (double t = 300.0; t < 20.0 * 3600.0; t += 1800.0) {
    workload::IoBurst burst;
    burst.start = sim::from_seconds(t);
    burst.clients = 512;
    burst.bytes_per_client = 1_GiB;
    runner.submit_burst(burst,
                        [&center](std::size_t w) { return w % center.total_osts(); },
                        nullptr, 32);
  }

  // --- DDN tool: poll the controller plane every 5 minutes ----------------
  for (double t = 0.0; t < 24.0 * 3600.0; t += 300.0) {
    sim.schedule_at(sim::from_seconds(t), [&, t] {
      const auto& map = runner.map();
      for (std::size_t s = 0; s < center.num_ssus(); ++s) {
        const auto& stats = runner.network().stats(map.controller[s]);
        tools::ControllerSample sample;
        sample.time = sim.now();
        sample.controller = static_cast<std::uint32_t>(s);
        sample.write_bw = stats.current_load *
                          center.ssu(s).controller().delivered_bw();
        sample.read_bw = 0.0;
        sample.avg_request_size = 1_MiB;
        poller.record(sample);
      }
    });
  }

  // --- 09:12 a disk in SSU 2 fails; rebuild window begins -----------------
  const auto& map = runner.map();
  sim.schedule_at(sim::from_seconds(9.2 * 3600.0), [&] {
    auto& group = center.ssu(2).group(5);
    group.fail_member(3);
    group.start_rebuild(3);
    monitor.ingest({sim.now(), tools::EventSource::kHardware,
                    tools::Severity::kWarning, "ssu2-g5",
                    "disk 3 failed; hot spare engaged"});
    // The OST serves degraded bandwidth during the rebuild.
    const std::size_t ost = 2 * center.config().ssu.raid_groups + 5;
    runner.network().set_capacity(
        map.ost[ost], center.ost_at(ost).bandwidth(block::IoMode::kSequential,
                                                   block::IoDir::kWrite));
    monitor.ingest({sim.now(), tools::EventSource::kLustre,
                    tools::Severity::kInfo, "ssu2-g5",
                    "ost in rebuild mode; clients see reduced bandwidth"});
    // Rebuild completes after the group's rebuild time.
    sim.schedule_in(sim::from_seconds(group.rebuild_time_s()), [&, ost] {
      center.ssu(2).group(5).finish_rebuild(3);
      runner.network().set_capacity(
          map.ost[ost], center.ost_at(ost).bandwidth(
                            block::IoMode::kSequential, block::IoDir::kWrite));
      monitor.ingest({sim.now(), tools::EventSource::kLustre,
                      tools::Severity::kInfo, "ssu2-g5", "rebuild complete"});
    });
  });

  // --- 14:40 controller failover in SSU 3, recovered two hours later ------
  sim.schedule_at(sim::from_seconds(14.66 * 3600.0), [&] {
    center.ssu(3).controller().fail_one();
    runner.network().set_capacity(map.controller[3],
                                  center.ssu(3).controller().delivered_bw());
    monitor.ingest({sim.now(), tools::EventSource::kHardware,
                    tools::Severity::kCritical, "ssu3-ctrl",
                    "controller A unresponsive; failed over"});
    monitor.ingest({sim.now() + 2 * sim::kSecond, tools::EventSource::kLustre,
                    tools::Severity::kWarning, "ssu3-ctrl",
                    "lustre: slow I/O on OSTs behind ssu3"});
  });
  sim.schedule_at(sim::from_seconds(16.7 * 3600.0), [&] {
    center.ssu(3).controller().recover();
    runner.network().set_capacity(map.controller[3],
                                  center.ssu(3).controller().delivered_bw());
    monitor.ingest({sim.now(), tools::EventSource::kHardware,
                    tools::Severity::kInfo, "ssu3-ctrl",
                    "controller A replaced; active-active restored"});
  });

  sim.run(sim::kDay);

  // --- shift-end reporting -------------------------------------------------
  std::cout << "=== operations day summary ===\n\n";
  std::cout << "DDN tool: " << poller.samples() << " controller samples; "
            << "peak aggregate " << to_gbps(poller.peak_total_bw(0))
            << " GB/s\n\n";

  std::cout << "health incidents (coalescing window 10 min):\n";
  for (const auto& inc : monitor.coalesce(10 * sim::kMinute)) {
    std::cout << "  [" << std::fixed << std::setprecision(1)
              << sim::to_hours(inc.first) << "h] " << inc.component << ": "
              << inc.events.size() << " events, "
              << (inc.hardware_related ? "HARDWARE-RELATED" : "software only")
              << (inc.worst == tools::Severity::kCritical ? " (critical)" : "")
              << "\n";
  }

  tools::CheckScheduler checks;
  checks.add_check({"ssu2-g5 raid state", [&] {
                      return center.ssu(2).group(5).state() ==
                                     block::RaidState::kNormal
                                 ? tools::CheckResult{tools::CheckStatus::kOk, ""}
                                 : tools::CheckResult{
                                       tools::CheckStatus::kWarning,
                                       "group not back to normal"};
                    }});
  checks.add_check({"ssu3 controller pair", [&] {
                      return center.ssu(3).controller().state() ==
                                     block::PairState::kActiveActive
                                 ? tools::CheckResult{tools::CheckStatus::kOk, ""}
                                 : tools::CheckResult{
                                       tools::CheckStatus::kCritical,
                                       "still failed over"};
                    }});
  const auto report = checks.run_all();
  std::cout << "\nNagios sweep: " << report.ok << " ok, " << report.warning
            << " warning, " << report.critical << " critical\n";

  // --- nightly LustreDU scan and the 2am purge sweep -----------------------
  auto& scratch = center.filesystem().ns(0);
  Rng file_rng(21);
  for (int day_offset = -30; day_offset <= 0; ++day_offset) {
    const auto when =
        sim::kDay + static_cast<sim::SimTime>(day_offset) * sim::kDay;
    for (int f = 0; f < 200; ++f) {
      scratch.create_file(1 + f % 10, 20_GiB, when, file_rng);
    }
  }
  tools::LustreDu lustredu;
  lustredu.daily_scan(scratch, sim.now());
  std::cout << "\nnightly LustreDU scan: project 3 uses "
            << to_tb(lustredu.usage(3).bytes_reported)
            << " TB (zero MDS cost; a client du would have cost "
            << tools::client_du(scratch, 3, 0.5).mds_ops
            << " weighted MDS ops)\n";

  const auto purge =
      fs::run_purge(scratch, sim.now() + sim::kDay, fs::PurgePolicy{14.0});
  std::cout << "2am purge sweep: scanned " << purge.scanned
            << " files, purged " << purge.purged << ", freed "
            << to_tb(purge.freed) << " TB; scratch now "
            << scratch.fullness() * 100.0 << "% full\n";

  return 0;
}
