file(REMOVE_RECURSE
  "libspider_tools.a"
)
