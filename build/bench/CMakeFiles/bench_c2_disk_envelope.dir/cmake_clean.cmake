file(REMOVE_RECURSE
  "CMakeFiles/bench_c2_disk_envelope.dir/bench_c2_disk_envelope.cpp.o"
  "CMakeFiles/bench_c2_disk_envelope.dir/bench_c2_disk_envelope.cpp.o.d"
  "bench_c2_disk_envelope"
  "bench_c2_disk_envelope.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_c2_disk_envelope.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
