// C12 (Lesson 14): fine-grained routing and router placement vs congestion.
//
// Paper: "Network congestion will lead to sub-optimal I/O performance.
// Identifying hot spots and eliminating them is key... Careful placements
// of I/O processes and routers and better routing algorithms, such as FGR,
// are necessary for mitigating congestion."
//
// Same workload (random-placed clients, file-per-process writes), three
// routing policies x two placement strategies; reported: delivered
// bandwidth, hottest torus link, and IB-core crossings.
#include <iostream>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "core/center.hpp"
#include "core/spider_config.hpp"
#include "net/congestion.hpp"
#include "workload/ior.hpp"

namespace {

using namespace spider;

struct Outcome {
  double aggregate = 0.0;
  double max_torus_util = 0.0;
  double max_router_util = 0.0;
  double core_util = 0.0;
};

Outcome run_policy(core::CenterModel& center, core::RoutingPolicy policy) {
  center.set_routing_policy(policy);
  workload::IorConfig cfg;
  cfg.clients = 4096;
  const auto r = workload::run_ior(center, cfg);
  Outcome out;
  out.aggregate = r.aggregate_bw;
  auto& solver = center.solver();
  const auto& map = center.steady_map();
  for (auto id : map.torus_link) {
    out.max_torus_util = std::max(out.max_torus_util, solver.utilization(id));
  }
  for (auto id : map.router) {
    out.max_router_util = std::max(out.max_router_util, solver.utilization(id));
  }
  for (auto id : map.ib_core) {
    out.core_util = std::max(out.core_util, solver.utilization(id));
  }
  return out;
}

}  // namespace

int main() {
  using namespace spider;

  bench::banner("C12: routing policy and placement vs congestion "
                "(4,096 random-placed clients, 1 MiB writes, full system)");

  Table table;
  table.set_columns({"placement", "routing", "aggregate GB/s",
                     "hottest torus link", "hottest router", "IB core util"});

  Outcome fgr_zoned, nearest_zoned, rr_zoned, fgr_clustered;
  for (const auto strategy : {net::PlacementStrategy::kFgrZoned,
                              net::PlacementStrategy::kClustered}) {
    Rng rng(2014);
    auto cfg = core::spider2_config();
    cfg.placement_strategy = strategy;
    core::CenterModel center(cfg, rng);
    center.set_target_namespace(SIZE_MAX);
    center.set_client_placement(core::ClientPlacement::kRandom, rng);
    const std::string pname =
        strategy == net::PlacementStrategy::kFgrZoned ? "spread (deployed)"
                                                      : "clustered";
    for (const auto policy :
         {core::RoutingPolicy::kFgr, core::RoutingPolicy::kNearest,
          core::RoutingPolicy::kRoundRobin}) {
      const auto out = run_policy(center, policy);
      const char* rname = policy == core::RoutingPolicy::kFgr ? "FGR"
                          : policy == core::RoutingPolicy::kNearest
                              ? "nearest (locality only)"
                              : "round-robin (blind)";
      table.add_row({pname, std::string(rname), to_gbps(out.aggregate),
                     out.max_torus_util, out.max_router_util, out.core_util});
      if (strategy == net::PlacementStrategy::kFgrZoned) {
        if (policy == core::RoutingPolicy::kFgr) fgr_zoned = out;
        if (policy == core::RoutingPolicy::kNearest) nearest_zoned = out;
        if (policy == core::RoutingPolicy::kRoundRobin) rr_zoned = out;
      } else if (policy == core::RoutingPolicy::kFgr) {
        fgr_clustered = out;
      }
    }
  }
  table.print(std::cout);

  // Static hotspot analysis (the operator's before-traffic view): project
  // the same demand onto torus links per routing choice.
  {
    Rng rng(2014);
    auto cfg = core::spider2_config();
    core::CenterModel center(cfg, rng);
    center.set_client_placement(core::ClientPlacement::kRandom, rng);
    std::vector<int> nodes;
    std::vector<std::size_t> leaves;
    for (std::size_t c = 0; c < 4096; ++c) {
      nodes.push_back(center.node_of_client(c));
      leaves.push_back(center.leaf_of_ost(c % center.total_osts()));
    }
    Table st("static link-load analysis (50 MB/s per client)");
    st.set_columns({"routing", "mean hops", "links used", "hottest link GB/s",
                    "concentration"});
    for (auto routing : {net::RoutingChoice::kFgr, net::RoutingChoice::kNearest,
                         net::RoutingChoice::kRoundRobin}) {
      const auto rep = net::analyze_congestion(
          center.torus(), center.fgr(), nodes, leaves, 50.0 * kMBps, routing);
      const char* name = routing == net::RoutingChoice::kFgr ? "FGR"
                         : routing == net::RoutingChoice::kNearest
                             ? "nearest"
                             : "round-robin";
      st.add_row({std::string(name), rep.mean_hops,
                  static_cast<std::int64_t>(rep.links_used),
                  to_gbps(rep.max_link_load), rep.concentration});
    }
    st.print(std::cout);
  }
  std::cout << "\n";

  bench::ShapeChecker checker;
  checker.check(fgr_zoned.aggregate > rr_zoned.aggregate,
                "FGR outperforms blind round-robin routing");
  checker.check(fgr_zoned.aggregate > nearest_zoned.aggregate,
                "leaf-affine FGR beats locality-only routing");
  checker.check(fgr_zoned.core_util < 0.05,
                "FGR keeps bulk I/O off the InfiniBand core");
  checker.check(nearest_zoned.core_util > fgr_zoned.core_util,
                "locality-only routing pushes traffic through the core");
  checker.check(fgr_zoned.aggregate > fgr_clustered.aggregate,
                "spread router placement beats clustered placement");
  return checker.exit_code();
}
