#include "tools/faultcli/churn.hpp"

#include <memory>
#include <sstream>

#include "fs/purge.hpp"
#include "sim/sharded_sim.hpp"
#include "tools/faultcli/campaign.hpp"
#include "tools/lustredu.hpp"

namespace spider::tools {

namespace {

/// Sum of every namespace's walk counter — the fence reads this before and
/// after the query window.
std::uint64_t total_walks(const core::ChurnScenario& scenario) {
  std::uint64_t walks = 0;
  for (std::size_t i = 0; i < scenario.namespace_count(); ++i) {
    walks += scenario.ns(i).full_walks();
  }
  return walks;
}

void fold(ChurnVerdict& verdict, const fs::ConsumeResult& res) {
  verdict.records_applied += res.applied;
}

}  // namespace

ChurnVerdict run_churn(const ChurnRunConfig& cfg) {
  ChurnVerdict verdict;

  sim::ShardedConfig engine_cfg;
  engine_cfg.workers = cfg.workers;
  sim::ShardedSimulator engine(std::max<std::size_t>(1, cfg.engine_shards),
                               engine_cfg);
  const sim::ShardMap map(cfg.params.namespaces, engine.shards());
  core::ChurnScenario scenario(cfg.params, engine, map);
  scenario.seed_population();

  const std::size_t n = scenario.namespace_count();

  // Consumer stack: one du tool following every namespace, one purge
  // engine per namespace, and the oracle's own accounting per namespace.
  LustreDu du;
  fs::PurgeRules rules;
  rules.classes.push_back(
      fs::PurgeClass{cfg.purge_window_days, 0, cfg.purge_project});
  std::vector<std::unique_ptr<fs::PurgeEngine>> purgers;
  std::vector<std::unique_ptr<fs::ChangelogAccounting>> audit;
  std::vector<std::unique_ptr<sim::Oracle>> oracles;
  for (std::size_t i = 0; i < n; ++i) {
    du.follow(scenario.log(i), cfg.accounting_shards);
    purgers.push_back(std::make_unique<fs::PurgeEngine>(
        scenario.ns(i), scenario.log(i), rules));
    audit.push_back(
        std::make_unique<fs::ChangelogAccounting>(cfg.accounting_shards));
    oracles.push_back(
        make_changelog_oracle(scenario.ns(i), scenario.log(i), *audit.back()));
  }
  // Baseline: consumers absorb the seeded population before churn starts.
  fold(verdict, du.poll());
  for (auto& purger : purgers) fold(verdict, purger->poll());

  scenario.start();

  // Epoch horizon: actors go quiet after ~think * ops_per_actor; pad so the
  // final barrier lands after the last op.
  const sim::SimTime total_span =
      cfg.params.think * static_cast<sim::SimTime>(cfg.params.ops_per_actor + 2);
  const std::size_t epochs = std::max<std::size_t>(1, cfg.epochs);
  const sim::SimTime epoch_span =
      total_span / static_cast<sim::SimTime>(epochs) + 1;

  for (std::size_t e = 0; e < epochs; ++e) {
    const sim::SimTime horizon =
        epoch_span * static_cast<sim::SimTime>(e + 1);
    verdict.events += engine.run(horizon);
    scenario.commit_all();

    // MDS crash at the barrier: namespace 0's log rewinds below the
    // consumers' cursors — future appends will reuse the lost txids, so
    // silent absorption would corrupt every table downstream.
    if (cfg.crash && e == cfg.crash_epoch && !verdict.crash_injected) {
      fs::OpLog& log = scenario.log(0);
      log.truncate_to(log.committed() / 2);
      verdict.crash_injected = true;
    }

    // --- walk fence: everything in here must cost zero namespace walks ---
    bool rewound = false;
    {
      const std::uint64_t walks_before = total_walks(scenario);
      const fs::ConsumeResult du_res = du.poll();
      fold(verdict, du_res);
      rewound = rewound || du_res.cursor_ahead;
      for (auto& purger : purgers) {
        const fs::ConsumeResult res = purger->poll();
        if (!res.cursor_ahead) fold(verdict, res);
        rewound = rewound || res.cursor_ahead;
      }
      if (cfg.purge_every > 0 && (e + 1) % cfg.purge_every == 0) {
        for (auto& purger : purgers) {
          const fs::PurgeReport report = purger->sweep(horizon);
          verdict.purged += report.purged;
          verdict.purge_freed += report.freed;
        }
      }
      for (std::size_t p = 0; p < cfg.query_projects; ++p) {
        const DuCost cost = du.usage(static_cast<std::uint32_t>(p));
        if (cost.stale) {
          verdict.violations.push_back(sim::OracleViolation{
              "du-freshness", horizon,
              "du reported stale after the consumers had polled"});
        }
      }
      verdict.query_walks += total_walks(scenario) - walks_before;
    }
    // --- fence closed ----------------------------------------------------

    // Sweep unlinks are this barrier's MDS transaction; commit them so the
    // oracle audits a fully durable prefix.
    scenario.commit_all();

    if (rewound) {
      verdict.crash_detected = true;
      // Ground-truth resync (the Robinhood full-rescan escape hatch): the
      // committed prefix no longer describes the namespace, so replaying
      // it cannot help. These walks are recovery, not query cost.
      const std::uint64_t walks_before = total_walks(scenario);
      du.resync_feed(0, scenario.ns(0));
      audit[0]->rebuild_from_namespace(scenario.ns(0), scenario.log(0));
      // Best-effort for the purge engine: replay the surviving prefix.
      // Files created only in the lost tail age invisibly until the next
      // full resync — conservative, never unsafe.
      purgers[0]->rebuild();
      verdict.recovery_walks += total_walks(scenario) - walks_before;
    }

    // Oracle audit: changelog-derived accounting vs ground truth, every
    // namespace, every barrier. Walks deliberately (outside the fence).
    for (std::size_t i = 0; i < n; ++i) {
      oracles[i]->check(horizon, verdict.violations);
    }
  }

  verdict.epochs = epochs;
  verdict.totals = scenario.totals();
  verdict.logical_files = scenario.logical_files();
  verdict.logical_bytes = scenario.logical_bytes();
  verdict.ok = verdict.violations.empty() && verdict.query_walks == 0 &&
               (!cfg.crash || verdict.crash_detected) &&
               (cfg.min_logical_files == 0 ||
                verdict.logical_files >= cfg.min_logical_files);
  return verdict;
}

std::string churn_verdict_json(const ChurnRunConfig& cfg,
                               const ChurnVerdict& verdict) {
  std::ostringstream os;
  os << "{\"scenario\": \"churn\", \"namespaces\": " << cfg.params.namespaces
     << ", \"engine_shards\": " << cfg.engine_shards
     << ", \"cohort\": " << cfg.params.cohort
     << ", \"seed\": " << cfg.params.seed
     << ", \"epochs\": " << verdict.epochs
     << ", \"events\": " << verdict.events
     << ", \"logical_files\": " << verdict.logical_files
     << ", \"logical_bytes\": " << verdict.logical_bytes
     << ", \"creates\": " << verdict.totals.creates
     << ", \"unlinks\": " << verdict.totals.unlinks
     << ", \"touches\": " << verdict.totals.touches
     << ", \"resizes\": " << verdict.totals.resizes
     << ", \"setprojects\": " << verdict.totals.setprojects
     << ", \"refused\": " << verdict.totals.refused
     << ", \"records_applied\": " << verdict.records_applied
     << ", \"query_walks\": " << verdict.query_walks
     << ", \"recovery_walks\": " << verdict.recovery_walks
     << ", \"purged\": " << verdict.purged
     << ", \"purge_freed\": " << verdict.purge_freed
     << ", \"crash_injected\": " << (verdict.crash_injected ? "true" : "false")
     << ", \"crash_detected\": " << (verdict.crash_detected ? "true" : "false")
     << ", \"ok\": " << (verdict.ok ? "true" : "false")
     << ", \"violations\": " << sim::violations_json(verdict.violations)
     << "}";
  return os.str();
}

}  // namespace spider::tools
