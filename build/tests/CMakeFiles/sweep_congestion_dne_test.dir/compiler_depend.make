# Empty compiler generated dependencies file for sweep_congestion_dne_test.
# This may be replaced when dependencies are built.
