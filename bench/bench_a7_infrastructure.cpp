// Ablation A7 (Lessons 6-7): diskless provisioning and centralized
// configuration management.
//
// Lesson 7: "Build PFS clusters using diskless nodes to increase
// reliability and reduce complexity and cost."
// Lesson 6: "centralize infrastructure services among disparate systems,
// center-wide, to defray expenses ... reduce inconsistencies."
#include <iostream>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "infra/config_mgmt.hpp"
#include "infra/gedi.hpp"

int main() {
  using namespace spider;
  using namespace spider::infra;

  bench::banner("A7a: diskless (GeDI) vs diskful server fleet");

  GediProvisioner gedi;
  gedi.add_boot_script({10, "S10-network", {"/etc/sysconfig/network"}, 0.5});
  gedi.add_boot_script({20, "S20-srp-daemon", {"/etc/srp_daemon.conf"}, 0.5});
  gedi.add_boot_script({30, "S30-subnet-manager", {"/etc/opensm/opensm.conf"}, 1.0});

  const std::size_t fleet_nodes = 288 + 440 + 4;  // OSS + routers + MDS class
  const auto savings = diskless_savings(fleet_nodes);
  const auto mttr = repair_mttr(gedi);

  Table dt;
  dt.set_columns({"metric", "diskful", "diskless (GeDI)"});
  dt.add_row({std::string("per-node boot hardware cost $"),
              savings.per_node_acquisition, 0.0});
  dt.add_row({std::string("fleet acquisition delta $"), savings.fleet_acquisition,
              0.0});
  dt.add_row({std::string("fleet annual boot-disk maintenance $"),
              savings.fleet_annual_maintenance, 0.0});
  dt.add_row({std::string("server repair MTTR (min)"), mttr.diskful_s / 60.0,
              mttr.diskless_s / 60.0});
  dt.add_row({std::string("full-fleet OS update (min)"),
              mttr.diskful_s / 60.0,  // per-node reinstall gates the fleet too
              gedi.fleet_boot_time_s(fleet_nodes) / 60.0});
  dt.print(std::cout);

  bench::banner("A7b: centralized vs separate configuration management "
                "(5 fleets, 200 changes/yr, 3% copy-miss rate)");
  Rng rng(2014);
  const auto cmp = compare_centralization(5, 200, 0.03, rng);
  Table ct;
  ct.set_columns({"metric", "separate instances", "centralized"});
  ct.add_row({std::string("specs maintained"),
              static_cast<std::int64_t>(cmp.specs_separate),
              static_cast<std::int64_t>(cmp.specs_centralized)});
  ct.add_row({std::string("spec edits per year"), cmp.edits_separate,
              cmp.edits_centralized});
  ct.add_row({std::string("inconsistent entries after a year"),
              static_cast<std::int64_t>(cmp.inconsistent_entries),
              static_cast<std::int64_t>(0)});
  ct.print(std::cout);

  // Staged rollout discipline: a bad change never reaches the fleet.
  ConfigManager mgr("spider-oss", 288);
  mgr.spec().set("lustre/version", "2.4.0");
  mgr.converge();
  ConfigSpec bad = mgr.spec();
  bad.set("lustre/version", "2.4.1-broken");
  Rng rollout_rng(3);
  const auto rollout = mgr.staged_rollout(bad, 0.05, 1.0, rollout_rng);
  std::cout << "\nstaged rollout of a broken change: canaries "
            << rollout.canary_nodes << ", rolled back: "
            << (rollout.rolled_back ? "yes" : "no") << ", fleet drift after: "
            << mgr.audit().drifted_nodes << " nodes\n\n";

  bench::ShapeChecker checker;
  checker.check(savings.fleet_acquisition > 500e3,
                "diskless saves high six figures across the server plane");
  checker.check(mttr.diskless_s < 0.05 * mttr.diskful_s,
                "diskless repair MTTR is a reboot, not a reinstall");
  checker.check(cmp.inconsistent_entries > 0,
                "separate instances accumulate config inconsistencies");
  checker.check(rollout.rolled_back && mgr.audit().drifted_nodes == 0,
                "change management contains a bad change at the canaries");
  return checker.exit_code();
}
