# Empty compiler generated dependencies file for spider_infra.
# This may be replaced when dependencies are built.
