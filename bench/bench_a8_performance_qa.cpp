// Ablation A8 (Section V-D, Lesson 16): the thin test file system.
//
// "Plan and design for test resources for the lifetime of the PFS.
// Mechanisms such as a thin file system can accommodate the destructive
// nature of some of these tests... It also allows for performance
// comparisons between full file systems and those that are freshly
// formatted."
//
// The bench carries a namespace through its production life: accept the
// baseline while fresh, let it fill to 85%, degrade a couple of RAID
// groups, and show the thin QA (a) doesn't false-alarm on fullness,
// (b) catches the hardware regressions, and (c) quantifies the
// fresh-vs-full gap administrators use to argue for purges.
#include <iostream>
#include <memory>
#include <vector>

#include "bench_util.hpp"
#include "block/raid.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "fs/thinfs.hpp"

int main() {
  using namespace spider;

  Rng rng(2014);
  std::vector<std::unique_ptr<block::Raid6Group>> groups;
  std::vector<std::unique_ptr<fs::Ost>> osts;
  std::vector<fs::Ost*> ptrs;
  Rng pop_rng(7);
  for (int i = 0; i < 56; ++i) {  // one SSU worth of OSTs
    auto members = block::make_population(10, block::DiskParams{},
                                          block::PopulationModel{}, pop_rng);
    groups.push_back(
        std::make_unique<block::Raid6Group>(block::RaidParams{}, members));
    osts.push_back(std::make_unique<fs::Ost>(i, groups.back().get()));
    ptrs.push_back(osts.back().get());
  }
  fs::ThinFs thin(ptrs);

  bench::banner("A8: thin-file-system performance QA over the system's life");
  std::cout << "reserved capacity: " << to_tb(thin.reserved_capacity())
            << " TB of " << to_tb([&] {
                 Bytes t = 0;
                 for (auto* o : ptrs) t += o->capacity();
                 return t;
               }())
            << " TB (" << 100.0 * fs::ThinFsParams{}.reserve_fraction
            << "%, an acquisition line item)\n\n";

  Table table;
  table.set_columns({"lifecycle stage", "thin QA fleet GB/s",
                     "regressed OSTs", "fresh/production ratio"});

  const auto accept = thin.baseline(0, rng);
  table.add_row({std::string("acceptance (fresh system)"),
                 to_gbps(accept.fleet_write_bw), static_cast<std::int64_t>(0),
                 accept.fresh_over_production});

  // Year one: production fills to 85%.
  for (auto* o : ptrs) {
    o->set_used(static_cast<Bytes>(static_cast<double>(o->capacity()) * 0.85));
  }
  const auto year1 = thin.run_qa(365 * sim::kDay, rng);
  table.add_row({std::string("year 1 (85% full, healthy hw)"),
                 to_gbps(year1.fleet_write_bw),
                 static_cast<std::int64_t>(year1.regressed_osts.size()),
                 year1.fresh_over_production});

  // Year two: two groups run degraded (failed members awaiting rebuild).
  ptrs[10]->group().fail_member(3);
  ptrs[41]->group().fail_member(7);
  const auto year2 = thin.run_qa(730 * sim::kDay, rng);
  table.add_row({std::string("year 2 (+2 degraded RAID groups)"),
                 to_gbps(year2.fleet_write_bw),
                 static_cast<std::int64_t>(year2.regressed_osts.size()),
                 year2.fresh_over_production});
  table.print(std::cout);
  std::cout << "\nregressed OSTs flagged: ";
  for (auto o : year2.regressed_osts) std::cout << o << " ";
  std::cout << "\n\n";

  bench::ShapeChecker checker;
  checker.check(thin.reserved_capacity() <
                    [&] {
                      Bytes t = 0;
                      for (auto* o : ptrs) t += o->capacity();
                      return t;
                    }() / 50,
                "thin reserve is a small percentage of hardware capacity");
  checker.check(year1.regressed_osts.empty(),
                "production fullness causes no false QA alarms");
  checker.check(year1.fresh_over_production > 1.3,
                "QA quantifies the fresh-vs-full gap (why purges matter)");
  checker.check(year2.regressed_osts.size() == 2,
                "QA pinpoints exactly the degraded hardware");
  return checker.exit_code();
}
