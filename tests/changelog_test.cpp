// Changelog consumer layer (fs/changelog.hpp) + incremental purge engine:
// cursor/crash contract, sharded accounting determinism, and the
// policy-class sweep — the unit tier behind ROADMAP item 2.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "block/disk.hpp"
#include "block/raid.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"
#include "fs/changelog.hpp"
#include "fs/fs_namespace.hpp"
#include "fs/journal.hpp"
#include "fs/purge.hpp"

namespace {

using namespace spider;
using namespace spider::fs;

std::vector<block::Disk> healthy_members(std::size_t n = 10) {
  std::vector<block::Disk> out;
  for (std::size_t i = 0; i < n; ++i) {
    out.emplace_back(block::DiskParams{}, static_cast<std::uint32_t>(i), 1.0,
                     1e-4);
  }
  return out;
}

/// A small self-owning OST fleet (same shape fs_test uses).
struct Fleet {
  std::vector<std::unique_ptr<block::Raid6Group>> groups;
  std::vector<std::unique_ptr<Ost>> osts;
  std::vector<Ost*> ptrs;

  explicit Fleet(std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
      groups.push_back(std::make_unique<block::Raid6Group>(
          block::RaidParams{}, healthy_members()));
      osts.push_back(
          std::make_unique<Ost>(static_cast<std::uint32_t>(i), groups.back().get()));
      ptrs.push_back(osts.back().get());
    }
  }
};

// --- record emission ---------------------------------------------------------

TEST(Changelog, OpKindNamesCoverAllKinds) {
  EXPECT_STREQ(op_kind_name(OpKind::kCreate), "create");
  EXPECT_STREQ(op_kind_name(OpKind::kUnlink), "unlink");
  EXPECT_STREQ(op_kind_name(OpKind::kSetattr), "setattr");
  EXPECT_STREQ(op_kind_name(OpKind::kResize), "resize");
  EXPECT_STREQ(op_kind_name(OpKind::kSetProject), "setproject");
}

TEST(Changelog, AttachedNamespaceJournalsEveryMutationKind) {
  Fleet fleet(4);
  FsNamespace ns("chg", fleet.ptrs);
  OpLog log;
  ns.attach_oplog(&log, kLogDefault);
  Rng rng(7);

  const FileId id = ns.create_file(3, 8_MiB, 10, rng);
  ASSERT_NE(id, kNoFile);
  ns.touch_file(id, 20);
  ASSERT_TRUE(ns.resize_file(id, 12_MiB, 30));
  ASSERT_TRUE(ns.set_project(id, 5, 40));
  ASSERT_TRUE(ns.unlink(id, 50));

  ASSERT_EQ(log.records().size(), 5u);
  const auto& recs = log.records();
  EXPECT_EQ(recs[0].kind, OpKind::kCreate);
  EXPECT_EQ(recs[0].project, 3u);
  EXPECT_EQ(recs[0].size, 8_MiB);
  EXPECT_EQ(recs[1].kind, OpKind::kSetattr);
  EXPECT_EQ(recs[2].kind, OpKind::kResize);
  EXPECT_EQ(recs[2].size, 12_MiB);
  EXPECT_EQ(recs[2].prev_size, 8_MiB);
  EXPECT_EQ(recs[3].kind, OpKind::kSetProject);
  EXPECT_EQ(recs[3].project, 5u);
  EXPECT_EQ(recs[3].prev_project, 3u);
  EXPECT_EQ(recs[4].kind, OpKind::kUnlink);
  EXPECT_EQ(recs[4].project, 5u);
  EXPECT_EQ(recs[4].size, 12_MiB);
  // Every record names the same file and carries its mutation time.
  for (const OpRecord& rec : recs) EXPECT_EQ(rec.file, id);
  EXPECT_EQ(recs[4].at, 50);
}

TEST(Changelog, AtimeRecordsAreMaskedOffByDefault) {
  Fleet fleet(2);
  FsNamespace ns("chg", fleet.ptrs);
  OpLog log;
  ns.attach_oplog(&log, kLogDefault);
  Rng rng(7);
  const FileId id = ns.create_file(0, 4_MiB, 0, rng);
  ns.read_file(id, 5);
  EXPECT_EQ(log.records().size(), 1u);  // the create only

  FsNamespace ns2("chg2", fleet.ptrs);
  OpLog log2;
  ns2.attach_oplog(&log2, kLogAll);
  const FileId id2 = ns2.create_file(0, 4_MiB, 0, rng);
  ns2.read_file(id2, 5);
  ASSERT_EQ(log2.records().size(), 2u);
  EXPECT_EQ(log2.records()[1].kind, OpKind::kSetattr);
}

TEST(Changelog, MaskFiltersRecordKinds) {
  Fleet fleet(2);
  FsNamespace ns("chg", fleet.ptrs);
  OpLog log;
  ns.attach_oplog(&log, kLogCreate);  // creates only
  Rng rng(7);
  const FileId id = ns.create_file(0, 4_MiB, 0, rng);
  ns.touch_file(id, 1);
  ASSERT_TRUE(ns.unlink(id, 2));
  ASSERT_EQ(log.records().size(), 1u);
  EXPECT_EQ(log.records()[0].kind, OpKind::kCreate);
}

TEST(Changelog, SameProjectSetProjectEmitsNoRecord) {
  Fleet fleet(2);
  FsNamespace ns("chg", fleet.ptrs);
  OpLog log;
  ns.attach_oplog(&log, kLogDefault);
  Rng rng(7);
  const FileId id = ns.create_file(2, 4_MiB, 0, rng);
  ASSERT_TRUE(ns.set_project(id, 2, 1));  // no-op reassignment
  EXPECT_EQ(log.records().size(), 1u);
}

TEST(Changelog, FailedResizeLeavesNoRecord) {
  Fleet fleet(1);
  FsNamespace ns("chg", fleet.ptrs);
  OpLog log;
  ns.attach_oplog(&log, kLogDefault);
  Rng rng(7);
  const FileId id = ns.create_file(0, 4_MiB, 0, rng);
  const Bytes absurd = ns.ost(0).capacity() * 4;
  EXPECT_FALSE(ns.resize_file(id, absurd, 1));
  EXPECT_EQ(log.records().size(), 1u);  // just the create
  EXPECT_EQ(ns.file(id).size, 4_MiB);
}

// --- cursor / crash contract -------------------------------------------------

TEST(ChangelogCursor, ConsumesOnlyTheCommittedPrefix) {
  OpLog log;
  for (int i = 0; i < 5; ++i) {
    log.append(OpKind::kCreate, 100 + i, 0, 1_MiB, i);
  }
  log.commit(3);
  ChangelogCursor cursor;
  std::vector<std::uint64_t> seen;
  ConsumeResult res =
      cursor.consume(log, [&](const OpRecord& rec) { seen.push_back(rec.txid); });
  EXPECT_EQ(res.applied, 3u);
  EXPECT_EQ(res.cursor, 3u);
  EXPECT_FALSE(res.cursor_ahead);
  EXPECT_FALSE(res.gap);
  EXPECT_EQ(seen, (std::vector<std::uint64_t>{1, 2, 3}));

  log.commit(5);
  res = cursor.consume(log, [&](const OpRecord& rec) { seen.push_back(rec.txid); });
  EXPECT_EQ(res.applied, 2u);
  EXPECT_EQ(res.cursor, 5u);
  EXPECT_EQ(seen.size(), 5u);
}

TEST(ChangelogCursor, CrashRewindIsDetectedNotAbsorbed) {
  OpLog log;
  for (int i = 0; i < 6; ++i) {
    log.append(OpKind::kCreate, 100 + i, 0, 1_MiB, i);
  }
  log.commit(6);
  ChangelogCursor cursor;
  std::uint64_t applied = 0;
  cursor.consume(log, [&](const OpRecord&) { ++applied; });
  ASSERT_EQ(applied, 6u);

  // MDS crash: the log rewinds below the consumer's durable cursor. The
  // next appends will REUSE txids 4..6 for different operations, so the
  // consumer must refuse to continue rather than silently double-apply.
  log.truncate_to(3);
  const ConsumeResult res =
      cursor.consume(log, [&](const OpRecord&) { ++applied; });
  EXPECT_TRUE(res.cursor_ahead);
  EXPECT_EQ(res.applied, 0u);
  EXPECT_EQ(applied, 6u);  // nothing re-applied
  EXPECT_EQ(cursor.position(), 6u);  // cursor untouched until a rebuild
}

TEST(ChangelogCursor, InteriorGapIsDiagnosedWithFirstMissingTxid) {
  OpLog log;
  for (int i = 0; i < 5; ++i) {
    log.append(OpKind::kCreate, 100 + i, 0, 1_MiB, i);
  }
  log.commit(5);
  // Seeded corruption: drop record 3 (L13 confines this surface to tests
  // and the fault tooling).
  auto& recs = log.records_mutable();
  recs.erase(recs.begin() + 2);
  ChangelogCursor cursor;
  std::uint64_t applied = 0;
  const ConsumeResult res =
      cursor.consume(log, [&](const OpRecord&) { ++applied; });
  EXPECT_TRUE(res.gap);
  EXPECT_EQ(res.first_gap_txid, 3u);
  EXPECT_EQ(res.applied, 4u);  // surviving records still applied
  EXPECT_EQ(applied, 4u);
}

TEST(ChangelogCursor, MissingCommittedTailIsAGap) {
  OpLog log;
  for (int i = 0; i < 4; ++i) {
    log.append(OpKind::kCreate, 100 + i, 0, 1_MiB, i);
  }
  log.commit(4);
  auto& recs = log.records_mutable();
  recs.pop_back();  // committed txid 4 has no record behind it
  ChangelogCursor cursor;
  const ConsumeResult res = cursor.consume(log, [](const OpRecord&) {});
  EXPECT_TRUE(res.gap);
  EXPECT_EQ(res.first_gap_txid, 4u);
}

// --- accounting --------------------------------------------------------------

TEST(ChangelogAccounting, DerivedUsageMatchesNamespaceWalk) {
  Fleet fleet(4);
  FsNamespace ns("acct", fleet.ptrs);
  OpLog log;
  ns.attach_oplog(&log, kLogDefault);
  Rng rng(11);

  std::vector<FileId> ids;
  for (int i = 0; i < 64; ++i) {
    const FileId id = ns.create_file(static_cast<std::uint32_t>(i % 5),
                                     (1 + i % 7) * 1_MiB, i, rng);
    ASSERT_NE(id, kNoFile);
    ids.push_back(id);
  }
  for (std::size_t i = 0; i < ids.size(); i += 3) ns.touch_file(ids[i], 100);
  for (std::size_t i = 0; i < ids.size(); i += 4) {
    ns.resize_file(ids[i], 9_MiB, 110);
  }
  for (std::size_t i = 0; i < ids.size(); i += 5) {
    ns.set_project(ids[i], 7, 120);
  }
  for (std::size_t i = 0; i < ids.size(); i += 6) ns.unlink(ids[i], 130);
  log.commit(log.last_txid());

  ChangelogAccounting acct(4);
  const ConsumeResult res = acct.consume(log);
  EXPECT_FALSE(res.cursor_ahead);
  EXPECT_FALSE(res.gap);
  EXPECT_EQ(acct.usage(), ns.usage_by_project());

  std::uint64_t derived_files = 0;
  for (const auto& [project, row] : acct.rows()) derived_files += row.files;
  EXPECT_EQ(derived_files, ns.live_files());
}

TEST(ChangelogAccounting, SetProjectMovesBytesAcrossShardBoundaries) {
  OpLog log;
  // Projects 2 and 5 land in different shards at every fan-out tested.
  log.append(OpKind::kCreate, 1, 2, 10_MiB, 0);
  log.append(OpKind::kSetProject, 1, 5, 10_MiB, 1, /*prev_project=*/2);
  log.commit(2);
  for (const std::uint32_t shards : {1u, 2u, 3u, 8u}) {
    ChangelogAccounting acct(shards);
    acct.consume(log);
    EXPECT_EQ(acct.bytes_of(2), 0u) << shards;
    EXPECT_EQ(acct.files_of(2), 0u) << shards;
    EXPECT_EQ(acct.bytes_of(5), 10_MiB) << shards;
    EXPECT_EQ(acct.files_of(5), 1u) << shards;
  }
}

TEST(ChangelogAccounting, TableHashInvariantAcrossShardFanOut) {
  OpLog log;
  Rng rng(13);
  std::uint64_t next_file = 1;
  for (int i = 0; i < 400; ++i) {
    const auto project = static_cast<std::uint32_t>(rng.uniform_index(16));
    const std::uint64_t roll = rng.uniform_index(4);
    if (roll == 0 && next_file > 1) {
      const std::uint64_t victim = 1 + rng.uniform_index(next_file - 1);
      log.append(OpKind::kUnlink, victim, project, 1_MiB, i);
    } else if (roll == 1) {
      log.append(OpKind::kResize, 1 + rng.uniform_index(next_file), project,
                 (1 + rng.uniform_index(8)) * 1_MiB, i, 0, 1_MiB);
    } else if (roll == 2 && next_file > 1) {
      log.append(OpKind::kSetProject, 1 + rng.uniform_index(next_file - 1),
                 project, 1_MiB, i,
                 static_cast<std::uint32_t>(rng.uniform_index(16)));
    } else {
      log.append(OpKind::kCreate, next_file++, project, 1_MiB, i);
    }
  }
  log.commit(log.last_txid());

  ChangelogAccounting reference(1);
  reference.consume(log);
  for (const std::uint32_t shards : {2u, 3u, 4u, 16u}) {
    ChangelogAccounting acct(shards);
    acct.consume(log);
    EXPECT_EQ(acct.table_hash(), reference.table_hash()) << shards;
    EXPECT_EQ(acct.usage(), reference.usage()) << shards;
  }
}

TEST(ChangelogAccounting, RebuildFromNamespaceResyncsAfterLostRecords) {
  Fleet fleet(4);
  FsNamespace ns("acct", fleet.ptrs);
  OpLog log;
  ns.attach_oplog(&log, kLogDefault);
  Rng rng(17);
  for (int i = 0; i < 32; ++i) {
    ns.create_file(static_cast<std::uint32_t>(i % 3), 2_MiB, i, rng);
  }
  log.commit(log.last_txid());

  ChangelogAccounting acct(2);
  acct.consume(log);
  // Crash: lose half the committed log under live namespace state. A
  // prefix replay can never reconcile this — only ground truth can.
  log.truncate_to(16);
  EXPECT_TRUE(acct.consume(log).cursor_ahead);

  acct.rebuild_from_namespace(ns, log);
  EXPECT_EQ(acct.usage(), ns.usage_by_project());
  EXPECT_EQ(acct.cursor(), log.committed());

  // Incremental again after the resync: new mutations reuse lost txids
  // and the cursor picks them up cleanly.
  Rng rng2(18);
  ns.create_file(1, 4_MiB, 200, rng2);
  log.commit(log.last_txid());
  const ConsumeResult res = acct.consume(log);
  EXPECT_FALSE(res.cursor_ahead);
  EXPECT_EQ(res.applied, 1u);
  EXPECT_EQ(acct.usage(), ns.usage_by_project());
}

// --- incremental purge engine ------------------------------------------------

struct PurgeRig {
  Fleet fleet{4};
  FsNamespace ns{"purge", fleet.ptrs};
  OpLog log;

  PurgeRig() { ns.attach_oplog(&log, kLogDefault); }
};

TEST(PurgeEngine, SweepsOnlyFilesOlderThanTheWindow) {
  PurgeRig rig;
  Rng rng(19);
  const FileId old_file = rig.ns.create_file(0, 4_MiB, 0, rng);
  const FileId young = rig.ns.create_file(0, 4_MiB, 10 * sim::kDay, rng);
  rig.log.commit(rig.log.last_txid());

  PurgeRules rules;
  rules.classes.push_back(PurgeClass{/*window_days=*/7.0});
  PurgeEngine engine(rig.ns, rig.log, rules);
  engine.poll();

  const std::uint64_t walks_before = rig.ns.full_walks();
  const PurgeReport report = engine.sweep(11 * sim::kDay);
  EXPECT_EQ(rig.ns.full_walks(), walks_before);  // zero namespace walks
  EXPECT_EQ(report.purged, 1u);
  EXPECT_EQ(report.freed, 4_MiB);
  EXPECT_TRUE(report.has_min_age());
  EXPECT_GE(report.min_purged_age_s, 7.0 * 86400.0);
  EXPECT_FALSE(rig.ns.exists(old_file));
  EXPECT_TRUE(rig.ns.exists(young));

  // The engine's own unlink comes back as a record; the next poll must
  // treat it as a harmless echo.
  rig.log.commit(rig.log.last_txid());
  const ConsumeResult echo = engine.poll();
  EXPECT_FALSE(echo.cursor_ahead);
  EXPECT_FALSE(echo.gap);
}

TEST(PurgeEngine, AnyTouchRefreshesTheAgeIndex) {
  PurgeRig rig;
  Rng rng(23);
  const FileId touched = rig.ns.create_file(0, 4_MiB, 0, rng);
  const FileId resized = rig.ns.create_file(0, 4_MiB, 0, rng);
  const FileId moved = rig.ns.create_file(0, 4_MiB, 0, rng);
  const FileId idle = rig.ns.create_file(0, 4_MiB, 0, rng);
  rig.ns.touch_file(touched, 9 * sim::kDay);
  rig.ns.resize_file(resized, 6_MiB, 9 * sim::kDay);
  rig.ns.set_project(moved, 1, 9 * sim::kDay);
  rig.log.commit(rig.log.last_txid());

  PurgeRules rules;
  rules.classes.push_back(PurgeClass{/*window_days=*/7.0});
  PurgeEngine engine(rig.ns, rig.log, rules);
  engine.poll();
  const PurgeReport report = engine.sweep(12 * sim::kDay);
  EXPECT_EQ(report.purged, 1u);
  EXPECT_FALSE(rig.ns.exists(idle));
  EXPECT_TRUE(rig.ns.exists(touched));
  EXPECT_TRUE(rig.ns.exists(resized));
  EXPECT_TRUE(rig.ns.exists(moved));
}

TEST(PurgeEngine, PolicyClassesScopeBySizeAndProject) {
  PurgeRig rig;
  Rng rng(29);
  const FileId small_scratch = rig.ns.create_file(0, 1_MiB, 0, rng);
  const FileId big_scratch = rig.ns.create_file(0, 64_MiB, 0, rng);
  const FileId big_prod = rig.ns.create_file(1, 64_MiB, 0, rng);
  rig.log.commit(rig.log.last_txid());

  // One class: project 0 files of at least 32 MiB, idle 7 days.
  PurgeRules rules;
  rules.classes.push_back(PurgeClass{7.0, 32_MiB, 0});
  PurgeEngine engine(rig.ns, rig.log, rules);
  engine.poll();
  const PurgeReport report = engine.sweep(10 * sim::kDay);
  EXPECT_EQ(report.purged, 1u);
  EXPECT_TRUE(rig.ns.exists(small_scratch));
  EXPECT_FALSE(rig.ns.exists(big_scratch));
  EXPECT_TRUE(rig.ns.exists(big_prod));
}

TEST(PurgeEngine, ExemptProjectSurvivesEveryClass) {
  PurgeRig rig;
  Rng rng(31);
  const FileId exempt = rig.ns.create_file(4, 4_MiB, 0, rng);
  const FileId doomed = rig.ns.create_file(0, 4_MiB, 0, rng);
  rig.log.commit(rig.log.last_txid());

  PurgeRules rules;
  rules.classes.push_back(PurgeClass{7.0});
  rules.exempt_project = 4;
  PurgeEngine engine(rig.ns, rig.log, rules);
  engine.poll();
  const PurgeReport report = engine.sweep(10 * sim::kDay);
  EXPECT_EQ(report.purged, 1u);
  EXPECT_TRUE(rig.ns.exists(exempt));
  EXPECT_FALSE(rig.ns.exists(doomed));
}

TEST(PurgeEngine, NothingPurgedReportsNoMinimumAge) {
  PurgeRig rig;
  Rng rng(37);
  rig.ns.create_file(0, 4_MiB, 0, rng);
  rig.log.commit(rig.log.last_txid());

  PurgeRules rules;
  rules.classes.push_back(PurgeClass{/*window_days=*/365.0});
  PurgeEngine engine(rig.ns, rig.log, rules);
  engine.poll();
  const PurgeReport report = engine.sweep(2 * sim::kDay);
  EXPECT_EQ(report.purged, 0u);
  EXPECT_FALSE(report.has_min_age());
  EXPECT_TRUE(std::isinf(report.min_purged_age_s));
  const std::string json = purge_report_json(report);
  EXPECT_NE(json.find("\"min_purged_age_s\":null"), std::string::npos) << json;
  EXPECT_EQ(json.find("inf"), std::string::npos) << json;
}

TEST(PurgeEngine, ReportJsonCarriesFiniteAgeWhenPurging) {
  PurgeRig rig;
  Rng rng(41);
  rig.ns.create_file(0, 4_MiB, 0, rng);
  rig.log.commit(rig.log.last_txid());
  PurgeRules rules;
  rules.classes.push_back(PurgeClass{1.0});
  PurgeEngine engine(rig.ns, rig.log, rules);
  engine.poll();
  const PurgeReport report = engine.sweep(3 * sim::kDay);
  ASSERT_EQ(report.purged, 1u);
  ASSERT_TRUE(report.has_min_age());
  const std::string json = purge_report_json(report);
  EXPECT_EQ(json.find("null"), std::string::npos) << json;
  EXPECT_NE(json.find("\"min_purged_age_s\":"), std::string::npos) << json;
}

TEST(PurgeEngine, RulesFromPolicyPreserveWindowAndExemption) {
  PurgePolicy policy;
  policy.window_days = 3.5;
  policy.exempt_project = 9;
  const PurgeRules rules = rules_from_policy(policy);
  ASSERT_EQ(rules.classes.size(), 1u);
  EXPECT_DOUBLE_EQ(rules.classes[0].window_days, 3.5);
  EXPECT_EQ(rules.classes[0].min_size, 0u);
  EXPECT_EQ(rules.exempt_project, 9u);
}

}  // namespace
