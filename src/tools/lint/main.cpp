// spiderlint CLI — determinism & unit-safety static analysis for spiderpfs.
//
// Usage: spiderlint [options] <path>...
//   --format=text|json|sarif  output format (default text)
//   --fix-hints          include fix-it hints and a per-rule digest (text)
//   --rules=L1,L3        run only the listed rules (default: all)
//   --baseline=FILE      drop findings grandfathered in FILE
//                        (RULE :: file :: message :: reason, line-number
//                        independent); stale entries are warned to stderr
//   --write-baseline     print the run's findings in baseline format and
//                        exit (reasons left as 'justify-me' for editing)
//   --prune-baseline     rewrite the --baseline file in place with the
//                        stale entries removed (comments and live entries
//                        survive verbatim)
//   --stale=warn|error   what a stale baseline entry does to the exit code
//                        (default warn; CI runs error so fixed findings
//                        must be deleted from the baseline, not hoarded)
//   --stats              print `spiderlint-stats: files=N findings=N
//                        wall_ms=N` to stderr (CI surfaces it in the job
//                        summary)
//   --fix                apply the mechanically safe fixes (L1 container
//                        swaps, L3 unit-alias renames) in place
//   --treat-as=CLASS     force file classification: sim-critical, src,
//                        header, calib (repeatable; for linting fixtures
//                        that live outside src/)
//   --list-rules         print the rule table and exit
//
// Exit codes: 0 clean (after baseline), 1 findings (or stale entries under
// --stale=error), 2 usage or I/O error.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "tools/lint/baseline.hpp"
#include "tools/lint/fix.hpp"
#include "tools/lint/lint.hpp"

namespace {

void print_rule_table() {
  for (const spider::lint::RuleInfo& r : spider::lint::rules()) {
    std::printf("%s %-20s %-7s %s\n    suppress: // spiderlint: %s\n",
                std::string(r.id).c_str(), std::string(r.name).c_str(),
                std::string(to_string(r.severity)).c_str(),
                std::string(r.summary).c_str(),
                std::string(r.suppression).c_str());
  }
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--format=text|json|sarif] [--fix-hints]\n"
               "       [--rules=L1,..] [--baseline=FILE] [--write-baseline]\n"
               "       [--prune-baseline] [--stale=warn|error] [--stats]\n"
               "       [--fix] [--treat-as=sim-critical|src|header|calib]...\n"
               "       [--list-rules] <path>...\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace spider::lint;

  LintOptions opts;
  enum class Format { kText, kJson, kSarif };
  Format format = Format::kText;
  bool fix_hints = false;
  bool write_baseline = false;
  bool prune_baseline = false;
  bool stale_is_error = false;
  bool print_stats = false;
  bool apply_fix = false;
  std::string baseline_path;
  std::vector<std::string> paths;
  FileClass forced;
  bool have_forced = false;

  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--list-rules") {
      print_rule_table();
      return 0;
    } else if (arg == "--fix-hints") {
      fix_hints = true;
    } else if (arg == "--write-baseline") {
      write_baseline = true;
    } else if (arg == "--fix") {
      apply_fix = true;
    } else if (arg == "--prune-baseline") {
      prune_baseline = true;
    } else if (arg == "--stats") {
      print_stats = true;
    } else if (arg.starts_with("--stale=")) {
      const std::string_view mode = arg.substr(8);
      if (mode == "error") {
        stale_is_error = true;
      } else if (mode == "warn") {
        stale_is_error = false;
      } else {
        std::fprintf(stderr, "spiderlint: unknown stale mode '%.*s'\n",
                     static_cast<int>(mode.size()), mode.data());
        return usage(argv[0]);
      }
    } else if (arg.starts_with("--baseline=")) {
      baseline_path = std::string(arg.substr(11));
    } else if (arg.starts_with("--format=")) {
      const std::string_view fmt = arg.substr(9);
      if (fmt == "json") {
        format = Format::kJson;
      } else if (fmt == "sarif") {
        format = Format::kSarif;
      } else if (fmt == "text") {
        format = Format::kText;
      } else {
        std::fprintf(stderr, "spiderlint: unknown format '%.*s'\n",
                     static_cast<int>(fmt.size()), fmt.data());
        return usage(argv[0]);
      }
    } else if (arg.starts_with("--rules=")) {
      opts.rules = RuleSet::none();
      std::string_view list = arg.substr(8);
      while (!list.empty()) {
        const std::size_t comma = list.find(',');
        const std::string_view id = list.substr(0, comma);
        if (id == "L1") {
          opts.rules.l1 = true;
        } else if (id == "L2") {
          opts.rules.l2 = true;
        } else if (id == "L3") {
          opts.rules.l3 = true;
        } else if (id == "L4") {
          opts.rules.l4 = true;
        } else if (id == "L5") {
          opts.rules.l5 = true;
        } else if (id == "L6") {
          opts.rules.l6 = true;
        } else if (id == "L7") {
          opts.rules.l7 = true;
        } else if (id == "L8") {
          opts.rules.l8 = true;
        } else if (id == "L9") {
          opts.rules.l9 = true;
        } else if (id == "L10") {
          opts.rules.l10 = true;
        } else if (id == "L11") {
          opts.rules.l11 = true;
        } else if (id == "L12") {
          opts.rules.l12 = true;
        } else {
          std::fprintf(stderr, "spiderlint: unknown rule '%.*s'\n",
                       static_cast<int>(id.size()), id.data());
          return usage(argv[0]);
        }
        if (comma == std::string_view::npos) break;
        list.remove_prefix(comma + 1);
      }
    } else if (arg.starts_with("--treat-as=")) {
      const std::string_view cls = arg.substr(11);
      if (cls == "sim-critical") {
        forced.sim_critical = true;
        forced.in_src = true;
      } else if (cls == "src") {
        forced.in_src = true;
      } else if (cls == "header") {
        forced.in_src = true;
        forced.is_header = true;
      } else if (cls == "calib") {
        forced.in_src = true;
        forced.calib_scope = true;
      } else {
        std::fprintf(stderr, "spiderlint: unknown class '%.*s'\n",
                     static_cast<int>(cls.size()), cls.data());
        return usage(argv[0]);
      }
      have_forced = true;
    } else if (arg.starts_with("--")) {
      std::fprintf(stderr, "spiderlint: unknown option '%s'\n", argv[i]);
      return usage(argv[0]);
    } else {
      paths.emplace_back(arg);
    }
  }
  if (paths.empty()) return usage(argv[0]);
  if (prune_baseline && baseline_path.empty()) {
    std::fprintf(stderr, "spiderlint: --prune-baseline needs --baseline=\n");
    return usage(argv[0]);
  }
  if (have_forced) opts.forced_class = forced;

  // Wall-clock for the stats line only — findings never depend on it.
  // spiderlint-file: nondet-ok — lint runtime telemetry, not simulation
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::string> errors;
  LintReport report = lint_paths(paths, opts, errors);
  const auto t1 = std::chrono::steady_clock::now();

  std::size_t stale_count = 0;
  if (!baseline_path.empty()) {
    std::ifstream in(baseline_path, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "spiderlint: cannot read baseline '%s'\n",
                   baseline_path.c_str());
      return 2;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::vector<BaselineEntry> entries =
        parse_baseline(buf.str(), errors);
    const std::vector<BaselineEntry> stale = apply_baseline(report, entries);
    stale_count = stale.size();
    if (prune_baseline) {
      std::size_t pruned = 0;
      const std::string rewritten =
          prune_baseline_text(buf.str(), stale, pruned);
      std::ofstream outf(baseline_path,
                         std::ios::binary | std::ios::trunc);
      if (!outf || !(outf << rewritten)) {
        std::fprintf(stderr, "spiderlint: cannot rewrite baseline '%s'\n",
                     baseline_path.c_str());
        return 2;
      }
      std::fprintf(stderr,
                   "spiderlint: pruned %zu stale baseline entr%s from %s\n",
                   pruned, pruned == 1 ? "y" : "ies", baseline_path.c_str());
      stale_count = 0;  // pruned away: nothing left to warn or fail on
    } else {
      for (const BaselineEntry& e : stale) {
        std::fprintf(stderr,
                     "spiderlint: %s baseline entry (fixed? delete it, or "
                     "run --prune-baseline): %s :: %s :: %s\n",
                     stale_is_error ? "STALE" : "stale", e.rule.c_str(),
                     e.file.c_str(), e.message.c_str());
      }
    }
  }

  for (const std::string& err : errors) {
    std::fprintf(stderr, "spiderlint: %s\n", err.c_str());
  }

  if (write_baseline) {
    std::fputs(render_baseline(report).c_str(), stdout);
    return errors.empty() ? 0 : 2;
  }

  if (apply_fix) {
    const FixResult fixed = apply_fixes(report, errors);
    std::fprintf(stderr, "spiderlint: applied %zu fix%s in %zu file%s\n",
                 fixed.fixes_applied, fixed.fixes_applied == 1 ? "" : "es",
                 fixed.files_changed.size(),
                 fixed.files_changed.size() == 1 ? "" : "s");
  }

  std::string rendered;
  switch (format) {
    case Format::kJson: rendered = render_json(report); break;
    case Format::kSarif: rendered = render_sarif(report); break;
    case Format::kText: rendered = render_text(report, fix_hints); break;
  }
  std::fputs(rendered.c_str(), stdout);

  if (print_stats) {
    const auto wall_ms =
        std::chrono::duration_cast<std::chrono::milliseconds>(t1 - t0);
    std::fprintf(stderr, "spiderlint-stats: files=%zu findings=%zu wall_ms=%lld\n",
                 report.files_scanned, report.findings.size(),
                 static_cast<long long>(wall_ms.count()));
  }

  if (!errors.empty()) return 2;
  if (!report.clean()) return 1;
  if (stale_is_error && stale_count != 0) return 1;
  return 0;
}
