// Lustre journaling model.
//
// Section IV-D: OLCF direct-funded "high-performance Lustre journaling"
// because stock ldiskfs journal commits serialized small synchronous writes
// on the data spindles and cost double-digit write bandwidth. The model
// expresses journaling as a write-efficiency factor plus a commit latency,
// with three modes: synchronous on-data-disk journal (worst), asynchronous
// commit (stock tuning), and the OLCF hardware/async journaling work (best).
#pragma once

namespace spider::fs {

enum class JournalMode {
  /// Journal on the data disks, synchronous transactions.
  kSyncOnData,
  /// Asynchronous journal commit (batched transactions).
  kAsync,
  /// OLCF-funded high-performance journaling (dedicated device + async).
  kHighPerformance,
};

struct JournalModel {
  JournalMode mode = JournalMode::kHighPerformance;

  /// Multiplier on OST write bandwidth from journal traffic.
  double write_efficiency() const;
  /// Added latency per write RPC batch, seconds.
  double commit_latency_s() const;
};

}  // namespace spider::fs
