# Empty dependencies file for bench_c7_libpio.
# This may be replaced when dependencies are built.
