#include "sim/simulator.hpp"

#include <cassert>
#include <sstream>
#include <stdexcept>

namespace spider::sim {

const char* source_basename(const char* path) {
  const char* name = path;
  for (const char* p = path; *p; ++p) {
    if (*p == '/' || *p == '\\') name = p + 1;
  }
  return name;
}

std::uint64_t site_hash(const std::source_location& loc) {
  // FNV-1a over the file basename, then fold in the line. Hashing contents
  // (not the pointer) makes the value reproducible across runs and builds;
  // dropping the directory prefix makes it reproducible across *checkouts*,
  // so replay hashes can be compared between machines and CI.
  const char* name = source_basename(loc.file_name());
  std::uint64_t h = 1469598103934665603ull;
  for (const char* p = name; *p; ++p) {
    h ^= static_cast<unsigned char>(*p);
    h *= 1099511628211ull;
  }
  h ^= loc.line();
  h *= 1099511628211ull;
  return h;
}

EventId Simulator::schedule_at(SimTime when, EventFn fn, std::source_location loc) {
  if (when < now_) {
    // A past-time schedule is a causality violation; in a sharded run it
    // usually means a cross-shard message beat the lookahead contract. Name
    // everything a debugger needs: both times, the gap, and the call site.
    std::ostringstream msg;
    msg << "schedule_at: time in the past (when=" << when << "ns, now=" << now_
        << "ns, behind by " << (now_ - when) << "ns; scheduled from "
        << source_basename(loc.file_name()) << ":" << loc.line() << ")";
    throw std::invalid_argument(msg.str());
  }
  return queue_.schedule(when, std::move(fn), site_hash(loc));
}

EventId Simulator::schedule_in(SimTime dt, EventFn fn, std::source_location loc) {
  if (dt < 0) {
    std::ostringstream msg;
    msg << "schedule_in: negative delay (dt=" << dt << "ns, now=" << now_
        << "ns; scheduled from " << source_basename(loc.file_name()) << ":"
        << loc.line() << ")";
    throw std::invalid_argument(msg.str());
  }
  return queue_.schedule(now_ + dt, std::move(fn), site_hash(loc));
}

EventId Simulator::schedule_sited(SimTime when, EventFn fn, std::uint64_t site) {
  if (when < now_) {
    std::ostringstream msg;
    msg << "schedule_sited: time in the past (when=" << when
        << "ns, now=" << now_ << "ns, site=0x" << std::hex << site << ")";
    throw std::invalid_argument(msg.str());
  }
  return queue_.schedule(when, std::move(fn), site);
}

void Simulator::dispatch(EventQueue::Fired fired) {
  assert(fired.when >= now_);
  now_ = fired.when;
  if (observer_) observer_(fired.when, fired.id, fired.site);
  fired.fn();
  ++executed_;
}

std::uint64_t Simulator::run(SimTime until) {
  std::uint64_t ran = 0;
  while (!queue_.empty() && queue_.next_time() <= until) {
    dispatch(queue_.pop());
    ++ran;
  }
  // Uniform clock-advance: a finite horizon always lands the clock exactly
  // on `until`, whether the run was cut off or the queue drained. The old
  // drained-queue early return skipped the advance, so an idle simulator
  // never reached a barrier time — fatal for epoch-synchronized sharding
  // (sim/sharded_sim.hpp), where every shard must arrive at the same epoch
  // boundary before cross-shard mailboxes drain.
  if (until != std::numeric_limits<SimTime>::max() && now_ < until) now_ = until;
  return ran;
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  dispatch(queue_.pop());
  return true;
}

}  // namespace spider::sim
