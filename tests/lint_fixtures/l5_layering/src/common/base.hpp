// L5 fixture: bottom layer, includes nothing.
#pragma once

namespace fixture {
using Base = int;
}  // namespace fixture
