// Non-owning, trivially copyable callable reference.
//
// The simulator's per-event observer used to be a std::function, which
// double-indirects (wrapper call -> stored target) and is 32 bytes of state
// the dispatch loop drags through cache on every event. FunctionRef is two
// words — a context pointer and a trampoline — and one indirect call.
//
// Lifetime contract: FunctionRef does NOT own its target. It may only be
// constructed from an lvalue callable, and the referent must outlive every
// invocation (construction from temporaries is deleted — a lambda passed
// inline would dangle at the end of the full expression). Holders such as
// Simulator document the required lifetime at their set_* call sites.
#pragma once

#include <cstddef>
#include <type_traits>
#include <utility>

namespace spider {

template <typename Signature>
class FunctionRef;

template <typename R, typename... Args>
class FunctionRef<R(Args...)> {
 public:
  FunctionRef() noexcept = default;
  FunctionRef(std::nullptr_t) noexcept {}

  /// Bind to a persistent callable. Lvalues only: the referent must outlive
  /// this reference.
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, FunctionRef> &&
                std::is_invocable_r_v<R, F&, Args...>>>
  FunctionRef(F& target) noexcept
      : context_(static_cast<void*>(std::addressof(target))),
        trampoline_([](void* ctx, Args... args) -> R {
          return (*static_cast<F*>(ctx))(std::forward<Args>(args)...);
        }) {}

  /// Temporaries would dangle immediately; store the callable first.
  template <typename F,
            typename = std::enable_if_t<
                !std::is_lvalue_reference_v<F> &&
                !std::is_same_v<std::remove_cvref_t<F>, FunctionRef>>>
  FunctionRef(F&& target) = delete;

  explicit operator bool() const noexcept { return trampoline_ != nullptr; }

  R operator()(Args... args) const {
    return trampoline_(context_, std::forward<Args>(args)...);
  }

 private:
  void* context_ = nullptr;
  R (*trampoline_)(void*, Args...) = nullptr;
};

}  // namespace spider
