// Fine-Grained Routing (FGR) — Lesson 14.
//
// "At the most basic level, FGR uses multiple Lustre LNET Network
// Interfaces (NIs) to expose physical or topological locality. Each router
// has an InfiniBand-side NI that corresponds to the leaf switch it is
// plugged into. Clients choose to use a topologically close router that
// uses the NI of the desired destination. Clients have a Gemini-side NI
// that corresponds to a topological 'zone' in the torus. The Lustre servers
// will choose a router connected to the same InfiniBand leaf switch that is
// in the destination topological zone."
//
// FgrPolicy implements exactly that selection, plus two baselines (blind
// round-robin and locality-only) the congestion bench compares against.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "net/placement.hpp"
#include "net/torus.hpp"

namespace spider::net {

class FgrPolicy {
 public:
  FgrPolicy(const Torus3D& torus, std::vector<PlacedRouter> routers,
            std::size_t leaf_switches);

  std::size_t num_routers() const { return routers_.size(); }
  const PlacedRouter& router(std::size_t idx) const { return routers_.at(idx); }
  const std::vector<std::size_t>& routers_for_leaf(std::size_t leaf) const;

  /// FGR selection: among routers uplinked to the destination leaf switch,
  /// the one topologically closest to the client. Returns router index.
  std::size_t select_fgr(int client_node, std::size_t dest_leaf) const;

  /// Baseline: blind round-robin over all routers (ignores both locality
  /// and leaf affinity; traffic to the wrong leaf crosses the IB core).
  std::size_t select_round_robin(std::uint64_t counter) const;

  /// Baseline: nearest router to the client regardless of leaf (good torus
  /// locality, but server-side traffic crosses the IB core when the leaf
  /// doesn't match).
  std::size_t select_nearest(int client_node) const;

 private:
  const Torus3D& torus_;
  std::vector<PlacedRouter> routers_;
  std::vector<std::vector<std::size_t>> by_leaf_;
};

}  // namespace spider::net
