
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_c5_slow_disk_culling.cpp" "bench/CMakeFiles/bench_c5_slow_disk_culling.dir/bench_c5_slow_disk_culling.cpp.o" "gcc" "bench/CMakeFiles/bench_c5_slow_disk_culling.dir/bench_c5_slow_disk_culling.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/spider_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/spider_tools.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/spider_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/spider_fs.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/spider_block.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/spider_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/spider_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/spider_infra.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/spider_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
