#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "block/raid.hpp"
#include "common/rng.hpp"
#include "fs/filesystem.hpp"
#include "fs/fs_namespace.hpp"
#include "fs/journal.hpp"
#include "fs/mds.hpp"
#include "fs/obdsurvey.hpp"
#include "fs/oss.hpp"
#include "fs/ost.hpp"
#include "fs/purge.hpp"
#include "fs/recovery.hpp"
#include "fs/striping.hpp"
#include "sim/oracle.hpp"
#include "tools/faultcli/campaign.hpp"

namespace spider::fs {
namespace {

std::vector<block::Disk> healthy_members(std::size_t n = 10) {
  std::vector<block::Disk> out;
  for (std::size_t i = 0; i < n; ++i) {
    out.emplace_back(block::DiskParams{}, static_cast<std::uint32_t>(i), 1.0,
                     1e-4);
  }
  return out;
}

/// A small self-owning OST fleet for namespace tests.
struct Fleet {
  std::vector<std::unique_ptr<block::Raid6Group>> groups;
  std::vector<std::unique_ptr<Ost>> osts;
  std::vector<Ost*> ptrs;

  explicit Fleet(std::size_t n, const OstParams& params = {}) {
    for (std::size_t i = 0; i < n; ++i) {
      groups.push_back(std::make_unique<block::Raid6Group>(
          block::RaidParams{}, healthy_members()));
      osts.push_back(std::make_unique<Ost>(static_cast<std::uint32_t>(i),
                                           groups.back().get(), params));
      ptrs.push_back(osts.back().get());
    }
  }
};

// --- journal ------------------------------------------------------------------

TEST(Journal, ModesOrderedByEfficiency) {
  JournalModel sync{JournalMode::kSyncOnData};
  JournalModel async{JournalMode::kAsync};
  JournalModel hp{JournalMode::kHighPerformance};
  EXPECT_LT(sync.write_efficiency(), async.write_efficiency());
  EXPECT_LT(async.write_efficiency(), hp.write_efficiency());
  EXPECT_GT(sync.commit_latency_s(), hp.commit_latency_s());
}

// --- OST ----------------------------------------------------------------------

TEST(Ost, AllocateReleaseTracksUsage) {
  Fleet fleet(1);
  Ost& o = *fleet.ptrs[0];
  EXPECT_TRUE(o.allocate(1_GiB));
  EXPECT_EQ(o.used(), 1_GiB);
  EXPECT_EQ(o.object_count(), 1u);
  o.release(1_GiB);
  EXPECT_EQ(o.used(), 0u);
  EXPECT_FALSE(o.allocate(o.capacity() + 1));
}

TEST(Ost, FullnessFactorKnees) {
  Fleet fleet(1);
  Ost& o = *fleet.ptrs[0];
  auto at = [&](double f) {
    o.set_used(static_cast<Bytes>(static_cast<double>(o.capacity()) * f));
    return o.fullness_factor();
  };
  EXPECT_DOUBLE_EQ(at(0.0), 1.0);
  EXPECT_DOUBLE_EQ(at(0.49), 1.0);      // below the 50% knee: no loss
  EXPECT_LT(at(0.6), 1.0);              // gentle decline
  EXPECT_GT(at(0.6), 0.9);
  EXPECT_NEAR(at(0.7), 0.9, 1e-9);      // the paper's severe-degradation knee
  EXPECT_LT(at(0.85), at(0.7) - 0.05);  // steep beyond 70%
  EXPECT_GE(at(1.0), OstParams{}.factor_floor - 1e-9);
}

TEST(Ost, BandwidthIncludesFsOverheads) {
  Fleet fleet(1);
  Ost& o = *fleet.ptrs[0];
  const double block_bw = o.group().bandwidth(block::IoMode::kSequential,
                                              block::IoDir::kWrite, 1_MiB);
  const double fs_bw =
      o.bandwidth(block::IoMode::kSequential, block::IoDir::kWrite, 1_MiB);
  EXPECT_LT(fs_bw, block_bw);
  EXPECT_GT(fs_bw, 0.8 * block_bw);  // high-performance journaling: small tax
}

TEST(Ost, RejectsNullGroup) {
  EXPECT_THROW(Ost(0, nullptr), std::invalid_argument);
}

// --- OSS ----------------------------------------------------------------------

TEST(Oss, DeliveredBwCappedByNode) {
  Fleet fleet(8);
  Oss oss(0, OssParams{}, 0);
  for (Ost* o : fleet.ptrs) oss.attach(o);
  const double delivered =
      oss.delivered_bw(block::IoMode::kSequential, block::IoDir::kWrite);
  EXPECT_NEAR(delivered, oss.node_bw(), 1.0);  // 8 OSTs exceed one node
  EXPECT_DOUBLE_EQ(oss.node_bw(),
                   std::min(OssParams{}.net_bw, OssParams{}.cpu_bw));
}

TEST(Oss, FewOstsAreOstBound) {
  Fleet fleet(1);
  Oss oss(0, OssParams{}, 0);
  oss.attach(fleet.ptrs[0]);
  EXPECT_LT(oss.delivered_bw(block::IoMode::kSequential, block::IoDir::kWrite),
            oss.node_bw());
}

// --- striping allocator ---------------------------------------------------------

TEST(Allocator, AllocatesDistinctOsts) {
  Fleet fleet(8);
  OstAllocator alloc(fleet.ptrs, AllocatorMode::kRoundRobin);
  Rng rng(1);
  const auto chosen = alloc.allocate(4, 4_GiB, rng);
  ASSERT_EQ(chosen.size(), 4u);
  std::set<std::uint32_t> unique(chosen.begin(), chosen.end());
  EXPECT_EQ(unique.size(), 4u);
}

TEST(Allocator, RoundRobinCoversAllOsts) {
  Fleet fleet(4);
  OstAllocator alloc(fleet.ptrs, AllocatorMode::kRoundRobin);
  Rng rng(2);
  for (int i = 0; i < 4; ++i) alloc.allocate(1, 1_GiB, rng);
  for (Ost* o : fleet.ptrs) EXPECT_EQ(o->used(), 1_GiB);
}

TEST(Allocator, QosAvoidsFullOsts) {
  Fleet fleet(4);
  // Fill OST 0 to 90%.
  fleet.ptrs[0]->set_used(
      static_cast<Bytes>(static_cast<double>(fleet.ptrs[0]->capacity()) * 0.9));
  OstAllocator alloc(fleet.ptrs, AllocatorMode::kQosWeighted);
  Rng rng(3);
  for (int i = 0; i < 30; ++i) alloc.allocate(1, 1_GiB, rng);
  // The full OST received (almost) nothing beyond its initial fill.
  EXPECT_LT(fleet.ptrs[0]->object_count(), 3u);
}

TEST(Allocator, ReleaseRestoresSpace) {
  Fleet fleet(2);
  OstAllocator alloc(fleet.ptrs, AllocatorMode::kRoundRobin);
  Rng rng(4);
  const auto chosen = alloc.allocate(2, 2_GiB, rng);
  alloc.release(chosen, 2_GiB);
  EXPECT_EQ(fleet.ptrs[0]->used(), 0u);
  EXPECT_EQ(fleet.ptrs[1]->used(), 0u);
}

TEST(Allocator, FailsCleanlyWhenFull) {
  Fleet fleet(2);
  for (Ost* o : fleet.ptrs) o->set_used(o->capacity());
  OstAllocator alloc(fleet.ptrs, AllocatorMode::kRoundRobin);
  Rng rng(5);
  EXPECT_TRUE(alloc.allocate(1, 1_GiB, rng).empty());
  // And the failure didn't leak reservations.
  for (Ost* o : fleet.ptrs) EXPECT_EQ(o->used(), o->capacity());
}

// --- MDS -------------------------------------------------------------------------

TEST(Mds, DneScalesCapacity) {
  MdsParams single;
  MdsParams dne = single;
  dne.dne_shards = 4;
  EXPECT_NEAR(Mds(dne).capacity_ops() / Mds(single).capacity_ops(),
              1.0 + 3.0 * single.dne_efficiency, 1e-9);
}

TEST(Mds, StatCostGrowsWithStripeCount) {
  Mds mds;
  // The paper's best practice: stat on a wide-striped file touches every
  // OST, so small files should use stripe count 1.
  EXPECT_GT(mds.op_cost(MetaOp::kStat, 8), 2.0 * mds.op_cost(MetaOp::kStat, 1));
}

TEST(Mds, LatencyExplodesNearSaturation) {
  Mds mds;
  const double cap = mds.capacity_ops();
  EXPECT_LT(mds.mean_latency_s(0.1 * cap), mds.mean_latency_s(0.9 * cap));
  EXPECT_GT(mds.mean_latency_s(0.999 * cap), 100.0 * mds.mean_latency_s(0.1 * cap));
  EXPECT_DOUBLE_EQ(mds.throughput(2.0 * cap), cap);
}

TEST(Mds, AccountingAccumulates) {
  Mds mds;
  mds.account(MetaOp::kCreate);
  mds.account(MetaOp::kStat, 4);
  EXPECT_EQ(mds.ops_seen(), 2u);
  EXPECT_GT(mds.accounted_load(), 0.0);
  mds.reset_accounting();
  EXPECT_EQ(mds.ops_seen(), 0u);
}

// --- namespace --------------------------------------------------------------------

struct NamespaceFixture : ::testing::Test {
  Fleet fleet{8};
  FsNamespace ns{"test-ns", fleet.ptrs, MdsParams{},
                 AllocatorMode::kRoundRobin, StripePolicy{2, 1_MiB}};
  Rng rng{7};
};

TEST_F(NamespaceFixture, CreateStatReadUnlinkLifecycle) {
  const FileId id = ns.create_file(/*project=*/1, 4_GiB, sim::kHour, rng);
  ASSERT_NE(id, kNoFile);
  EXPECT_TRUE(ns.exists(id));
  EXPECT_EQ(ns.live_files(), 1u);
  EXPECT_EQ(ns.file(id).size, 4_GiB);
  EXPECT_EQ(ns.stripes_of(ns.file(id)).size(), 2u);
  EXPECT_EQ(ns.used(), 4_GiB);

  ns.read_file(id, 2 * sim::kHour);
  EXPECT_EQ(ns.file(id).atime, 2 * sim::kHour);
  EXPECT_TRUE(ns.unlink(id, 3 * sim::kHour));
  EXPECT_FALSE(ns.exists(id));
  EXPECT_EQ(ns.used(), 0u);
  EXPECT_FALSE(ns.unlink(id, 3 * sim::kHour));  // double unlink
}

TEST_F(NamespaceFixture, StaleIdsNeverAliasAfterSlotReuse) {
  const FileId a = ns.create_file(1, 1_GiB, 0, rng);
  ns.unlink(a, 0);
  const FileId b = ns.create_file(1, 1_GiB, 0, rng);
  EXPECT_NE(a, b);
  EXPECT_FALSE(ns.exists(a));
  EXPECT_TRUE(ns.exists(b));
}

TEST_F(NamespaceFixture, PerProjectUsage) {
  ns.create_file(1, 1_GiB, 0, rng);
  ns.create_file(1, 1_GiB, 0, rng);
  ns.create_file(2, 2_GiB, 0, rng);
  const auto usage = ns.usage_by_project();
  EXPECT_EQ(usage.at(1), 2_GiB);
  EXPECT_EQ(usage.at(2), 2_GiB);
}

TEST_F(NamespaceFixture, MetadataOpsAccountedOnMds) {
  const double before = ns.mds().accounted_load();
  const FileId id = ns.create_file(1, 1_GiB, 0, rng);
  ns.stat_file(id);
  ns.read_file(id, 0);
  ns.touch_file(id, 0);
  EXPECT_GT(ns.mds().accounted_load(), before + 3.0);
}

TEST_F(NamespaceFixture, StripePolicyOverride) {
  const FileId id =
      ns.create_file(1, 1_GiB, 0, rng, StripePolicy{1, 1_MiB});
  EXPECT_EQ(ns.stripes_of(ns.file(id)).size(), 1u);
}

TEST_F(NamespaceFixture, CreateFailsWhenNoSpace) {
  for (Ost* o : fleet.ptrs) o->set_used(o->capacity());
  EXPECT_EQ(ns.create_file(1, 1_GiB, 0, rng), kNoFile);
}

TEST_F(NamespaceFixture, ForEachFileVisitsLiveOnly) {
  const FileId a = ns.create_file(1, 1_GiB, 0, rng);
  ns.create_file(1, 1_GiB, 0, rng);
  ns.unlink(a, 0);
  std::size_t count = 0;
  ns.for_each_file([&](const FileRecord&) { ++count; });
  EXPECT_EQ(count, 1u);
}

// --- filesystem ---------------------------------------------------------------------

TEST(FileSystem, RoutesProjectsToAssignedNamespaces) {
  Fleet fleet_a(4), fleet_b(4);
  FileSystem fs("spider");
  fs.add_namespace(std::make_unique<FsNamespace>("ns0", fleet_a.ptrs));
  fs.add_namespace(std::make_unique<FsNamespace>("ns1", fleet_b.ptrs));
  fs.assign_project(7, 1);
  Rng rng(8);
  fs.create_file(7, 1_GiB, 0, rng);
  EXPECT_EQ(fs.ns(1).live_files(), 1u);
  EXPECT_EQ(fs.ns(0).live_files(), 0u);
  EXPECT_EQ(fs.live_files(), 1u);
  EXPECT_NE(fs.find("ns1"), nullptr);
  EXPECT_EQ(fs.find("nope"), nullptr);
  EXPECT_THROW(fs.assign_project(1, 5), std::out_of_range);
}

TEST(FileSystem, UnassignedProjectsHashAcrossNamespaces) {
  Fleet fleet_a(2), fleet_b(2);
  FileSystem fs("spider");
  fs.add_namespace(std::make_unique<FsNamespace>("ns0", fleet_a.ptrs));
  fs.add_namespace(std::make_unique<FsNamespace>("ns1", fleet_b.ptrs));
  EXPECT_EQ(fs.namespace_of(4), 0u);
  EXPECT_EQ(fs.namespace_of(5), 1u);
}

// --- purge ------------------------------------------------------------------------

TEST(Purge, DeletesOnlyFilesOutsideWindow) {
  Fleet fleet(4);
  FsNamespace ns("scratch", fleet.ptrs);
  Rng rng(9);
  const FileId old_file = ns.create_file(1, 1_GiB, 0, rng);
  const FileId recent = ns.create_file(1, 1_GiB, 20 * sim::kDay, rng);
  const FileId touched = ns.create_file(1, 1_GiB, 0, rng);
  ns.read_file(touched, 19 * sim::kDay);  // read access protects it

  const auto report = run_purge(ns, 21 * sim::kDay, PurgePolicy{14.0});
  EXPECT_EQ(report.purged, 1u);
  EXPECT_EQ(report.freed, 1_GiB);
  EXPECT_FALSE(ns.exists(old_file));
  EXPECT_TRUE(ns.exists(recent));
  EXPECT_TRUE(ns.exists(touched));
  EXPECT_GT(report.mds_ops, 0.0);
}

TEST(Purge, ExemptProjectSurvives) {
  Fleet fleet(2);
  FsNamespace ns("scratch", fleet.ptrs);
  Rng rng(10);
  ns.create_file(42, 1_GiB, 0, rng);
  PurgePolicy policy;
  policy.exempt_project = 42;
  const auto report = run_purge(ns, 30 * sim::kDay, policy);
  EXPECT_EQ(report.purged, 0u);
  EXPECT_EQ(ns.live_files(), 1u);
}

TEST(Purge, KeepsFullnessBoundedOverTime) {
  // 60 simulated days of steady creation with a daily 14-day purge: usage
  // must plateau at ~14 days of production instead of growing.
  Fleet fleet(8);
  FsNamespace ns("scratch", fleet.ptrs);
  Rng rng(11);
  Bytes peak = 0;
  for (int day = 0; day < 60; ++day) {
    const auto now = static_cast<sim::SimTime>(day) * sim::kDay;
    for (int f = 0; f < 20; ++f) ns.create_file(1 + f % 3, 2_GiB, now, rng);
    run_purge(ns, now, PurgePolicy{14.0});
    peak = std::max(peak, ns.used());
  }
  // Steady state: 15 days x 20 files x 2 GiB.
  EXPECT_LE(peak, 15u * 20u * 2_GiB);
  EXPECT_GE(ns.live_files(), 14u * 20u);
}

// Purge edge cases, each cross-checked by the purge-age oracle: whatever a
// sweep does, it must never have deleted a file younger than the window.
void expect_purge_age_clean(const std::vector<PurgeReport>& reports,
                            double window_days, sim::SimTime now) {
  const auto oracle = tools::make_purge_age_oracle(reports, window_days);
  std::vector<sim::OracleViolation> violations;
  oracle->check(now, violations);
  EXPECT_TRUE(violations.empty()) << sim::violations_json(violations);
}

TEST(Purge, EmptyNamespaceSweepIsACleanNoop) {
  Fleet fleet(2);
  FsNamespace ns("scratch", fleet.ptrs);
  const auto report = run_purge(ns, 30 * sim::kDay, PurgePolicy{14.0});
  EXPECT_EQ(report.scanned, 0u);
  EXPECT_EQ(report.purged, 0u);
  EXPECT_EQ(report.freed, 0u);
  // Nothing purged => the youngest-purged age sentinel stays +infinity,
  // which the oracle must treat as vacuously safe.
  EXPECT_TRUE(std::isinf(report.min_purged_age_s));
  expect_purge_age_clean({report}, 14.0, 30 * sim::kDay);
}

TEST(Purge, AllFilesPinnedLeavesNamespaceUntouched) {
  Fleet fleet(2);
  FsNamespace ns("scratch", fleet.ptrs);
  Rng rng(12);
  PurgePolicy policy;
  policy.exempt_project = 42;
  for (int f = 0; f < 5; ++f) ns.create_file(42, 1_GiB, 0, rng);
  const auto report = run_purge(ns, 60 * sim::kDay, policy);
  EXPECT_EQ(report.scanned, 5u);
  EXPECT_EQ(report.purged, 0u);
  EXPECT_EQ(ns.live_files(), 5u);
  EXPECT_TRUE(std::isinf(report.min_purged_age_s));
  expect_purge_age_clean({report}, policy.window_days, 60 * sim::kDay);
}

TEST(Purge, CreateRacingSweepAtPolicyBoundarySurvives) {
  // A file whose last touch lands exactly on the cutoff instant of a
  // concurrently running sweep must survive: eligibility is strictly
  // "older than the window", so the boundary belongs to the file.
  Fleet fleet(2);
  FsNamespace ns("scratch", fleet.ptrs);
  Rng rng(13);
  const PurgePolicy policy{14.0};
  const sim::SimTime now = 30 * sim::kDay;
  const sim::SimTime cutoff = now - 14 * sim::kDay;
  const FileId at_boundary = ns.create_file(1, 1_GiB, cutoff, rng);
  const FileId one_tick_older = ns.create_file(1, 1_GiB, cutoff - 1, rng);

  const auto report = run_purge(ns, now, policy);
  EXPECT_TRUE(ns.exists(at_boundary));
  EXPECT_FALSE(ns.exists(one_tick_older));
  EXPECT_EQ(report.purged, 1u);
  // The one purged file was (just barely) old enough; the oracle agrees.
  EXPECT_GE(report.min_purged_age_s, 14.0 * 24 * 3600);
  expect_purge_age_clean({report}, policy.window_days, now);
}

// --- obdfilter survey -----------------------------------------------------------

TEST(ObdSurvey, ThroughputRampsWithThreads) {
  Fleet fleet(1);
  Rng rng(12);
  const auto rows = run_obdfilter_survey(*fleet.ptrs[0], ObdSurveyConfig{}, rng);
  ASSERT_EQ(rows.size(), 5u);
  EXPECT_LT(rows[0].write_bw, rows[2].write_bw);  // 1 -> 4 threads ramps
  // Saturated region is flat-ish.
  EXPECT_NEAR(rows[3].write_bw, rows[2].write_bw, 0.15 * rows[2].write_bw);
  for (const auto& r : rows) {
    EXPECT_GT(r.read_bw, r.write_bw);  // reads skip parity + journal
    EXPECT_GT(r.rewrite_bw, 0.9 * r.write_bw);
  }
}

TEST(ObdSurvey, OverheadFractionIsSmallButPositive) {
  Fleet fleet(1);
  const double overhead =
      fs_overhead_fraction(*fleet.ptrs[0], block::IoDir::kWrite);
  EXPECT_GT(overhead, 0.02);
  EXPECT_LT(overhead, 0.25);
}

// --- replay_from_cursor exact boundaries ------------------------------------
// The crash/corruption edge cases that used to misaccount silently: a cursor
// at, one past, and far past the tail, a cursor into a truncate_to-lost
// tail, and interior gaps from records_mutable corruption.

namespace {

OpLog make_log(int n) {
  OpLog log;
  for (int i = 0; i < n; ++i) {
    log.append(OpKind::kCreate, 100 + static_cast<std::uint64_t>(i), 0, 1_MiB,
               i);
  }
  return log;
}

}  // namespace

TEST(JournalReplay, CursorAtTailReplaysNothingCleanly) {
  const OpLog log = make_log(5);
  const JournalReplayOutcome out = replay_from_cursor(log, log.last_txid());
  EXPECT_EQ(out.replayed, 0u);
  EXPECT_EQ(out.new_cursor, 5u);
  EXPECT_FALSE(out.cursor_ahead);
  EXPECT_FALSE(out.gap);
}

TEST(JournalReplay, CursorOnePastTailIsAheadNotASilentNoop) {
  const OpLog log = make_log(5);
  const JournalReplayOutcome out =
      replay_from_cursor(log, log.last_txid() + 1);
  EXPECT_TRUE(out.cursor_ahead);
  EXPECT_EQ(out.replayed, 0u);
  // Clamped to the tail so the consumer rebuilds from a real position
  // instead of carrying a txid the next append will reuse.
  EXPECT_EQ(out.new_cursor, log.last_txid());
}

TEST(JournalReplay, CursorIntoTruncateLostTailIsDetected) {
  OpLog log = make_log(8);
  // A consumer saw txid 8, then the crash dropped everything past 4.
  log.truncate_to(4);
  const JournalReplayOutcome out = replay_from_cursor(log, 8);
  EXPECT_TRUE(out.cursor_ahead);
  EXPECT_EQ(out.replayed, 0u);
  EXPECT_EQ(out.new_cursor, 4u);

  // After the clamp, replay from the clamped position is clean — and new
  // appends reusing the lost txids are picked up as ordinary records.
  log.append(OpKind::kUnlink, 100, 0, 1_MiB, 99);
  const JournalReplayOutcome again = replay_from_cursor(log, 4);
  EXPECT_FALSE(again.cursor_ahead);
  EXPECT_FALSE(again.gap);
  EXPECT_EQ(again.replayed, 1u);
  EXPECT_EQ(again.new_cursor, 5u);
}

TEST(JournalReplay, InteriorGapNamesTheFirstMissingTxid) {
  OpLog log = make_log(6);
  auto& recs = log.records_mutable();
  recs.erase(recs.begin() + 2);  // drop txid 3
  const JournalReplayOutcome out = replay_from_cursor(log, 0);
  EXPECT_TRUE(out.gap);
  EXPECT_EQ(out.first_gap_txid, 3u);
  EXPECT_EQ(out.replayed, 5u);  // surviving records still counted
  EXPECT_EQ(out.new_cursor, 6u);
}

TEST(JournalReplay, GapBeforeTheCursorIsOldNews) {
  OpLog log = make_log(6);
  auto& recs = log.records_mutable();
  recs.erase(recs.begin() + 1);  // drop txid 2
  // A consumer already past the hole must not re-diagnose it forever.
  const JournalReplayOutcome out = replay_from_cursor(log, 3);
  EXPECT_FALSE(out.gap);
  EXPECT_EQ(out.replayed, 3u);
  EXPECT_EQ(out.new_cursor, 6u);
}

TEST(JournalReplay, MissingTailBehindLastTxidIsAGap) {
  OpLog log = make_log(5);
  auto& recs = log.records_mutable();
  recs.pop_back();  // last_txid() still says 5, but record 5 is gone
  const JournalReplayOutcome out = replay_from_cursor(log, 0);
  EXPECT_TRUE(out.gap);
  EXPECT_EQ(out.first_gap_txid, 5u);
  EXPECT_EQ(out.replayed, 4u);
}

TEST(JournalReplay, EmptyLogFromZeroIsClean) {
  const OpLog log;
  const JournalReplayOutcome out = replay_from_cursor(log, 0);
  EXPECT_EQ(out.replayed, 0u);
  EXPECT_EQ(out.new_cursor, 0u);
  EXPECT_FALSE(out.cursor_ahead);
  EXPECT_FALSE(out.gap);
}

}  // namespace
}  // namespace spider::fs
