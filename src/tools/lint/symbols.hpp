// spiderlint symbol index: a per-file map of classes, member declarations,
// functions (with body token ranges and access levels), and template heads,
// built from the token stream.
//
// This is a structural parser, not a compiler front end: it tracks
// namespace/class/function nesting by brace balance and recognizes the
// declaration idioms this codebase actually uses. Rules built on it (L6
// lock-discipline, L7 schedule-site flow) act only on precise signals —
// lock annotations, private scheduling calls — so a misparse degrades to a
// missed finding, never to a spurious one.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "tools/lint/token.hpp"

namespace spider::lint {

enum class Access { kPublic, kProtected, kPrivate };

/// A member declaration annotated SPIDER_GUARDED_BY(mutex).
struct GuardedMember {
  std::string cls;    ///< enclosing class/struct name
  std::string name;   ///< member identifier
  std::string mutex;  ///< guard expression (flattened annotation argument)
  std::size_t line = 0;  ///< 0-based declaration line
};

/// A member declaration annotated SPIDER_SHARD_OWNED(owner): state that only
/// the owning shard's events (or single-threaded barrier code) may touch.
struct ShardOwnedMember {
  std::string cls;    ///< enclosing class/struct name
  std::string name;   ///< member identifier
  std::string owner;  ///< flattened owner expression (documentation)
  std::size_t line = 0;  ///< 0-based declaration line
};

enum class CaptureKind {
  kDefaultRef,    ///< `&`
  kDefaultValue,  ///< `=`
  kByRef,         ///< `&name` (or `&name = expr` init-capture)
  kByValue,       ///< `name` (or `name = expr` init-capture)
  kThis,          ///< `this`
  kStarThis,      ///< `*this`
};

struct LambdaCapture {
  CaptureKind kind = CaptureKind::kByValue;
  std::string name;       ///< empty for defaults and `this`
  bool init = false;      ///< init-capture (`name = expr`)
  std::string init_expr;  ///< flattened initializer of an init-capture
  std::size_t line = 0;   ///< 0-based line of the capture
};

/// One lambda expression, located by token indices into the file's stream.
struct LambdaSym {
  std::size_t intro = 0;       ///< index of the `[` introducer
  std::size_t body_begin = 0;  ///< first token inside `{`
  std::size_t body_end = 0;    ///< index of the closing `}`
  std::size_t line = 0;        ///< 0-based line of the introducer
  std::size_t col = 0;
  bool parsed = false;  ///< capture list and body located successfully
  std::vector<LambdaCapture> captures;
  /// True when `this` is reachable inside the body: explicit this/*this
  /// capture or a `[&]`/`[=]` default (both capture the this pointer).
  bool captures_this() const;
  bool has_ref_default() const;
  bool has_value_default() const;
};

struct ClassSym {
  std::string name;
  std::size_t line = 0;  ///< 0-based line of the class-head name
};

struct FunctionSym {
  std::string cls;   ///< enclosing (or `Cls::` qualifier) class; "" if free
  std::string name;
  std::size_t line = 0;          ///< 0-based line of the function name
  Access access = Access::kPublic;
  bool in_anon_namespace = false;
  bool is_definition = false;    ///< has a body in this file
  bool ctor_or_dtor = false;
  bool has_source_location_param = false;
  std::string params;            ///< flattened parameter-list text
  /// Parameter-list token range (inside the parens) into the file's
  /// TokenStream, for per-parameter analysis (callgraph.hpp).
  std::size_t params_begin = 0;
  std::size_t params_end = 0;
  std::vector<std::string> requires_mutexes;  ///< SPIDER_REQUIRES(args)
  bool repair_only = false;  ///< SPIDER_REPAIR_ONLY trailer (L13)
  bool journaled = false;    ///< SPIDER_JOURNALED(why) trailer (L14)
  std::string journaled_why;  ///< flattened SPIDER_JOURNALED argument
  /// Body token range [body_begin, body_end) into the file's TokenStream
  /// (both 0 when this is a declaration only).
  std::size_t body_begin = 0;
  std::size_t body_end = 0;
};

/// One enumerator of a parsed enum.
struct Enumerator {
  std::string name;
  std::size_t line = 0;  ///< 0-based declaration line
};

/// A named enum (scoped or not) with its enumerator list — the raw material
/// for the L15 exhaustiveness census (global.hpp).
struct EnumSym {
  std::string name;
  bool scoped = false;   ///< `enum class`/`enum struct`
  std::size_t line = 0;  ///< 0-based line of the enum-head name
  std::vector<Enumerator> enumerators;
};

struct FileSymbols {
  std::vector<ClassSym> classes;
  std::vector<FunctionSym> functions;
  std::vector<GuardedMember> guarded;
  std::vector<ShardOwnedMember> shard_owned;
  std::vector<EnumSym> enums;
  std::vector<std::size_t> template_head_lines;  ///< 0-based
};

/// Build the symbol index for one tokenized file.
FileSymbols index_symbols(const TokenStream& stream);

/// Locate every lambda expression in the stream and parse its capture list
/// (defaults, by-ref/by-value captures, init-captures, this/*this, packs).
/// Template lambdas, trailing attributes/specifiers, and nested lambdas are
/// handled; anything the parser does not understand yields `parsed = false`
/// — capture-based rules then skip the lambda (a missed finding, never a
/// spurious one).
std::vector<LambdaSym> find_lambdas(const TokenStream& stream);

}  // namespace spider::lint
