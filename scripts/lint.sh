#!/usr/bin/env bash
# Static-analysis driver: spiderlint (always) + clang-tidy (when installed).
#
# spiderlint is the in-tree determinism, unit-safety, and architecture pass
# (rules L1-L8, see docs/static-analysis.md); clang-tidy adds the generic
# bugprone / concurrency / performance checks configured in .clang-tidy.
#
# Usage: scripts/lint.sh [options] [path...]
#   --fix-hints       print spiderlint fix-it hints and the per-rule digest
#   --json            shorthand for --format=json
#   --format=FMT      spiderlint output format: text (default), json, sarif
#   --baseline=FILE   baseline file (default: ci/spiderlint-baseline.txt
#                     when it exists; --baseline= with no file disables)
#   --fix             apply the mechanically safe fixes (L1 swaps, L3 unit
#                     aliases) in place, then report what remains
#   path...           files or directories (default: src tests bench)
#
# Exit codes: 0 clean, 1 findings (either tool), 2 environment/usage error.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${BUILD_DIR:-build}"
JOBS="$(nproc 2>/dev/null || echo 4)"

SPIDERLINT_ARGS=()
PATHS=()
BASELINE="__default__"
for arg in "$@"; do
  case "$arg" in
    --fix-hints)   SPIDERLINT_ARGS+=(--fix-hints) ;;
    --json)        SPIDERLINT_ARGS+=(--format=json) ;;
    --format=*)    SPIDERLINT_ARGS+=("$arg") ;;
    --fix)         SPIDERLINT_ARGS+=(--fix) ;;
    --baseline=*)  BASELINE="${arg#--baseline=}" ;;
    --*)           echo "unknown option: $arg" >&2; exit 2 ;;
    *)             PATHS+=("$arg") ;;
  esac
done
if [ "${#PATHS[@]}" -eq 0 ]; then PATHS=(src tests bench); fi
if [ "$BASELINE" = "__default__" ] && [ -f ci/spiderlint-baseline.txt ]; then
  BASELINE=ci/spiderlint-baseline.txt
fi
if [ -n "$BASELINE" ] && [ "$BASELINE" != "__default__" ]; then
  SPIDERLINT_ARGS+=("--baseline=${BASELINE}")
fi

# Build (or refresh) the spiderlint binary; export compile commands so a
# clang-tidy pass can piggyback on the same build tree.
if [ ! -f "${BUILD_DIR}/CMakeCache.txt" ]; then
  cmake -B "${BUILD_DIR}" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON > /dev/null
fi
cmake --build "${BUILD_DIR}" -j "${JOBS}" --target spiderlint > /dev/null

if [ ! -x "${BUILD_DIR}/tools/spiderlint" ]; then
  echo "FATAL: spiderlint binary missing at ${BUILD_DIR}/tools/spiderlint" >&2
  echo "       (the build above should have produced it — check the cmake output)" >&2
  exit 2
fi

echo "=== spiderlint ==="
status=0
"${BUILD_DIR}/tools/spiderlint" "${SPIDERLINT_ARGS[@]+"${SPIDERLINT_ARGS[@]}"}" \
    "${PATHS[@]}" || status=$?
if [ "$status" -ge 2 ]; then exit "$status"; fi

# clang-tidy is optional tooling (not in every container image): run it when
# present, note the skip when not — never fail for a missing binary.
if command -v clang-tidy > /dev/null 2>&1; then
  if [ ! -f "${BUILD_DIR}/compile_commands.json" ]; then
    cmake -B "${BUILD_DIR}" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON > /dev/null
  fi
  echo "=== clang-tidy ==="
  mapfile -t tidy_sources < <(find "${PATHS[@]}" -name '*.cpp' ! -path '*/lint_fixtures/*' | sort)
  if [ "${#tidy_sources[@]}" -gt 0 ]; then
    clang-tidy -p "${BUILD_DIR}" --quiet "${tidy_sources[@]}" || status=1
  fi
else
  echo "=== clang-tidy: not installed, skipping (spiderlint still ran) ==="
fi

if [ "$status" -eq 0 ]; then
  echo "OK: lint clean"
else
  echo "FAIL: lint findings above" >&2
fi
exit "$status"
