// File striping policy and OST allocation.
//
// Lustre stripes a file over `stripe_count` OSTs in `stripe_size` units.
// The paper's user best practices (Section VII) hinge on striping choices:
// small files and directories of small files should use stripe count 1
// (every stat of a striped file touches every OST holding data), while
// large checkpoint files stripe wide with stripe-aligned 1 MB I/O. The
// allocator implements Lustre's round-robin with a fullness-weighted QOS
// mode that avoids imbalanced OSTs.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "fs/ost.hpp"

namespace spider::fs {

struct StripePolicy {
  std::uint32_t stripe_count = 4;
  Bytes stripe_size = 1_MiB;
};

enum class AllocatorMode {
  /// Plain round-robin (Lustre default when OSTs are balanced).
  kRoundRobin,
  /// Weighted by free space: skips OSTs much fuller than the average
  /// (Lustre QOS allocator behaviour).
  kQosWeighted,
};

class OstAllocator {
 public:
  OstAllocator(std::span<Ost* const> osts, AllocatorMode mode);

  /// Choose `count` distinct OSTs for a new file and reserve `file_size`
  /// across them (evenly). Returns chosen OST ids; empty when space cannot
  /// be found.
  std::vector<std::uint32_t> allocate(std::uint32_t count, Bytes file_size,
                                      Rng& rng);

  /// Release a file's reservation from its stripe OSTs.
  void release(std::span<const std::uint32_t> ost_ids, Bytes file_size);

  /// Adjust a file's reservation on its existing stripe OSTs from
  /// `old_size` to `new_size` (evenly, like allocate/release). Shrinks
  /// always succeed; a grow that does not fit rolls back and returns false.
  bool resize(std::span<const std::uint32_t> ost_ids, Bytes old_size,
              Bytes new_size);

  AllocatorMode mode() const { return mode_; }
  std::size_t num_osts() const { return osts_.size(); }
  Ost& ost(std::size_t i) { return *osts_[i]; }
  const Ost& ost(std::size_t i) const { return *osts_[i]; }

 private:
  bool qos_eligible(const Ost& o, double mean_fullness) const;

  std::vector<Ost*> osts_;
  std::map<std::uint32_t, std::size_t> index_of_id_;
  AllocatorMode mode_;
  std::size_t rr_cursor_ = 0;
};

}  // namespace spider::fs
