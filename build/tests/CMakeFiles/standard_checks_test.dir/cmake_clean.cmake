file(REMOVE_RECURSE
  "CMakeFiles/standard_checks_test.dir/standard_checks_test.cpp.o"
  "CMakeFiles/standard_checks_test.dir/standard_checks_test.cpp.o.d"
  "standard_checks_test"
  "standard_checks_test.pdb"
  "standard_checks_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/standard_checks_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
