// Fixture for spiderlint rule L3 (raw-unit-double).
//
// Linted as a public header: a raw double whose name carries a unit must
// use the units.hpp vocabulary types instead.
#pragma once

namespace fixture {

struct TransferStats {
  double transfer_bytes = 0.0;
};

}  // namespace fixture
