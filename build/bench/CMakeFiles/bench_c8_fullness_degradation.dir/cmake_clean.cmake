file(REMOVE_RECURSE
  "CMakeFiles/bench_c8_fullness_degradation.dir/bench_c8_fullness_degradation.cpp.o"
  "CMakeFiles/bench_c8_fullness_degradation.dir/bench_c8_fullness_degradation.cpp.o.d"
  "bench_c8_fullness_degradation"
  "bench_c8_fullness_degradation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_c8_fullness_degradation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
