// 3D torus interconnect (Cray Gemini class) with dimension-order routing.
//
// Titan's Gemini network is a 3D torus; I/O traffic from 18,688 clients is
// funneled through 440 LNET routers onto the InfiniBand SAN (Section V-B).
// Router placement and fine-grained routing decide how many torus links a
// request crosses and how hot the hottest link runs — the congestion story
// of Lesson 14. The model is a standard wrap-around torus with deterministic
// dimension-order (X then Y then Z) routing, shortest wrap direction per
// dimension.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "common/units.hpp"

namespace spider::net {

struct TorusDims {
  int x = 1;
  int y = 1;
  int z = 1;
};

struct Coord {
  int x = 0;
  int y = 0;
  int z = 0;
  bool operator==(const Coord&) const = default;
};

/// Directed link id: node * 6 + direction (0:+x 1:-x 2:+y 3:-y 4:+z 5:-z).
using LinkId = std::uint32_t;

class Torus3D {
 public:
  explicit Torus3D(TorusDims dims);

  const TorusDims& dims() const { return dims_; }
  int num_nodes() const { return dims_.x * dims_.y * dims_.z; }
  int num_links() const { return num_nodes() * 6; }

  int node_id(Coord c) const;
  Coord coord_of(int node) const;

  /// Minimal hop count between two nodes (torus metric).
  int hop_count(int from, int to) const;

  /// Directed links crossed by a dimension-order route from `from` to `to`.
  /// Empty when from == to.
  std::vector<LinkId> route(int from, int to) const;

  /// The node owning directed link `l` and its direction index.
  static int link_node(LinkId l) { return static_cast<int>(l / 6); }
  static int link_dir(LinkId l) { return static_cast<int>(l % 6); }

  /// Neighbor of `node` in direction d (0:+x .. 5:-z), with wraparound.
  int neighbor(int node, int dir) const;

 private:
  /// Signed steps (with wrap) to travel in one dimension; magnitude and
  /// sign of the shorter way around.
  static int wrap_delta(int from, int to, int extent);

  TorusDims dims_;
};

}  // namespace spider::net
