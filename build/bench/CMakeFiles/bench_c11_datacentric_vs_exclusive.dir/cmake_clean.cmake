file(REMOVE_RECURSE
  "CMakeFiles/bench_c11_datacentric_vs_exclusive.dir/bench_c11_datacentric_vs_exclusive.cpp.o"
  "CMakeFiles/bench_c11_datacentric_vs_exclusive.dir/bench_c11_datacentric_vs_exclusive.cpp.o.d"
  "bench_c11_datacentric_vs_exclusive"
  "bench_c11_datacentric_vs_exclusive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_c11_datacentric_vs_exclusive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
