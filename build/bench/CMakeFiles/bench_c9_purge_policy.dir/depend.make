# Empty dependencies file for bench_c9_purge_policy.
# This may be replaced when dependencies are built.
