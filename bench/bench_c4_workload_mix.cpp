// C4: the Spider I workload characterization (Section II, study [14]).
//
// Paper: "a mix of 60% write and 40% read I/O requests"; "a majority of
// I/O requests are either small (under 16 KB) or large (multiples of
// 1 MB)"; "the inter-arrival time and idle time distributions both follow
// a long-tail distribution that can be modeled as a Pareto distribution."
// The bench generates the mixed center workload and runs the same
// characterization pipeline on it.
#include <iostream>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "workload/arrivals.hpp"
#include "workload/characterize.hpp"
#include "workload/mixed.hpp"

int main() {
  using namespace spider;
  using namespace spider::workload;

  Rng rng(2014);
  const WorkloadMixParams mix;
  const auto trace = generate_trace(mix, 64, 300.0, rng);
  const auto stats = characterize(trace);

  bench::banner("C4: mixed-workload characterization (server-side view)");
  Table table;
  table.set_columns({"metric", "paper", "measured"});
  table.add_row({std::string("write fraction"), std::string("0.60"),
                 stats.write_fraction});
  table.add_row({std::string("requests < 16 KB"), std::string("~0.45 (small mode)"),
                 stats.small_fraction});
  table.add_row({std::string("requests = k x 1 MB"),
                 std::string("rest (large mode)"), stats.mb_multiple_fraction});
  table.add_row({std::string("inter-arrival Pareto alpha"),
                 std::string("long tail (alpha ~1.35)"),
                 stats.interarrival_tail_alpha});
  table.add_row({std::string("idle-time Pareto alpha"),
                 std::string("long tail (alpha ~1.15)"),
                 stats.idle_tail_alpha});
  table.print(std::cout);

  std::cout << "\nrequest-size histogram (log2 bins):\n"
            << stats.size_histogram.to_string() << "\n";

  bench::ShapeChecker checker;
  checker.check(std::abs(stats.write_fraction - 0.60) < 0.02,
                "write fraction ~= 60% (paper: 60/40 mix)");
  checker.check(stats.small_fraction + stats.mb_multiple_fraction > 0.97,
                "sizes are bimodal: small (<16 KB) or multiples of 1 MB");
  checker.check(stats.interarrival_tail_alpha > 0.8 &&
                    stats.interarrival_tail_alpha < 2.5,
                "inter-arrival gaps show a Pareto-class heavy tail");
  checker.check(stats.idle_tail_alpha > 0.8 && stats.idle_tail_alpha < 2.0,
                "idle periods show a Pareto-class heavy tail");
  return checker.exit_code();
}
