#include "block/failure.hpp"

#include <algorithm>
#include <sstream>

#include "common/units.hpp"

namespace spider::block {

IncidentOutcome replay_incident_2010(const IncidentConfig& cfg, Rng& rng) {
  IncidentOutcome out;
  out.enclosures = cfg.enclosures;

  SsuParams params;
  params.raid_groups = cfg.raid_groups;
  params.enclosures = cfg.enclosures;
  Ssu ssu(params, /*id=*/0, rng);

  auto log = [&out](const std::string& line) { out.timeline.push_back(line); };

  // 1. A disk is replaced; its group starts rebuilding.
  const std::size_t g = rng.uniform_index(ssu.groups());
  const std::size_t m = rng.uniform_index(ssu.group(g).width());
  ssu.group(g).fail_member(m);
  ssu.group(g).start_rebuild(m);
  {
    std::ostringstream os;
    os << "t+0h: disk replaced in group " << g << " member " << m
       << "; rebuild started (" << ssu.group(g).rebuild_time_s() / kSecondsPerHour
       << " h to completion)";
    log(os.str());
  }

  // 2. Controller-to-enclosure link fails; pair fails over and the unit
  //    returns to production, still rebuilding (meets design spec).
  ssu.controller().fail_one();
  ssu.controller().journal_add(cfg.journal_files);
  log("t+0h: controller-enclosure connection interrupted; failed over to "
      "partner controller; unit returned to production while rebuilding");

  // 3. Array taken offline while still in rebuild mode: the enclosure with
  //    the failed controller link drops out. It is a different enclosure
  //    than the one holding the rebuilding member, so its loss stacks on
  //    top of the in-flight rebuild. With 5 enclosures it removes two more
  //    members of the rebuilding group (3 > parity); with 10 it removes one
  //    (2 = parity, tolerated).
  const std::uint32_t rebuild_enc = ssu.layout().enclosure_of(g, m);
  const std::uint32_t e =
      (rebuild_enc + 1) % static_cast<std::uint32_t>(cfg.enclosures);
  ssu.enclosure_down(e);
  const std::uint64_t lost_journal = ssu.controller().take_offline(/*graceful=*/false);
  {
    std::ostringstream os;
    os << "t+" << cfg.offline_after_hours << "h: array taken offline in rebuild "
       << "state; enclosure " << e << " unavailable; " << lost_journal
       << " journal entries dropped";
    log(os.str());
  }

  for (std::size_t i = 0; i < ssu.groups(); ++i) {
    if (ssu.group(i).data_lost()) ++out.groups_lost;
  }
  out.data_lost = out.groups_lost > 0;
  if (out.data_lost) {
    out.journal_files_lost = lost_journal;
    out.recovered_fraction = 0.95;
    out.recovery_days = 15.0;
    std::ostringstream os;
    os << "outcome: " << out.groups_lost << " RAID groups exceeded parity; "
       << out.journal_files_lost << " files' journal lost; recovery "
       << out.recovery_days << " days at " << out.recovered_fraction * 100.0
       << "% success";
    log(os.str());
  } else {
    log("outcome: all groups within parity; journal replayed after restore; "
        "no data loss");
    out.recovered_fraction = 1.0;
  }
  return out;
}

FailureStats inject_random_failures(Ssu& ssu, double years, double afr, Rng& rng) {
  FailureStats stats;
  // Hour-granular sweep: each disk fails with rate afr/8766 per hour;
  // rebuilds complete after the group's rebuild time.
  const double p_hour = afr / kHoursPerYear;
  const double hours = years * kHoursPerYear;
  // Remaining rebuild hours per (group, member), -1 when none.
  std::vector<std::vector<double>> rebuilding(ssu.groups());
  for (std::size_t g = 0; g < ssu.groups(); ++g) {
    rebuilding[g].assign(ssu.group(g).width(), -1.0);
  }
  for (double h = 0.0; h < hours; h += 1.0) {
    for (std::size_t g = 0; g < ssu.groups(); ++g) {
      auto& grp = ssu.group(g);
      if (grp.data_lost()) continue;
      for (std::size_t m = 0; m < grp.width(); ++m) {
        // Progress in-flight rebuilds.
        if (rebuilding[g][m] >= 0.0) {
          rebuilding[g][m] -= 1.0;
          if (rebuilding[g][m] < 0.0) grp.finish_rebuild(m);
          continue;
        }
        if (!rng.chance(p_hour)) continue;
        ++stats.disk_failures;
        if (grp.state() == RaidState::kRebuilding) ++stats.double_failures;
        grp.fail_member(m);
        if (grp.data_lost()) {
          ++stats.groups_lost;
          break;
        }
        grp.start_rebuild(m);
        rebuilding[g][m] = grp.rebuild_time_s() / kSecondsPerHour;
      }
    }
  }
  return stats;
}

}  // namespace spider::block
