#include "net/congestion.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/stats.hpp"

namespace spider::net {

std::vector<double> link_loads(const Torus3D& torus, const FgrPolicy& policy,
                               std::span<const int> client_nodes,
                               std::span<const std::size_t> dest_leaf,
                               Bandwidth per_client_bw, RoutingChoice routing) {
  if (client_nodes.size() != dest_leaf.size()) {
    throw std::invalid_argument("link_loads: clients/leaves size mismatch");
  }
  std::vector<double> loads(static_cast<std::size_t>(torus.num_links()), 0.0);
  std::uint64_t rr = 0;
  for (std::size_t c = 0; c < client_nodes.size(); ++c) {
    std::size_t router;
    switch (routing) {
      case RoutingChoice::kFgr:
        router = policy.select_fgr(client_nodes[c], dest_leaf[c]);
        break;
      case RoutingChoice::kNearest:
        router = policy.select_nearest(client_nodes[c]);
        break;
      case RoutingChoice::kRoundRobin:
        router = policy.select_round_robin(rr++);
        break;
      default:
        router = 0;
    }
    for (LinkId l : torus.route(client_nodes[c], policy.router(router).node)) {
      loads[l] += per_client_bw;
    }
  }
  return loads;
}

CongestionReport analyze_congestion(const Torus3D& torus,
                                    const FgrPolicy& policy,
                                    std::span<const int> client_nodes,
                                    std::span<const std::size_t> dest_leaf,
                                    Bandwidth per_client_bw,
                                    RoutingChoice routing) {
  const auto loads = link_loads(torus, policy, client_nodes, dest_leaf,
                                per_client_bw, routing);
  CongestionReport report;
  report.clients = client_nodes.size();
  report.total_demand =
      per_client_bw * static_cast<double>(client_nodes.size());

  std::vector<double> used;
  double total_hops_weighted = 0.0;
  for (std::size_t l = 0; l < loads.size(); ++l) {
    if (loads[l] <= 0.0) continue;
    used.push_back(loads[l]);
    total_hops_weighted += loads[l];
    if (loads[l] > report.max_link_load) {
      report.max_link_load = loads[l];
      report.hottest_link = static_cast<LinkId>(l);
    }
  }
  report.links_used = used.size();
  if (!used.empty()) {
    report.mean_link_load = mean_of(used);
    report.p99_link_load = percentile(used, 99.0);
    report.concentration = report.max_link_load / report.mean_link_load;
  }
  if (per_client_bw > 0.0 && !client_nodes.empty()) {
    // Each link crossing carries per_client_bw; summed link load divided by
    // injected demand is the average hop count.
    report.mean_hops = total_hops_weighted / report.total_demand;
  }
  return report;
}

}  // namespace spider::net
