// Tests for the invariant-oracle layer: suite scheduling, the flow-network
// conservation oracle (clean on honest networks, firing on seeded breaches),
// and the JSON violation rendering.
#include "sim/oracle.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "sim/flow_network.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace {

using namespace spider::sim;

TEST(OracleSuite, SweepsOnCadenceAndAtHorizon) {
  Simulator sim;
  OracleSuite suite(sim);
  int sweeps = 0;
  suite.add(make_oracle("counter", [&](SimTime, std::vector<OracleViolation>&) {
    ++sweeps;
  }));
  suite.schedule_checks(kSecond, 5 * kSecond);
  sim.run(10 * kSecond);
  // Sweeps at 1..5 s inclusive.
  EXPECT_EQ(sweeps, 5);
  EXPECT_TRUE(suite.clean());
}

TEST(OracleSuite, RejectsNonPositiveInterval) {
  Simulator sim;
  OracleSuite suite(sim);
  EXPECT_THROW(suite.schedule_checks(0, kSecond), std::invalid_argument);
  EXPECT_THROW(suite.schedule_checks(-kSecond, kSecond),
               std::invalid_argument);
}

TEST(OracleSuite, CollectsViolationsWithTimes) {
  Simulator sim;
  OracleSuite suite(sim);
  suite.add(make_oracle("grumpy",
                        [](SimTime now, std::vector<OracleViolation>& out) {
                          if (now >= 2 * kSecond) {
                            out.push_back({"grumpy", now, "unhappy"});
                          }
                        }));
  suite.schedule_checks(kSecond, 3 * kSecond);
  sim.run(5 * kSecond);
  EXPECT_FALSE(suite.clean());
  ASSERT_EQ(suite.violations().size(), 2u);
  EXPECT_EQ(suite.violations()[0].at, 2 * kSecond);
  EXPECT_EQ(suite.violations()[1].at, 3 * kSecond);
  EXPECT_EQ(suite.fired_oracles(), std::vector<std::string>{"grumpy"});
}

TEST(OracleSuite, FiredOraclesDeduplicatesInFirstFiredOrder) {
  Simulator sim;
  OracleSuite suite(sim);
  suite.add(make_oracle("b", [](SimTime now, std::vector<OracleViolation>& out) {
    out.push_back({"b", now, "x"});
  }));
  suite.add(make_oracle("a", [](SimTime now, std::vector<OracleViolation>& out) {
    out.push_back({"a", now, "y"});
  }));
  suite.check_now();
  suite.check_now();
  const std::vector<std::string> expected{"b", "a"};
  EXPECT_EQ(suite.fired_oracles(), expected);
  EXPECT_EQ(suite.violations().size(), 4u);
}

TEST(FlowConservationOracle, CleanOnHonestNetwork) {
  Simulator sim;
  FlowNetwork net(sim);
  const ResourceId a = net.add_resource("link-a", 100.0);
  const ResourceId b = net.add_resource("link-b", 50.0);
  OracleSuite suite(sim);
  suite.add(make_flow_conservation_oracle(net));

  int completions = 0;
  for (int i = 0; i < 4; ++i) {
    FlowDesc flow;
    flow.path = {{a, 1.0}, {b, 1.0}};
    flow.size = 100.0;
    flow.on_complete = [&](FlowId, SimTime) { ++completions; };
    net.start_flow(std::move(flow));
  }
  suite.schedule_checks(kSecond, 60 * kSecond);
  sim.run(60 * kSecond);
  EXPECT_EQ(completions, 4);
  EXPECT_GT(net.total_delivered(), 399.0);
  EXPECT_TRUE(suite.clean()) << violations_json(suite.violations());
}

TEST(FlowConservationOracle, CleanAcrossCapacityEdgeWithAlignedSweeps) {
  Simulator sim;
  FlowNetwork net(sim);
  const ResourceId r = net.add_resource("link", 100.0);
  OracleSuite suite(sim);
  suite.add(make_flow_conservation_oracle(net));

  FlowDesc flow;
  flow.path = {{r, 1.0}};
  flow.size = 1000.0;
  net.start_flow(std::move(flow));
  // Sweep, then cut capacity (sweep again at the edge, as the campaign
  // engine does), then keep sweeping: no false positive.
  suite.schedule_checks(kSecond, 10 * kSecond);
  sim.schedule_at(5 * kSecond, [&] {
    net.set_capacity(r, 10.0);
    suite.check_now();
  });
  sim.run(10 * kSecond);
  EXPECT_TRUE(suite.clean()) << violations_json(suite.violations());
}

TEST(FlowConservationOracle, FiresWhenAggregateRateEscapesCapacity) {
  Simulator sim;
  FlowNetwork net(sim);
  net.add_resource("link", 10.0);
  OracleSuite suite(sim);
  suite.add(make_flow_conservation_oracle(net));

  // A pathless flow with a finite cap models traffic that crosses no
  // accounted resource: its rate escapes every capacity bound.
  FlowDesc rogue;
  rogue.size = 1e9;
  rogue.rate_cap = 500.0;
  net.start_flow(std::move(rogue));

  suite.check_now();
  ASSERT_FALSE(suite.clean());
  EXPECT_EQ(suite.violations()[0].oracle, "flow-conservation");
  EXPECT_NE(suite.violations()[0].detail.find("aggregate rate"),
            std::string::npos)
      << suite.violations()[0].detail;
}

TEST(ViolationsJson, RendersStableShape) {
  std::vector<OracleViolation> violations;
  EXPECT_EQ(violations_json(violations), "[]");
  violations.push_back({"purge-age", 2 * kSecond, "deleted \"young\" file"});
  const std::string json = violations_json(violations);
  EXPECT_NE(json.find("\"oracle\": \"purge-age\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"at_s\": 2"), std::string::npos) << json;
  EXPECT_NE(json.find("\\\"young\\\""), std::string::npos) << json;
}

}  // namespace
