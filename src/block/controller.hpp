// Storage controller pair (DDN S2A/SFA class).
//
// Each SSU is fronted by an active-active controller pair. The pair caps
// the SSU's delivered bandwidth (the pre-upgrade Spider II controllers were
// the namespace bottleneck: 320 GB/s, raised to 510 GB/s by a CPU/memory
// upgrade — Section V-C). The pair also holds the write-back journal whose
// loss in the 2010 incident cost more than a million files (Lesson 11).
#pragma once

#include <cstdint>

#include "common/units.hpp"

namespace spider::block {

struct ControllerParams {
  /// Delivered bandwidth of one controller. Spider II pre-upgrade default:
  /// the pair caps an SSU at ~17.8 GB/s (36 SSUs * 17.8 / 2 namespaces
  /// ≈ 320 GB/s per namespace).
  Bandwidth per_controller_bw = 8.9 * kGBps;
  /// IOPS ceiling of one controller for small-request workloads.
  double per_controller_iops = 200e3;
};

/// Upgraded controller generation (post CPU/memory refresh): the pair caps
/// an SSU at ~28.4 GB/s, which moves the bottleneck back to the disks and
/// yields ~510 GB/s per namespace.
inline constexpr Bandwidth kUpgradedControllerBw = 14.2 * kGBps;
inline constexpr double kUpgradedControllerIops = 350e3;
ControllerParams upgraded_controller_params();

enum class PairState { kActiveActive, kFailedOver, kOffline };

class ControllerPair {
 public:
  explicit ControllerPair(const ControllerParams& params);

  const ControllerParams& params() const { return params_; }
  PairState state() const { return state_; }

  /// In-place hardware refresh (the Spider II CPU/memory upgrade).
  void upgrade(const ControllerParams& params) { params_ = params; }

  /// Aggregate bandwidth the pair can move in its current state.
  Bandwidth delivered_bw() const;
  double delivered_iops() const;

  /// One controller fails; the partner takes over all LUNs (design-intended
  /// behaviour in the 2010 incident).
  void fail_one();
  /// Failed controller restored; back to active-active.
  void recover();
  /// Take the pair offline. If `graceful`, the journal flushes first;
  /// otherwise uncommitted journal entries are dropped (returned count).
  std::uint64_t take_offline(bool graceful);
  void bring_online();

  // --- write-back journal -------------------------------------------------
  /// Record `files` files' worth of uncommitted journal entries.
  void journal_add(std::uint64_t files);
  /// Flush the journal to stable storage.
  void journal_commit();
  std::uint64_t journal_entries() const { return journal_entries_; }
  std::uint64_t journal_lost_total() const { return journal_lost_total_; }

 private:
  ControllerParams params_;
  PairState state_ = PairState::kActiveActive;
  std::uint64_t journal_entries_ = 0;
  std::uint64_t journal_lost_total_ = 0;
};

}  // namespace spider::block
