// S1: a full production shift on the simulated center — every subsystem at
// once (the paper's Figure 1 in motion).
//
// Six hours of data-centric operation at 1/10 scale: two periodic
// checkpointing applications and an interactive analytics stream share the
// namespaces; one RAID group rides through a rebuild window; a controller
// pair fails over and recovers; the DDN poller and the standard check
// battery watch everything; server-side logs feed IOSI afterwards.
// Shape assertions: the center delivers, the monitoring sees exactly the
// injected faults, and the logs carry the applications' signatures.
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/center.hpp"
#include "core/scenario.hpp"
#include "core/spider_config.hpp"
#include "tools/health.hpp"
#include "tools/iosi.hpp"
#include "tools/standard_checks.hpp"
#include "workload/analytics.hpp"
#include "workload/s3d.hpp"

int main() {
  using namespace spider;

  Rng rng(2014);
  core::CenterModel center(core::scaled_config(core::spider2_config(), 0.1),
                           rng);
  center.set_client_placement(core::ClientPlacement::kRandom, rng);
  sim::Simulator sim;
  core::ScenarioRunner runner(center, sim);

  const double shift_s = 6.0 * 3600.0;

  // Application 1: big checkpointer, 40-minute cadence.
  workload::S3dParams app1;
  app1.ranks = 2048;
  app1.bytes_per_rank = 96_MiB;
  app1.output_interval_s = 2400.0;
  // Application 2: smaller, 10-minute cadence.
  workload::S3dParams app2;
  app2.ranks = 512;
  app2.bytes_per_rank = 64_MiB;
  app2.output_interval_s = 600.0;

  std::size_t bursts_done = 0;
  Bytes bytes_delivered = 0;
  Rng wl_rng(7);
  int app_index = 0;
  for (const auto& params : {app1, app2}) {
    const workload::S3dWorkload app(params);
    const std::size_t base = app_index * 53;
    for (const auto& burst : app.generate(shift_s, wl_rng)) {
      runner.submit_burst(burst,
                          [base, &center](std::size_t f) {
                            return (base + f) % center.total_osts();
                          },
                          [&](core::BurstOutcome o) {
                            ++bursts_done;
                            bytes_delivered += o.bytes;
                          },
                          32, 20000 * (app_index + 1));
    }
    ++app_index;
  }

  // Interactive analytics all shift. Think time is stretched vs the
  // seconds-scale interference benches: six simulated hours at 50 ms think
  // would mean ~14M DES events; a 10 s cadence keeps the shift tractable
  // while still sampling latency continuously.
  workload::AnalyticsParams ap;
  ap.clients = 16;
  ap.think_time_s = 10.0;
  workload::AnalyticsWorkload analytics(ap);
  Rng arng(11);
  std::vector<double> latencies;
  runner.submit_requests(analytics.generate(shift_s, arng),
                         [&center](std::size_t w) {
                           return (w * 13) % center.total_osts();
                         },
                         &latencies, 60000);

  // Fault injection: a rebuild window and a controller failover.
  tools::HealthMonitor monitor;
  const auto& map = runner.map();
  sim.schedule_at(sim::from_seconds(3600.0), [&] {
    auto& grp = center.ssu(1).group(7);
    grp.fail_member(2);
    grp.start_rebuild(2);
    const std::size_t ost = 1 * center.config().ssu.raid_groups + 7;
    runner.network().set_capacity(
        map.ost[ost], center.ost_at(ost).bandwidth(block::IoMode::kSequential,
                                                   block::IoDir::kWrite));
    monitor.ingest({sim.now(), tools::EventSource::kHardware,
                    tools::Severity::kWarning, "ssu1-g7", "disk failed"});
  });
  sim.schedule_at(sim::from_seconds(4.0 * 3600.0), [&] {
    center.ssu(2).controller().fail_one();
    runner.network().set_capacity(map.controller[2],
                                  center.ssu(2).controller().delivered_bw());
    monitor.ingest({sim.now(), tools::EventSource::kHardware,
                    tools::Severity::kCritical, "ssu2-ctrl", "failover"});
  });

  // Server-side throughput log for IOSI.
  std::vector<double> log;
  runner.record_throughput(5.0, shift_s, &log);

  sim.run(sim::from_seconds(shift_s));
  sim.run();  // drain whatever is still in flight

  bench::banner("S1: six-hour production shift, 1/10-scale Spider II");
  Table table;
  table.set_columns({"metric", "value"});
  table.add_row({std::string("checkpoint bursts completed"),
                 static_cast<std::int64_t>(bursts_done)});
  table.add_row({std::string("checkpoint volume (TiB)"),
                 static_cast<double>(bytes_delivered) / (1024.0 * 1024.0 *
                                                         1024.0 * 1024.0)});
  table.add_row({std::string("analytics requests served"),
                 static_cast<std::int64_t>(latencies.size())});
  table.add_row({std::string("analytics mean latency (ms)"),
                 mean_of(latencies) * 1e3});
  table.add_row({std::string("analytics p99 latency (ms)"),
                 percentile(latencies, 99.0) * 1e3});
  const auto incidents = monitor.coalesce(10 * sim::kMinute);
  table.add_row({std::string("health incidents coalesced"),
                 static_cast<std::int64_t>(incidents.size())});
  table.print(std::cout);

  // End-of-shift check battery must show exactly the injected faults.
  tools::IbErrorCounters ib(8);
  const std::vector<double> mds_offered(center.filesystem().namespaces(), 5e3);
  auto checks = tools::make_standard_checks(center, ib, mds_offered);
  const auto report = checks.run_all();
  std::cout << "\ncheck battery: " << report.ok << " ok, " << report.warning
            << " warning, " << report.critical << " critical\n";
  for (const auto& [name, result] : report.failing) {
    std::cout << "  " << name << ": " << result.detail << "\n";
  }

  const auto bursts = tools::detect_bursts(log, 5.0);
  std::cout << "server-side log: " << bursts.size()
            << " bursts detected across the shift\n\n";

  bench::ShapeChecker checker;
  checker.check(bursts_done >= 40,
                "both applications checkpointed all shift");
  checker.check(static_cast<double>(bytes_delivered) > 2.5 * 1099511627776.0,
                "multiple terabytes of checkpoint data landed");
  checker.check(mean_of(latencies) < 0.2,
                "interactive analytics stayed responsive through the mix");
  checker.check(incidents.size() == 2,
                "monitoring coalesced exactly the two injected faults");
  checker.check(report.warning + report.critical == 2,
                "check battery shows exactly the rebuild + failover");
  // The big application's bursts dominate the log (the small app's ride
  // below the peak-relative burst threshold — exactly why IOSI needs
  // multiple runs per application).
  checker.check(bursts.size() >= 8,
                "server-side logs carry the big application's burst structure");
  return checker.exit_code();
}
