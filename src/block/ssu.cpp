#include "block/ssu.hpp"

#include <algorithm>

namespace spider::block {

Disk draw_healthy_disk(const DiskParams& disk, const PopulationModel& pop,
                       std::uint32_t id, Rng& rng) {
  const double lo = 1.0 - 4.0 * pop.healthy_sigma;
  const double hi = 1.0 + 4.0 * pop.healthy_sigma;
  const double factor = std::clamp(rng.normal(1.0, pop.healthy_sigma), lo, hi);
  return Disk(disk, id, factor, pop.outlier_rate);
}

Ssu::Ssu(const SsuParams& params, std::uint32_t id, Rng& rng)
    : params_(params),
      id_(id),
      controller_(params.controller),
      layout_(params.raid_groups, params.raid.data_disks + params.raid.parity_disks,
              params.enclosures),
      next_disk_id_(0) {
  const std::size_t width = params_.raid.data_disks + params_.raid.parity_disks;
  groups_.reserve(params_.raid_groups);
  for (std::size_t g = 0; g < params_.raid_groups; ++g) {
    auto disks = make_population(width, params_.disk, params_.population, rng);
    for (auto& d : disks) {
      d = Disk(params_.disk, next_disk_id_++, d.perf_factor(), d.outlier_rate());
    }
    groups_.emplace_back(params_.raid, std::move(disks));
  }
}

std::size_t Ssu::total_disks() const {
  return groups_.size() * (params_.raid.data_disks + params_.raid.parity_disks);
}

Bytes Ssu::capacity() const {
  Bytes total = 0;
  for (const auto& g : groups_) total += g.capacity();
  return total;
}

Bandwidth Ssu::delivered_bw(IoMode mode, IoDir dir, Bytes request_size) const {
  double disk_side = 0.0;
  for (const auto& g : groups_) disk_side += g.bandwidth(mode, dir, request_size);
  return std::min(disk_side, controller_.delivered_bw());
}

std::vector<double> Ssu::group_bandwidths(IoMode mode, IoDir dir,
                                          Bytes request_size) const {
  std::vector<double> out;
  out.reserve(groups_.size());
  for (const auto& g : groups_) out.push_back(g.bandwidth(mode, dir, request_size));
  return out;
}

void Ssu::enclosure_down(std::uint32_t e) {
  for (std::size_t g = 0; g < groups_.size(); ++g) {
    for (std::size_t m : layout_.members_in(g, e)) {
      groups_[g].fail_member(m);
    }
  }
}

void Ssu::enclosure_up(std::uint32_t e) {
  for (std::size_t g = 0; g < groups_.size(); ++g) {
    if (groups_[g].data_lost()) continue;
    for (std::size_t m : layout_.members_in(g, e)) {
      if (groups_[g].member_state(m) == MemberState::kFailed) {
        groups_[g].restore_member(m);
      }
    }
  }
}

void Ssu::replace_disk(std::size_t group, std::size_t member, Rng& rng) {
  groups_.at(group).replace_member(
      member, draw_healthy_disk(params_.disk, params_.population, next_disk_id_++, rng));
}

}  // namespace spider::block
