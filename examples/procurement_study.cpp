// Procurement study: evaluating vendor SSU proposals against the Spider II
// RFP (Section III, Lessons 3-5).
//
// Two fictional vendor responses to the SOW are characterized by building
// their SSUs and running the acceptance workflow (the fair-lio-based
// culling pass every deployment ran), then scored with the weighted
// best-value evaluation of Lesson 5 — including the block-storage vs
// appliance response-model economics the real procurement weighed.
#include <iostream>
#include <vector>

#include "block/ssu.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "tools/rfp.hpp"
#include "tools/slowdisk.hpp"

using namespace spider;

namespace {

struct VendorHardware {
  std::string name;
  tools::ResponseModel model;
  block::SsuParams ssu;
  double price_per_ssu = 1.0;
  double schedule_months = 15.0;
  double past_performance = 0.8;
};

/// Benchmark one SSU of the offer and run the acceptance culling pass;
/// returns the characterized proposal the evaluation scores.
tools::Proposal characterize(const VendorHardware& hw, Rng& rng) {
  std::vector<block::Ssu> unit;
  unit.emplace_back(hw.ssu, 0, rng);

  tools::CullingConfig acceptance;
  acceptance.intra_ssu_threshold = 0.05;  // the SOW envelope
  acceptance.fleet_threshold = 0.05;
  tools::run_culling(unit, acceptance, rng);
  const auto measured = tools::measure_fleet(unit, acceptance);

  tools::Proposal p;
  p.vendor = hw.name;
  p.model = hw.model;
  p.ssu_sequential_bw =
      unit[0].delivered_bw(block::IoMode::kSequential, block::IoDir::kWrite);
  p.ssu_random_bw =
      unit[0].delivered_bw(block::IoMode::kRandom, block::IoDir::kWrite);
  p.ssu_capacity = unit[0].capacity();
  p.price_per_ssu = hw.price_per_ssu;
  p.measured_variance = measured.fleet_spread;
  p.schedule_months = hw.schedule_months;
  p.past_performance = hw.past_performance;
  return p;
}

}  // namespace

int main() {
  Rng rng(2012);  // the year the Spider II RFP went out

  VendorHardware vendor_a;
  vendor_a.name = "Vendor A (block storage)";
  vendor_a.model = tools::ResponseModel::kBlockStorage;
  vendor_a.ssu.disk.seq_read_bw = 145.0 * kMBps;
  vendor_a.ssu.disk.seq_write_bw = 140.0 * kMBps;
  vendor_a.ssu.controller = block::upgraded_controller_params();
  vendor_a.price_per_ssu = 1.35;
  vendor_a.past_performance = 0.85;

  VendorHardware vendor_b = vendor_a;
  vendor_b.name = "Vendor B (appliance)";
  vendor_b.model = tools::ResponseModel::kAppliance;
  vendor_b.price_per_ssu = 1.30;  // similar hardware, turnkey package
  vendor_b.schedule_months = 12.0;
  vendor_b.past_performance = 0.9;

  VendorHardware vendor_c = vendor_a;
  vendor_c.name = "Vendor C (value hardware)";
  vendor_c.ssu.disk.seq_read_bw = 120.0 * kMBps;
  vendor_c.ssu.disk.seq_write_bw = 115.0 * kMBps;
  vendor_c.ssu.population.slow_fraction = 0.16;
  vendor_c.ssu.controller = block::ControllerParams{};  // older generation
  vendor_c.price_per_ssu = 1.0;
  vendor_c.past_performance = 0.7;

  tools::SowTargets sow;
  sow.budget = 55.0;
  std::cout << "SOW: " << to_gbps(sow.sequential_bw) / 1000.0
            << " TB/s sequential, " << to_gbps(sow.random_bw)
            << " GB/s random, " << to_pb(sow.capacity) << " PB, "
            << sow.variance_envelope * 100.0 << "% variance envelope, budget "
            << sow.budget << " units\n\n";

  std::vector<tools::Proposal> proposals;
  for (const auto& hw : {vendor_a, vendor_b, vendor_c}) {
    proposals.push_back(characterize(hw, rng));
  }

  std::vector<tools::ProposalScore> scores;
  const std::size_t winner = tools::best_value(proposals, sow, {}, &scores);

  Table table("weighted best-value evaluation (Lesson 5)");
  table.set_columns({"offer", "SSUs", "total cost", "qualified", "technical",
                     "performance", "schedule", "cost", "TOTAL"});
  for (const auto& s : scores) {
    table.add_row({s.vendor, static_cast<std::int64_t>(s.ssus_needed),
                   s.total_cost, std::string(s.meets_targets ? "yes" : "NO"),
                   s.technical, s.performance, s.schedule, s.cost, s.total});
  }
  table.print(std::cout);

  std::cout << "\n";
  for (const auto& s : scores) {
    if (!s.notes.empty()) {
      std::cout << s.vendor << ": ";
      for (const auto& n : s.notes) std::cout << n << "; ";
      std::cout << "\n";
    }
  }
  if (winner != SIZE_MAX) {
    std::cout << "\naward: " << proposals[winner].vendor
              << "  (OLCF's real choice was a block-storage response — design "
                 "flexibility and cost savings, integration risk accepted)\n";
  } else {
    std::cout << "\nno qualified offer within budget\n";
  }
  return 0;
}
