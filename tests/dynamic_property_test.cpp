// Property sweeps on the dynamic flow network: random scenarios with
// arrivals, cancellations, and capacity changes must conserve bytes,
// terminate, and never produce invalid rates.
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "fs/purge.hpp"
#include "sim/flow_network.hpp"
#include "sim/simulator.hpp"

namespace spider {
namespace {

class DynamicNetworkP : public ::testing::TestWithParam<int> {};

TEST_P(DynamicNetworkP, RandomScenarioConservesAndTerminates) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  sim::Simulator sim;
  sim::FlowNetwork net(sim);

  const std::size_t nr = 3 + rng.uniform_index(8);
  std::vector<sim::ResourceId> resources;
  for (std::size_t r = 0; r < nr; ++r) {
    resources.push_back(
        net.add_resource("r" + std::to_string(r), rng.uniform(50.0, 500.0)));
  }

  double expected_bytes = 0.0;
  std::size_t completions = 0;
  std::vector<sim::FlowId> cancellable;

  const std::size_t flows = 20 + rng.uniform_index(40);
  for (std::size_t f = 0; f < flows; ++f) {
    sim::FlowDesc desc;
    const std::size_t hops = 1 + rng.uniform_index(3);
    for (std::size_t h = 0; h < hops; ++h) {
      desc.path.push_back(
          {resources[rng.uniform_index(nr)], rng.uniform(0.5, 2.0)});
    }
    desc.size = rng.uniform(10.0, 2000.0);
    if (rng.chance(0.3)) desc.rate_cap = rng.uniform(1.0, 100.0);
    desc.latency = static_cast<sim::SimTime>(rng.uniform_index(
        static_cast<std::uint64_t>(2 * sim::kSecond)));
    desc.on_complete = [&completions](sim::FlowId, sim::SimTime) {
      ++completions;
    };
    const double size = desc.size;
    // Stagger arrivals over the first 10 seconds.
    const auto start = static_cast<sim::SimTime>(
        rng.uniform_index(static_cast<std::uint64_t>(10 * sim::kSecond)));
    sim.schedule_at(start, [&net, desc = std::move(desc), &cancellable,
                            &expected_bytes, size]() mutable {
      const auto id = net.start_flow(std::move(desc));
      cancellable.push_back(id);
      expected_bytes += size;
    });
  }

  // Random capacity wobble and one cancellation mid-run.
  for (int k = 0; k < 5; ++k) {
    const auto when = static_cast<sim::SimTime>(
        rng.uniform_index(static_cast<std::uint64_t>(20 * sim::kSecond)));
    const auto res = resources[rng.uniform_index(nr)];
    const double cap = rng.uniform(20.0, 600.0);
    sim.schedule_at(when, [&net, res, cap] { net.set_capacity(res, cap); });
  }
  double cancelled_bytes = 0.0;
  sim.schedule_at(12 * sim::kSecond, [&] {
    if (!cancellable.empty() && net.active_flows() > 0) {
      // Cancel a random still-listed flow (no-op if already done).
      const auto id = cancellable[rng.uniform_index(cancellable.size())];
      (void)cancelled_bytes;
      net.cancel_flow(id);
    }
  });

  // Worst case drain: ~40k units across a 20 u/s resource at cost 2
  // ≈ 67 minutes; 3 hours is a safe horizon.
  const auto executed = sim.run(3 * sim::kHour);
  // Terminates well before the horizon with all work drained.
  EXPECT_TRUE(sim.idle()) << "scenario did not drain";
  EXPECT_GT(executed, flows);
  EXPECT_EQ(net.active_flows(), 0u);
  // At most one flow was cancelled; everything else completed and is
  // accounted in total_delivered.
  EXPECT_GE(completions + 1, flows);
  EXPECT_LE(net.total_delivered(), expected_bytes * (1.0 + 1e-6));
  EXPECT_GE(net.total_delivered(), expected_bytes * 0.5);
  // Telemetry sanity: served units non-negative, utilization gauges valid.
  for (auto r : resources) {
    EXPECT_GE(net.stats(r).served, 0.0);
    EXPECT_GE(net.stats(r).current_load, 0.0);
    EXPECT_LE(net.stats(r).current_load, 1.0 + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DynamicNetworkP, ::testing::Range(0, 12));

// --- daily purge scheduling --------------------------------------------------------

TEST(PurgeScheduling, DailySweepsFireAtConfiguredHour) {
  sim::Simulator sim;
  std::vector<std::unique_ptr<block::Raid6Group>> groups;
  std::vector<std::unique_ptr<fs::Ost>> osts;
  std::vector<fs::Ost*> ptrs;
  for (int i = 0; i < 2; ++i) {
    std::vector<block::Disk> members;
    for (int m = 0; m < 10; ++m) {
      members.emplace_back(block::DiskParams{}, m, 1.0, 1e-4);
    }
    groups.push_back(std::make_unique<block::Raid6Group>(block::RaidParams{},
                                                         std::move(members)));
    osts.push_back(std::make_unique<fs::Ost>(i, groups.back().get()));
    ptrs.push_back(osts.back().get());
  }
  fs::FsNamespace ns("scratch", ptrs);
  Rng rng(1);
  // 30 old files, created "before" the simulation started.
  for (int f = 0; f < 30; ++f) ns.create_file(1, 1_GiB, -20 * sim::kDay, rng);

  std::vector<fs::PurgeReport> reports;
  fs::schedule_daily_purge(sim, ns, fs::PurgePolicy{14.0}, 5, 2.0, &reports);
  sim.run();
  ASSERT_EQ(reports.size(), 5u);
  // First sweep (day 1, 02:00) purges everything older than 14 days.
  EXPECT_EQ(reports[0].purged, 30u);
  EXPECT_EQ(reports[1].purged, 0u);
  EXPECT_EQ(sim.now(), 5 * sim::kDay + 2 * sim::kHour);
}

}  // namespace
}  // namespace spider
