// ScaleScenario determinism tests — the macro workload bench_macro_scale
// measures must itself be worker- and shard-count-invariant, or the bench's
// in-run hash check (and the ≥2x speedup claim) would be comparing different
// workloads.
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>

#include "core/scale_scenario.hpp"
#include "net/fabric.hpp"
#include "net/lookahead.hpp"
#include "sim/sharded_sim.hpp"
#include "sim/time.hpp"

namespace {

using namespace spider;
using core::ScaleParams;
using core::ScaleScenario;
using core::ScaleTotals;
using sim::ShardedConfig;
using sim::ShardedReplay;
using sim::ShardedSimulator;
using sim::ShardMap;

ScaleParams small_params() {
  ScaleParams params;
  params.zones = 6;
  params.clients_per_zone = 3;
  params.think = 2 * sim::kMillisecond;
  params.service = 500 * sim::kMicrosecond;
  params.remote_every = 4;
  return params;
}

struct RunResult {
  std::uint64_t hash = 0;
  ScaleTotals totals;
};

RunResult run_scale(const ScaleParams& params, const ShardMap& map,
                    std::size_t engine_shards, std::size_t workers,
                    sim::SimTime horizon = 50 * sim::kMillisecond) {
  const net::IbFabric fabric{net::FabricParams{}};
  ShardedConfig cfg;
  cfg.lookahead = ScaleScenario::required_lookahead(fabric, params);
  cfg.workers = workers;
  ShardedSimulator engine(engine_shards, cfg);
  ShardedReplay replay(engine);
  ScaleScenario scenario(params, fabric, engine, map);
  scenario.start();
  engine.run(horizon);
  return RunResult{replay.merged_hash(), scenario.totals()};
}

TEST(ScaleScenario, DeterministicAcrossRepeatRuns) {
  const ScaleParams params = small_params();
  const ShardMap map(params.zones, 3);
  const RunResult a = run_scale(params, map, 3, 1);
  const RunResult b = run_scale(params, map, 3, 1);
  EXPECT_EQ(a.hash, b.hash);
  EXPECT_EQ(a.totals.issued, b.totals.issued);
  EXPECT_EQ(a.totals.completed, b.totals.completed);
  EXPECT_EQ(a.totals.remote_sent, b.totals.remote_sent);
  EXPECT_EQ(a.totals.remote_served, b.totals.remote_served);
  // The workload actually exercised both local and cross-zone paths.
  EXPECT_GT(a.totals.completed, 0u);
  EXPECT_GT(a.totals.remote_served, 0u);
  EXPECT_GT(a.totals.bytes_moved, 0.0);
}

TEST(ScaleScenario, HashIndependentOfWorkerCount) {
  const ScaleParams params = small_params();
  for (const std::size_t shards : {1u, 2u, 4u, 8u}) {
    const ShardMap map(params.zones, shards > params.zones
                                         ? params.zones
                                         : shards);
    const RunResult serial = run_scale(params, map, shards, 1);
    const RunResult fanned = run_scale(params, map, shards, 0);
    EXPECT_EQ(serial.hash, fanned.hash) << "shards=" << shards;
    EXPECT_EQ(serial.totals.completed, fanned.totals.completed)
        << "shards=" << shards;
  }
}

TEST(ScaleScenario, HashIndependentOfShardCount) {
  const ScaleParams params = small_params();
  const ShardMap map(params.zones, 3);
  const RunResult on3 = run_scale(params, map, 3, 0);
  const RunResult on8 = run_scale(params, map, 8, 0);
  EXPECT_EQ(on3.hash, on8.hash);
}

TEST(ScaleScenario, HashChangesWithShardAssignment) {
  const ScaleParams params = small_params();
  const ShardMap base(params.zones, 3);
  ShardMap moved(params.zones, 3);
  moved.reassign(0, 1);
  EXPECT_NE(run_scale(params, base, 3, 1).hash,
            run_scale(params, moved, 3, 1).hash);
}

TEST(ScaleScenario, RequiredLookaheadCoversPathAndWire) {
  const net::IbFabric fabric{net::FabricParams{}};
  const ScaleParams params = small_params();
  const sim::SimTime lookahead =
      ScaleScenario::required_lookahead(fabric, params);
  // At least the switch-path floor, plus a nonzero wire time for the payload.
  EXPECT_GT(lookahead, net::cross_zone_path_latency(fabric));
}

TEST(ScaleScenario, RejectsLookaheadWiderThanCrossLatency) {
  const net::IbFabric fabric{net::FabricParams{}};
  const ScaleParams params = small_params();
  ShardedConfig cfg;
  cfg.lookahead =
      2 * ScaleScenario::required_lookahead(fabric, params);  // too wide
  cfg.workers = 1;
  ShardedSimulator engine(3, cfg);
  const ShardMap map(params.zones, 3);
  EXPECT_THROW(ScaleScenario(params, fabric, engine, map),
               std::invalid_argument);
}

TEST(ScaleScenario, FromCenterDerivesZoneShape) {
  const core::CenterConfig cfg = core::spider2_config();
  const ScaleParams params = ScaleScenario::from_center(cfg, 4.0);
  EXPECT_EQ(params.zones, cfg.ssus);
  EXPECT_EQ(params.clients_per_zone, cfg.clients / cfg.ssus);
  EXPECT_DOUBLE_EQ(params.scale, 4.0);
  EXPECT_EQ(params.request_bytes, cfg.max_rpc);
}

}  // namespace
