// Mixed workload composition.
//
// "A shared scratch file system experiences these I/O workloads as a mix,
// not as independent streams" (Section II). The composer merges traces
// from multiple generators into the single stream a data-centric PFS
// actually serves; Lesson 2 is that design must target this mix, not the
// per-machine patterns.
#pragma once

#include <vector>

#include "workload/pattern.hpp"

namespace spider::workload {

/// Merge pre-sorted traces into one time-ordered stream.
std::vector<IoRequest> merge_traces(std::vector<std::vector<IoRequest>> traces);

/// Offered load of a trace over its span, bytes/second.
double offered_bandwidth(const std::vector<IoRequest>& trace);

/// Split a trace into fixed-width bandwidth bins (server-side throughput
/// log view, the IOSI input format).
std::vector<double> bandwidth_timeline(const std::vector<IoRequest>& trace,
                                       double bin_s, double duration_s);

}  // namespace spider::workload
