# Empty dependencies file for standard_checks_test.
# This may be replaced when dependencies are built.
