// Quickstart: build the Spider II center model, inspect the stack, and run
// one IOR-style measurement — the 60-second tour of the spiderpfs API.
#include <iostream>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "core/center.hpp"
#include "core/spider_config.hpp"
#include "workload/ior.hpp"

int main() {
  using namespace spider;

  // 1. Build the center: Titan-like torus, 440 LNET routers, 36 SSUs
  //    (20,160 disks in 2,016 RAID-6 groups), 288 OSS, two namespaces.
  Rng rng(42);
  core::CenterConfig cfg = core::spider2_config();
  core::CenterModel center(cfg, rng);

  std::cout << "center: " << cfg.name << "\n"
            << "  clients:       " << cfg.clients << " on a " << cfg.torus.x
            << "x" << cfg.torus.y << "x" << cfg.torus.z << " torus\n"
            << "  routers:       " << center.fgr().num_routers() << "\n"
            << "  SSUs:          " << center.num_ssus() << "\n"
            << "  OSTs:          " << center.total_osts() << "\n"
            << "  OSS:           " << center.num_oss() << "\n"
            << "  capacity:      " << to_pb(center.filesystem().capacity())
            << " PB\n\n";

  // 2. Bottom-up layer profile (Lesson 12): where does bandwidth go?
  const auto prof = center.layer_profile(block::IoMode::kSequential,
                                         block::IoDir::kWrite);
  std::cout << "layer profile (sequential write, 1 MiB):\n"
            << "  raw disks:     " << to_gbps(prof.disks) << " GB/s\n"
            << "  RAID groups:   " << to_gbps(prof.raid) << " GB/s\n"
            << "  obdfilter:     " << to_gbps(prof.obdfilter) << " GB/s\n"
            << "  controllers:   " << to_gbps(prof.controllers) << " GB/s\n"
            << "  OSS nodes:     " << to_gbps(prof.oss) << " GB/s\n"
            << "  LNET routers:  " << to_gbps(prof.routers) << " GB/s\n"
            << "  end-to-end:    " << to_gbps(prof.end_to_end) << " GB/s\n\n";

  // 3. One IOR point: 4,032 optimally placed clients, 1 MiB transfers,
  //    whole file system.
  center.set_target_namespace(SIZE_MAX);
  center.set_client_placement(core::ClientPlacement::kOptimal, rng);
  workload::IorConfig ior;
  ior.clients = 4032;
  ior.transfer_size = 1_MiB;
  const auto result = workload::run_ior(center, ior);
  std::cout << "IOR file-per-process, 4032 clients, 1 MiB transfers:\n"
            << "  aggregate:     " << to_gbps(result.aggregate_bw) << " GB/s\n"
            << "  per-client:    " << to_mbps(result.mean_client_bw)
            << " MB/s\n"
            << "  bottleneck:    " << result.bottleneck << "\n";
  return 0;
}
