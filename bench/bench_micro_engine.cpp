// Microbenchmarks of the simulation engine itself (google-benchmark).
//
// These guard the performance properties the reproduction relies on: the
// max-min solver must handle full Spider II scale (18,688 flows over ~70k
// resources) in well under a second per solve, and the event queue must
// sustain millions of schedule/pop cycles for DES scenarios.
#include <benchmark/benchmark.h>

#include <vector>

#include "common/rng.hpp"
#include "core/center.hpp"
#include "core/spider_config.hpp"
#include "net/torus.hpp"
#include "sim/event_queue.hpp"
#include "sim/resource.hpp"
#include "workload/ior.hpp"

namespace {

using namespace spider;

void BM_RngUniform(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.uniform());
  }
}
BENCHMARK(BM_RngUniform);

void BM_EventQueueScheduleAndPop(benchmark::State& state) {
  Rng rng(2);
  for (auto _ : state) {
    sim::EventQueue q;
    for (int i = 0; i < 1000; ++i) {
      q.schedule(static_cast<sim::SimTime>(rng.uniform_index(1000000)), [] {});
    }
    while (!q.empty()) q.pop();
  }
}
BENCHMARK(BM_EventQueueScheduleAndPop);

void BM_TorusRoute(benchmark::State& state) {
  net::Torus3D torus({25, 16, 24});
  Rng rng(3);
  for (auto _ : state) {
    const auto from = static_cast<int>(rng.uniform_index(
        static_cast<std::uint64_t>(torus.num_nodes())));
    const auto to = static_cast<int>(rng.uniform_index(
        static_cast<std::uint64_t>(torus.num_nodes())));
    benchmark::DoNotOptimize(torus.route(from, to));
  }
}
BENCHMARK(BM_TorusRoute);

void BM_SolveMaxMin(benchmark::State& state) {
  const auto flows_n = static_cast<std::size_t>(state.range(0));
  Rng rng(4);
  const std::size_t nr = 2000;
  std::vector<double> cap(nr);
  for (auto& c : cap) c = rng.uniform(1e8, 1e9);
  std::vector<std::vector<sim::PathHop>> paths(flows_n);
  std::vector<sim::SolverFlow> flows;
  for (auto& p : paths) {
    for (int h = 0; h < 8; ++h) {
      p.push_back({static_cast<sim::ResourceId>(rng.uniform_index(nr)), 1.0});
    }
  }
  for (const auto& p : paths) flows.push_back({p, 6e8});
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::solve_max_min(cap, flows));
  }
}
BENCHMARK(BM_SolveMaxMin)->Arg(512)->Arg(4096)->Arg(16384);

void BM_FullSpiderIorSolve(benchmark::State& state) {
  Rng rng(5);
  core::CenterModel center(core::spider2_config(), rng);
  center.set_target_namespace(0);
  center.set_client_placement(core::ClientPlacement::kRandom, rng);
  workload::IorConfig cfg;
  cfg.clients = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(workload::run_ior(center, cfg));
  }
}
BENCHMARK(BM_FullSpiderIorSolve)->Arg(1008)->Arg(8192)->Unit(benchmark::kMillisecond);

void BM_CenterConstruction(benchmark::State& state) {
  for (auto _ : state) {
    Rng rng(6);
    core::CenterModel center(core::spider2_config(), rng);
    benchmark::DoNotOptimize(center.total_osts());
  }
}
BENCHMARK(BM_CenterConstruction)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
